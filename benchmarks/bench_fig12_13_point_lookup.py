"""Figures 12 & 13 — Point lookup throughput vs. number of tuples.

Paper result: Hermit pays a visible penalty on point lookups (≈35% lower
throughput with logical pointers, ≈15% with physical pointers on Linear), and
the Sigmoid case degrades further as the tuple count grows because the
correlation becomes harder to model, producing more false positives.
"""

from __future__ import annotations

import pytest

from _helpers import build_synthetic_setup
from repro.bench.harness import FigureData, run_point_batch
from repro.bench.report import format_figure
from repro.bench.timing import scaled
from repro.storage.identifiers import PointerScheme
from repro.workloads.queries import point_queries

TUPLE_COUNTS = [5_000, 10_000, 20_000, 40_000]  # stand-in for 1M..20M
QUERIES_PER_POINT = 200


def point_sweep(correlation: str, pointer_scheme: PointerScheme,
                figure_name: str) -> FigureData:
    figure = FigureData(figure_name, "number of tuples", "Kops")
    for count in TUPLE_COUNTS:
        setup = build_synthetic_setup(correlation, num_tuples=count,
                                      pointer_scheme=pointer_scheme)
        values = point_queries(setup.dataset.columns["colC"],
                               count=scaled(QUERIES_PER_POINT), seed=12)
        for label, mechanism in setup.mechanisms.items():
            batch = run_point_batch(mechanism, values)
            figure.add_point(label, count, batch.throughput.kops)
    return figure


@pytest.mark.figure("fig12")
@pytest.mark.parametrize("scheme", [PointerScheme.LOGICAL, PointerScheme.PHYSICAL],
                         ids=["logical", "physical"])
def test_fig12_point_lookup_linear(benchmark, scheme):
    figure = benchmark.pedantic(
        lambda: point_sweep("linear", scheme, f"Figure 12 ({scheme.value})"),
        rounds=1, iterations=1)
    figure.notes.append("paper: HERMIT 15-35% below Baseline on point lookups")
    print()
    print(format_figure(figure))
    for hermit, baseline in zip(figure.series["HERMIT"].ys,
                                figure.series["Baseline"].ys):
        assert hermit > 0 and baseline > 0
        # Hermit pays a visible point-lookup penalty (paper: 15-35%; larger
        # here because a single B+-tree probe is one bisect while Hermit's
        # multi-step path is several Python calls) but must not collapse.
        assert hermit * 12.0 >= baseline


@pytest.mark.figure("fig13")
@pytest.mark.parametrize("scheme", [PointerScheme.LOGICAL, PointerScheme.PHYSICAL],
                         ids=["logical", "physical"])
def test_fig13_point_lookup_sigmoid(benchmark, scheme):
    figure = benchmark.pedantic(
        lambda: point_sweep("sigmoid", scheme, f"Figure 13 ({scheme.value})"),
        rounds=1, iterations=1)
    figure.notes.append("paper: Sigmoid degrades with tuple count (more false positives)")
    print()
    print(format_figure(figure))
    for hermit, baseline in zip(figure.series["HERMIT"].ys,
                                figure.series["Baseline"].ys):
        assert hermit > 0 and baseline > 0
        assert hermit * 12.0 >= baseline
