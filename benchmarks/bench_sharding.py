"""Sharded scatter/gather execution — N worker shards vs. one.

Not a paper figure: this benchmark pins the sharded execution tier's
contract.  ``ShardedDatabase.execute_many`` over ``--shards`` worker
processes must (a) return exactly the rows of the single-shard facade
(validated against a brute-force scan of the generating dataset), and
(b) on a machine with at least ``--shards`` cores, beat the single-shard
worker by **>= 2x** on Hermit-served range batches (the acceptance
criterion; typical 4-core measurement 2.5-3x).

The speedup is core-count-bound by construction, so the JSON bundle is
machine-aware:

* ``sharding_sanity`` — always emitted.  Gates agreement and a 0.25x
  transport floor (N time-sliced workers on one core pay the merge and
  pickling overhead without any parallelism and measure ~0.35-0.55x;
  dropping under the floor means the transport itself regressed, not
  the scheduling).
* ``sharding_parallel`` — emitted only when ``os.cpu_count()`` can seat
  every shard (CI runners: 4 vCPUs).  Gates the >= 2x criterion.

Run as pytest (tiny scale, inline shards, correctness only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharding.py -s

or standalone, emitting the JSON bundle for the perf trajectory::

    PYTHONPATH=src python benchmarks/bench_sharding.py \
        --rows 60000 --batch 192 --shards 4 --output sharding_ci.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import pytest

from repro.bench.sharding import ShardingMeasurement, run_sharding_benchmark
from repro.bench.timing import scaled

SMALL_SCALE_ROWS = 8_000


def format_measurement(measurement: ShardingMeasurement) -> str:
    """Plain-text summary of one race."""
    return (
        f"{measurement.num_shards} shards vs 1 "
        f"({measurement.cpu_count} cpus, {measurement.num_tuples} rows, "
        f"{measurement.num_queries} queries): "
        f"single {measurement.single_seconds * 1e3:.1f}ms, "
        f"sharded {measurement.sharded_seconds * 1e3:.1f}ms, "
        f"{measurement.sharded_vs_single:.2f}x, "
        f"agree={measurement.results_agree}"
    )


@pytest.mark.figure("sharding")
def test_sharded_matches_single(benchmark):
    """Small-scale inline run: the merged results must be exactly right."""
    def run():
        return run_sharding_benchmark(
            num_shards=4, num_tuples=scaled(SMALL_SCALE_ROWS),
            selectivity=5e-3, batch_size=48, rounds=2, mode="inline",
        )

    measurement = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_measurement(measurement))
    assert measurement.results_agree
    # Inline shards share one interpreter: no parallelism to measure, but
    # the scatter/gather plumbing must stay within a constant factor.
    assert measurement.sharded_vs_single > 0.2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--rows", type=int, default=60_000,
                        help="rows in the Synthetic table (default 60k)")
    parser.add_argument("--selectivity", type=float, default=1e-3,
                        help="range-query selectivity (default 1e-3)")
    parser.add_argument("--batch", type=int, default=192,
                        help="queries per batch (default 192)")
    parser.add_argument("--shards", type=int, default=4,
                        help="worker shards raced against one (default 4)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="interleaved best-of rounds (default 3)")
    parser.add_argument("--output", default="bench_sharding.json",
                        help="path of the emitted JSON record bundle")
    args = parser.parse_args(argv)

    measurement = run_sharding_benchmark(
        num_shards=args.shards, num_tuples=args.rows,
        selectivity=args.selectivity, batch_size=args.batch,
        rounds=args.rounds,
    )
    print(format_measurement(measurement))

    cores = os.cpu_count() or 1
    records = [{
        "benchmark": "sharding_sanity",
        "rows": args.rows,
        "selectivity": args.selectivity,
        "batch": args.batch,
        "measurements": [measurement.as_dict()],
    }]
    if cores >= args.shards:
        records.append({
            "benchmark": "sharding_parallel",
            "rows": args.rows,
            "selectivity": args.selectivity,
            "batch": args.batch,
            "measurements": [measurement.as_dict()],
        })
    else:
        print(f"note: {cores} cpus cannot seat {args.shards} shards — "
              f"emitting only the sharding_sanity record (the gated >= 2x "
              f"sharding_parallel record needs >= {args.shards} cores)")

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump({"records": records}, handle, indent=2)
    print(f"wrote {args.output}")

    if not measurement.results_agree:
        print("ERROR: sharded and single-shard results disagree",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
