"""Figure 8 — Range lookup throughput vs. selectivity (Synthetic – Linear).

Paper result: with a Linear correlation the TRS-Tree needs a single leaf, and
Hermit's throughput is very close to the baseline for both tuple-identifier
schemes (1.19 vs 1.27 K ops at 0.01% selectivity with logical pointers).
"""

from __future__ import annotations

import pytest

from _helpers import (
    SYNTHETIC_SELECTIVITIES,
    assert_within_factor,
    build_synthetic_setup,
    geometric_mean,
    selectivity_sweep,
)
from repro.bench.report import format_figure
from repro.storage.identifiers import PointerScheme
from repro.workloads.queries import range_queries


@pytest.fixture(scope="module", params=[PointerScheme.LOGICAL,
                                        PointerScheme.PHYSICAL],
                ids=["logical", "physical"])
def linear_setup(request):
    return build_synthetic_setup("linear", num_tuples=40_000,
                                 pointer_scheme=request.param), request.param


@pytest.mark.figure("fig8")
@pytest.mark.parametrize("mechanism_label", ["HERMIT", "Baseline"])
def test_fig08_range_lookup_throughput(benchmark, linear_setup, mechanism_label):
    setup, _ = linear_setup
    queries = range_queries(setup.domain, selectivity=0.0005, count=30, seed=8)
    mechanism = setup.mechanisms[mechanism_label]
    results = benchmark(lambda: [mechanism.lookup_range(q.low, q.high)
                                 for q in queries])
    assert len(results) == 30


@pytest.mark.figure("fig8")
def test_fig08_report_selectivity_sweep(benchmark, linear_setup):
    setup, scheme = linear_setup
    figure = benchmark.pedantic(
        lambda: selectivity_sweep(setup, SYNTHETIC_SELECTIVITIES,
                                  f"Figure 8 ({scheme.value} pointers)",
                                  queries_per_point=40),
        rounds=1, iterations=1)
    figure.notes.append("paper: HERMIT within ~10% of Baseline on Linear")
    print()
    print(format_figure(figure))

    # The TRS-Tree for a (noisy) linear correlation stays tiny.
    hermit_mechanism = setup.mechanisms["HERMIT"]
    assert hermit_mechanism.trs_tree.num_leaves <= 16

    hermit = geometric_mean(figure.series["HERMIT"].ys)
    baseline = geometric_mean(figure.series["Baseline"].ys)
    assert_within_factor(hermit, baseline, factor=2.5)
