"""Figure 7 — Memory consumption vs. number of tuples (Sensor).

Paper result: with one new index per sensor column, the baseline's memory
grows much faster with the tuple count than Hermit's, and its space breakdown
is dominated by the newly created secondary indexes.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import FigureData
from repro.bench.report import format_figure, format_memory_report
from repro.bench.timing import scaled
from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.workloads.sensor import generate_sensor, load_sensor, sensor_column

TUPLE_COUNTS = [5_000, 10_000, 15_000, 20_000]  # stand-in for the paper's 1-4M
NUM_INDEXED_SENSORS = 8


def total_memory_mb(method: IndexMethod, num_tuples: int):
    dataset = generate_sensor(num_tuples=scaled(num_tuples))
    database = Database()
    table_name = load_sensor(database, dataset)
    for sensor in range(NUM_INDEXED_SENSORS):
        database.create_index(f"new_{sensor_column(sensor)}", table_name,
                              sensor_column(sensor), method=method,
                              host_column="average"
                              if method is IndexMethod.HERMIT else None)
    report = database.memory_report(table_name)
    return report.total_mb, report


@pytest.mark.figure("fig7")
def test_fig07_memory_vs_tuples(benchmark):
    """Regenerate Figure 7a/7b and check the growth-rate relationship."""
    def sweep():
        figure = FigureData("Figure 7a", "number of tuples", "memory (MB)")
        reports = {}
        for count in TUPLE_COUNTS:
            for method, label in ((IndexMethod.HERMIT, "HERMIT"),
                                  (IndexMethod.BTREE, "Baseline")):
                total, report = total_memory_mb(method, count)
                figure.add_point(label, count, total)
                reports[(label, count)] = report
        return figure, reports

    figure, reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    figure.notes.append("paper: Baseline grows much faster with tuple count")
    print()
    print(format_figure(figure))
    largest = TUPLE_COUNTS[-1]
    print(format_memory_report(reports[("HERMIT", largest)],
                               title="Figure 7b HERMIT"))
    print(format_memory_report(reports[("Baseline", largest)],
                               title="Figure 7b Baseline"))

    hermit_growth = figure.series["HERMIT"].ys[-1] - figure.series["HERMIT"].ys[0]
    baseline_growth = (figure.series["Baseline"].ys[-1]
                       - figure.series["Baseline"].ys[0])
    assert baseline_growth > 1.3 * hermit_growth
    # Baseline spends most of its growth on the new secondary indexes.
    baseline_report = reports[("Baseline", largest)]
    assert baseline_report.components["new_indexes"] > baseline_report.components[
        "existing_indexes"]
    hermit_report = reports[("HERMIT", largest)]
    assert hermit_report.components["new_indexes"] < baseline_report.components[
        "new_indexes"] / 5
