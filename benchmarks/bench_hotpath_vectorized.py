"""Hot-path vectorization benchmark — scalar seed path vs. array-native path.

Not a paper figure: this benchmark tracks the reproduction's own perf
trajectory.  The PR that introduced it rebuilt the whole Hermit/Baseline
lookup pipeline around numpy arrays (array host probes, ``np.unique`` dedup,
batched primary resolution, fancy-index base-table validation, and a
``lookup_range_many`` batch API); the scalar object-at-a-time seed path is
kept as ``lookup_range_scalar`` so the two can be raced on identical queries.

Run as pytest (small scale, correctness + sanity speedup)::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath_vectorized.py -s

or standalone at full scale, emitting a JSON record for the trajectory::

    PYTHONPATH=src python benchmarks/bench_hotpath_vectorized.py \
        --rows 1000000 --selectivity 0.001 --output hotpath.json

The acceptance target of the vectorization PR: >= 5x vectorized-vs-scalar
throughput on range lookups at selectivity 1e-3 on 1M-row workloads.
"""

from __future__ import annotations

import argparse
import json
import sys

import pytest

from repro.bench.timing import scaled
from repro.storage.identifiers import PointerScheme
from repro.bench.hotpath import (
    WORKLOADS,
    HotpathMeasurement,
    run_hotpath_suite,
)

SMALL_SCALE_ROWS = 20_000


def format_measurements(measurements: list[HotpathMeasurement]) -> str:
    """Plain-text table of one suite run."""
    header = (
        f"{'workload':<10} {'mechanism':<9} {'host':<7} {'scalar':>10} "
        f"{'vector':>10} {'batch':>10} {'speedup':>8} {'batch x':>8}  agree"
    )
    lines = [header, "-" * len(header)]
    for m in measurements:
        lines.append(
            f"{m.workload:<10} {m.mechanism:<9} {m.host_index:<7} "
            f"{m.scalar_kops:>9.2f}K {m.vectorized_kops:>9.2f}K "
            f"{m.batched_kops:>9.2f}K {m.speedup_vectorized:>7.1f}x "
            f"{m.speedup_batched:>7.1f}x  {m.results_agree}"
        )
    return "\n".join(lines)


@pytest.mark.figure("hotpath")
@pytest.mark.parametrize("workload", WORKLOADS)
def test_hotpath_scalar_vs_vectorized(benchmark, workload):
    """Small-scale run: paths agree and the vectorized path is not slower."""
    def run():
        return run_hotpath_suite(
            workloads=(workload,), num_tuples=scaled(SMALL_SCALE_ROWS),
            selectivity=1e-3, num_queries=20,
        )

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_measurements(measurements))
    assert all(m.results_agree for m in measurements)
    # At this small scale each query returns only ~20 rows, so fixed numpy
    # overhead can eat most of the win; just require the batch path not to
    # collapse.  The 5x acceptance target applies to the full-scale
    # standalone run (1M rows), where per-tuple work dominates.
    assert all(m.speedup_batched > 0.5 for m in measurements)


@pytest.mark.figure("hotpath")
def test_hotpath_logical_pointers_agree(benchmark):
    """The vectorized batched primary resolution stays exact under LOGICAL."""
    def run():
        return run_hotpath_suite(
            workloads=("synthetic",), num_tuples=scaled(SMALL_SCALE_ROWS),
            selectivity=1e-3, num_queries=20,
            pointer_scheme=PointerScheme.LOGICAL,
        )

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_measurements(measurements))
    assert all(m.results_agree for m in measurements)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--rows", type=int, default=1_000_000,
                        help="rows per workload table (default 1M)")
    parser.add_argument("--selectivity", type=float, default=1e-3,
                        help="range-query selectivity (default 1e-3)")
    parser.add_argument("--queries", type=int, default=30,
                        help="queries per measurement (default 30)")
    parser.add_argument("--workloads", nargs="+", default=list(WORKLOADS),
                        choices=list(WORKLOADS))
    parser.add_argument("--scheme", default="physical",
                        choices=["physical", "logical"])
    parser.add_argument("--host-index", default="both",
                        choices=["btree", "sorted", "both"],
                        help="host index backing the Hermit lookup; 'both' "
                             "measures the B+-tree and the sorted-column "
                             "index (default)")
    parser.add_argument("--output", default="bench_hotpath_vectorized.json",
                        help="path of the emitted JSON record")
    args = parser.parse_args(argv)

    scheme = (PointerScheme.PHYSICAL if args.scheme == "physical"
              else PointerScheme.LOGICAL)
    host_kinds = (["btree", "sorted"] if args.host_index == "both"
                  else [args.host_index])
    measurements = []
    for host_kind in host_kinds:
        measurements.extend(run_hotpath_suite(
            workloads=tuple(args.workloads), num_tuples=args.rows,
            selectivity=args.selectivity, num_queries=args.queries,
            pointer_scheme=scheme, host_index_kind=host_kind,
        ))
    print(format_measurements(measurements))

    record = {
        "benchmark": "hotpath_vectorized",
        "rows": args.rows,
        "selectivity": args.selectivity,
        "queries": args.queries,
        "pointer_scheme": args.scheme,
        "host_index": args.host_index,
        "measurements": [m.as_dict() for m in measurements],
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
    print(f"\nwrote {args.output}")

    if not all(m.results_agree for m in measurements):
        print("ERROR: scalar and vectorized paths disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
