"""Durability benchmark — WAL overhead per fsync policy, and recovery time.

Not a paper figure: this benchmark tracks the cost of the durability
subsystem along the repo's own perf trajectory.  Four insert runs are raced
back-to-back into an indexed table (B+-tree on the host column, Hermit on
the correlated target), 60k rows in chunked ``insert_many`` batches:

* ``no-WAL``       — durability disabled (the default in-memory engine);
* ``fsync=off``    — full WAL encoding + appends, no fsync;
* ``fsync=batch``  — group commit every ``fsync_interval`` records;
* ``fsync=always`` — fsync per appended record (one per chunk).

The gated ratios are policy-vs-no-WAL throughput — machine-independent the
same way the vectorization speedups are — plus recovery throughput relative
to the live insert path: recovery replays the same batched DML and rebuilds
every mechanism from data, so it is expected to run within a small factor
of the forward path (the paper's cheap-to-rebuild story as a measurement).

Run standalone (CI size), emitting a JSON record for the regression gate::

    PYTHONPATH=src python benchmarks/bench_durability.py \
        --rows 60000 --output durability_ci.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import time

import numpy as np

from repro.durability import DurabilityConfig, FsyncPolicy
from repro.durability.recovery import recover
from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.engine.query import RangePredicate
from repro.storage.schema import numeric_schema

CHUNK_ROWS = 2_000
BASE_ROWS_FRACTION = 6  # base table = rows // 6, loaded before the indexes


def make_chunks(rows: int, base_rows: int, seed: int = 11):
    rng = np.random.default_rng(seed)
    total = base_rows + rows
    a = np.sort(rng.uniform(0.0, 10_000.0, total))
    b = 1.5 * a + rng.normal(0.0, 20.0, total)
    pk = np.arange(total, dtype=np.int64)
    base = {"pk": pk[:base_rows], "a": a[:base_rows], "b": b[:base_rows]}
    chunks = []
    for start in range(base_rows, total, CHUNK_ROWS):
        stop = min(start + CHUNK_ROWS, total)
        chunks.append({"pk": pk[start:stop], "a": a[start:stop],
                       "b": b[start:stop]})
    return base, chunks


def build_database(base: dict, durability: DurabilityConfig | None) -> Database:
    database = Database(durability=durability)
    database.create_table(numeric_schema("t", ["pk", "a", "b"],
                                         primary_key="pk"))
    database.insert_many("t", base)
    database.create_index("ix_a", "t", "a")
    database.create_index("ix_b", "t", "b", method=IndexMethod.HERMIT,
                          host_column="a")
    return database


def timed_insert_run(base: dict, chunks: list[dict],
                     durability: DurabilityConfig | None) -> tuple[float, Database]:
    """Seconds to insert every chunk (including the final WAL flush)."""
    database = build_database(base, durability)
    start = time.perf_counter()
    for chunk in chunks:
        database.insert_many("t", chunk)
    database.flush_wal()
    elapsed = time.perf_counter() - start
    return elapsed, database


def run_suite(rows: int, rounds: int, fsync_interval: int) -> dict:
    base_rows = rows // BASE_ROWS_FRACTION
    base, chunks = make_chunks(rows, base_rows)
    inserted = sum(len(chunk["pk"]) for chunk in chunks)

    policies = [
        ("no_wal", None),
        ("off", FsyncPolicy.OFF),
        ("batch", FsyncPolicy.BATCH),
        ("always", FsyncPolicy.ALWAYS),
    ]
    best_kops: dict[str, float] = {name: 0.0 for name, _ in policies}
    best_recovery: dict | None = None
    reference_result: list[int] | None = None
    results_agree = True
    predicate = RangePredicate("b", 2_000.0, 6_500.0)

    for _ in range(rounds):
        for name, policy in policies:
            directory = (tempfile.mkdtemp(prefix=f"bench_wal_{name}_")
                         if policy is not None else None)
            try:
                config = (DurabilityConfig(directory=directory, fsync=policy,
                                           fsync_interval=fsync_interval)
                          if policy is not None else None)
                elapsed, database = timed_insert_run(base, chunks, config)
                best_kops[name] = max(best_kops[name],
                                      inserted / elapsed / 1e3)
                locations = database.query("t", predicate).locations
                if reference_result is None:
                    reference_result = locations
                elif locations != reference_result:
                    results_agree = False
                database.close()

                if policy is FsyncPolicy.OFF:
                    # recovery of the full WAL (no checkpoint): replays the
                    # base batch, the DDL and every chunk, rebuilds indexes
                    recovered = recover(DurabilityConfig(directory=directory))
                    timings = recovered.durability_stats().recovery
                    if recovered.query("t", predicate).locations != \
                            reference_result:
                        results_agree = False
                    total_rows = base_rows + inserted
                    candidate = {
                        "recovery_s": timings.total_s,
                        "recovery_wal_replay_s": timings.wal_replay_s,
                        "recovery_rebuild_s": timings.rebuild_s,
                        "recovery_records": timings.records_replayed,
                        "recovery_kops": total_rows / timings.total_s / 1e3,
                    }
                    recovered.close()
                    if (best_recovery is None
                            or candidate["recovery_s"]
                            < best_recovery["recovery_s"]):
                        best_recovery = candidate
            finally:
                if directory is not None:
                    shutil.rmtree(directory, ignore_errors=True)

    measurement = {
        "workload": "durability",
        "rows": inserted,
        "base_rows": base_rows,
        "chunk_rows": CHUNK_ROWS,
        "fsync_interval": fsync_interval,
        "results_agree": results_agree,
        "nowal_kops": best_kops["no_wal"],
        "wal_off_kops": best_kops["off"],
        "wal_batch_kops": best_kops["batch"],
        "wal_always_kops": best_kops["always"],
        "wal_off_ratio": best_kops["off"] / best_kops["no_wal"],
        "wal_batch_ratio": best_kops["batch"] / best_kops["no_wal"],
        "wal_always_ratio": best_kops["always"] / best_kops["no_wal"],
    }
    measurement.update(best_recovery)
    measurement["recovery_vs_insert"] = (
        best_recovery["recovery_kops"] / best_kops["no_wal"]
    )
    return measurement


def format_measurement(m: dict) -> str:
    lines = [
        f"insert {m['rows']} rows (chunks of {m['chunk_rows']}, "
        f"base {m['base_rows']}, group commit every "
        f"{m['fsync_interval']} records):",
        f"  no-WAL       {m['nowal_kops']:>8.1f} Krows/s",
        f"  fsync=off    {m['wal_off_kops']:>8.1f} Krows/s "
        f"({m['wal_off_ratio']:.3f}x)",
        f"  fsync=batch  {m['wal_batch_kops']:>8.1f} Krows/s "
        f"({m['wal_batch_ratio']:.3f}x)",
        f"  fsync=always {m['wal_always_kops']:>8.1f} Krows/s "
        f"({m['wal_always_ratio']:.3f}x)",
        f"recovery of the {m['recovery_records']}-record WAL "
        f"({m['base_rows'] + m['rows']} rows):",
        f"  total {m['recovery_s']:.3f}s  (replay {m['recovery_wal_replay_s']:.3f}s, "
        f"index rebuild {m['recovery_rebuild_s']:.3f}s)  "
        f"{m['recovery_kops']:.1f} Krows/s "
        f"= {m['recovery_vs_insert']:.2f}x the live insert path",
        f"results agree: {m['results_agree']}",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--rows", type=int, default=60_000,
                        help="rows inserted through each policy (default 60k)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="rounds per policy; best throughput is kept")
    parser.add_argument("--fsync-interval", type=int, default=64,
                        help="group-commit size for fsync=batch (default 64)")
    parser.add_argument("--output", default="bench_durability.json",
                        help="path of the emitted JSON record")
    args = parser.parse_args(argv)

    measurement = run_suite(args.rows, args.rounds, args.fsync_interval)
    print(format_measurement(measurement))

    record = {
        "benchmark": "durability",
        "rows": args.rows,
        "rounds": args.rounds,
        "measurements": [measurement],
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.abspath(args.output)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
