"""Figure 4 — Range lookup throughput vs. selectivity (Stock).

Paper result: with both tuple-identifier schemes, Hermit's range-query
throughput on the Stock workload is competitive with the complete B+-tree
baseline (within a small factor), and the gap narrows as the selectivity
grows because false-positive removal is amortised over more results.
"""

from __future__ import annotations

import pytest

from _helpers import (
    STOCK_SELECTIVITIES,
    assert_within_factor,
    build_stock_setup,
    geometric_mean,
    selectivity_sweep,
)
from repro.bench.report import format_figure
from repro.storage.identifiers import PointerScheme
from repro.workloads.queries import range_queries


@pytest.fixture(scope="module", params=[PointerScheme.LOGICAL,
                                        PointerScheme.PHYSICAL],
                ids=["logical", "physical"])
def stock_setup(request):
    return build_stock_setup(num_stocks=5, num_days=4_000,
                             pointer_scheme=request.param), request.param


@pytest.mark.figure("fig4")
@pytest.mark.parametrize("mechanism_label", ["HERMIT", "Baseline"])
def test_fig04_range_lookup_throughput(benchmark, stock_setup, mechanism_label):
    """Benchmark one batch of 5%-selectivity range lookups per mechanism."""
    setup, _ = stock_setup
    queries = range_queries(setup.domain, selectivity=0.05, count=20, seed=4)
    mechanism = setup.mechanisms[mechanism_label]

    def run():
        return [mechanism.lookup_range(q.low, q.high) for q in queries]

    results = benchmark(run)
    assert all(r.locations is not None for r in results)


@pytest.mark.figure("fig4")
def test_fig04_report_selectivity_sweep(benchmark, stock_setup):
    """Regenerate the full Figure 4 series and check its shape."""
    setup, scheme = stock_setup

    def sweep():
        return selectivity_sweep(setup, STOCK_SELECTIVITIES,
                                 f"Figure 4 ({scheme.value} pointers)")

    figure = benchmark.pedantic(sweep, rounds=1, iterations=1)
    figure.notes.append(
        "paper: HERMIT competitive with Baseline; gap narrows as selectivity grows"
    )
    print()
    print(format_figure(figure))

    hermit = geometric_mean(figure.series["HERMIT"].ys)
    baseline = geometric_mean(figure.series["Baseline"].ys)
    # Shape check: Hermit stays within 3x of the baseline across the sweep
    # (the paper reports a gap well under 2x on this workload).
    assert_within_factor(hermit, baseline, factor=3.0)
