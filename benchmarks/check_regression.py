"""CI perf-regression gate over the emitted benchmark JSON records.

The vectorization benchmarks (``bench_hotpath_vectorized.py`` and
``bench_writepath_vectorized.py``) each emit a JSON record whose
measurements carry vectorized-vs-scalar speedups.  This gate enforces the
repo's perf trajectory on every CI run:

* every speedup must stay >= ``--min-speedup`` (default 1.0 — the
  vectorized path must never be slower than the scalar seed path), and
* every speedup must not degrade more than ``--tolerance`` (default 30%)
  relative to the committed baseline ``BENCH_ci_baseline.json``.

Usage::

    # gate current records against the committed baseline
    python benchmarks/check_regression.py --baseline BENCH_ci_baseline.json \
        hotpath_ci.json writepath_ci.json

    # regenerate the baseline from fresh records (after an intentional change)
    python benchmarks/check_regression.py --write-baseline \
        BENCH_ci_baseline.json hotpath_ci.json writepath_ci.json

Speedups are ratios of two paths measured back-to-back on the same machine,
so they transfer across hardware far better than absolute throughput —
which is what makes a committed baseline meaningful on CI runners.
"""

from __future__ import annotations

import argparse
import json
import sys

# Which speedup metrics gate which benchmark record.
GATED_METRICS = {
    "hotpath_vectorized": ("speedup_vectorized", "speedup_batched"),
    "writepath_vectorized": ("speedup_batched",),
}
# Measurement fields that identify "the same measurement" across runs.
KEY_FIELDS = ("workload", "mechanism", "pointer_scheme", "host_index")


def load_record(path: str) -> dict:
    """Load one benchmark JSON record, validating its shape."""
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    name = record.get("benchmark")
    if name not in GATED_METRICS:
        raise SystemExit(
            f"{path}: unknown benchmark {name!r}; expected one of "
            f"{sorted(GATED_METRICS)}"
        )
    return record


def measurement_key(record_name: str, measurement: dict) -> tuple:
    """Stable identity of one measurement across benchmark runs."""
    return (record_name,) + tuple(
        measurement.get(field, "-") for field in KEY_FIELDS
    )


def index_measurements(records: list[dict]) -> dict[tuple, dict]:
    """Key → measurement over every record's measurement list."""
    indexed: dict[tuple, dict] = {}
    for record in records:
        for measurement in record["measurements"]:
            indexed[measurement_key(record["benchmark"], measurement)] = (
                measurement
            )
    return indexed


def check(records: list[dict], baseline: dict, min_speedup: float,
          tolerance: float) -> list[str]:
    """Return a list of failure messages (empty when the gate passes)."""
    failures: list[str] = []
    baseline_measurements = index_measurements(baseline.get("records", []))
    for record in records:
        metrics = GATED_METRICS[record["benchmark"]]
        for measurement in record["measurements"]:
            key = measurement_key(record["benchmark"], measurement)
            label = "/".join(str(part) for part in key)
            if not measurement.get("results_agree", True):
                failures.append(f"{label}: scalar and vectorized paths "
                                f"returned different results")
            reference = baseline_measurements.get(key)
            for metric in metrics:
                value = measurement.get(metric)
                if value is None:
                    failures.append(f"{label}: record is missing {metric}")
                    continue
                if value < min_speedup:
                    failures.append(
                        f"{label}: {metric} {value:.2f}x fell below the "
                        f"{min_speedup:.2f}x floor"
                    )
                if reference is not None and metric in reference:
                    floor = (1.0 - tolerance) * reference[metric]
                    if value < floor:
                        failures.append(
                            f"{label}: {metric} {value:.2f}x degraded more "
                            f"than {tolerance:.0%} vs. baseline "
                            f"{reference[metric]:.2f}x (floor {floor:.2f}x)"
                        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("records", nargs="+",
                        help="benchmark JSON records to gate")
    parser.add_argument("--baseline", default=None,
                        help="committed baseline JSON to compare against")
    parser.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="write a fresh baseline from the records "
                             "instead of gating")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="hard floor for every gated speedup (default 1.0)")
    parser.add_argument("--tolerance", type=float, default=0.3,
                        help="allowed relative degradation vs. the baseline "
                             "(default 0.3 = 30%%)")
    args = parser.parse_args(argv)

    records = [load_record(path) for path in args.records]

    if args.write_baseline:
        baseline = {"records": records}
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2)
            handle.write("\n")
        print(f"wrote baseline {args.write_baseline} "
              f"({sum(len(r['measurements']) for r in records)} measurements)")
        return 0

    baseline = {}
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)

    failures = check(records, baseline, args.min_speedup, args.tolerance)
    if failures:
        print("perf-regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    gated = sum(len(record["measurements"]) for record in records)
    print(f"perf-regression gate passed: {gated} measurements, "
          f"min speedup {args.min_speedup:.2f}x, tolerance "
          f"{args.tolerance:.0%} vs. "
          f"{args.baseline or 'no baseline (floor check only)'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
