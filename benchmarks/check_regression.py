"""CI perf-regression gate over the emitted benchmark JSON records.

The vectorization benchmarks (``bench_hotpath_vectorized.py``,
``bench_writepath_vectorized.py``) emit JSON records whose measurements
carry vectorized-vs-scalar speedups, and ``bench_planner.py`` emits
planner-vs-manual-plan ratios plus the paged leaf-run-gather speedup.  This
gate enforces the repo's perf trajectory on every CI run:

* every gated metric must stay >= its floor (``--min-speedup``, default
  1.0, unless ``GATED_METRICS`` pins an explicit per-metric floor — the
  planner ratios use 0.9, i.e. "never slower than 1.1x the best manual
  plan"), and
* every metric must not degrade more than ``--tolerance`` (default 30%)
  relative to the committed baseline ``BENCH_ci_baseline.json``.

Usage::

    # gate current records against the committed baseline
    python benchmarks/check_regression.py --baseline BENCH_ci_baseline.json \
        hotpath_ci.json writepath_ci.json

    # regenerate the baseline from fresh records (after an intentional change)
    python benchmarks/check_regression.py --write-baseline \
        BENCH_ci_baseline.json hotpath_ci.json writepath_ci.json

Speedups are ratios of two paths measured back-to-back on the same machine,
so they transfer across hardware far better than absolute throughput —
which is what makes a committed baseline meaningful on CI runners.
"""

from __future__ import annotations

import argparse
import json
import sys

# Which speedup metrics gate which benchmark record.  The floor is an
# explicit per-metric minimum; ``None`` falls back to ``--min-speedup``.
# The planner ratios race two full engine call paths against each other, so
# their floor is 0.9 — "never slower than 1.1x the best manual plan" — while
# the vectorization speedups keep the hard >= 1.0 floor.  The paged gather
# also floors at 0.9: its honest CI-size margin is ~1.1-1.2x (page reads
# dominate both paths), which sits within runner noise of a hard 1.0 floor
# — the same reason the stock workload is excluded from the hotpath gate;
# the 30% baseline tolerance still catches a real regression.
GATED_METRICS = {
    "hotpath_vectorized": {"speedup_vectorized": None, "speedup_batched": None},
    "writepath_vectorized": {"speedup_batched": None},
    "planner": {"speedup_vs_best": 0.9, "speedup_vs_worst": 0.9},
    "planner_point": {"speedup_vs_worst": 0.9},
    "paged_read": {"speedup_gather": 0.9},
    # Hermit-vs-baseline throughput ratio on the power-law sensor workload:
    # the adaptive leaf models hold the gap at <= 3x (measured 2.3-2.6x at
    # the CI batch size, i.e. ratios 0.38-0.43), down from ~8x and worse
    # under fixed linear bands — the floor is the acceptance criterion
    # itself and keeps the gap from silently reopening.
    "sensor_fp": {"hermit_vs_baseline": 1.0 / 3.0},
    # Batched query execution: query_many / query_conjunctive_many raced
    # against the per-query Database.query loop.  The batch API must never
    # lose to the loop on any (mechanism, scheme, class) combination
    # (floor 1.0), and the fully array-native configuration — range
    # batches on the sorted-column path under physical pointers — must
    # hold the >= 3x acceptance target (measured ~5-7x; B+-tree-backed
    # combinations measure ~2.4-3.3x, bounded by per-entry Python leaf
    # walks that batching cannot remove).
    "query_throughput": {"batched_vs_loop": None},
    "query_throughput_range": {"batched_vs_loop": 3.0},
    # B+-tree-backed range batches (Hermit translation + host-index probes
    # under physical pointers): the vectorized TRS batch translation plus
    # the flattened-leaf-level host probe raised this combination from
    # ~2.6x to ~4.4x, and the floor pins the new level.
    "query_throughput_btree_range": {"batched_vs_loop": 4.0},
    # Sharded scatter/gather (bench_sharding.py).  The parallel record is
    # only emitted on machines with enough cores to seat every shard (CI
    # runners: 4 vCPUs) and gates the >= 2x acceptance criterion; the
    # sanity record is emitted everywhere and gates correctness plus a
    # transport-overhead floor.  On one core N time-sliced workers pay
    # merge + pickling overhead with no parallelism to show for it and
    # measure 0.35-0.55x with heavy scheduler noise, so the floor (0.25)
    # only catches the transport becoming a multiple slower — the >= 2x
    # criterion lives entirely in the parallel record.
    "sharding_parallel": {"sharded_vs_single": 2.0},
    "sharding_sanity": {"sharded_vs_single": 0.25},
    # Durability: insert throughput per fsync policy as a ratio of the
    # no-WAL path, plus recovery throughput vs. the live insert path.
    # All four policies measure within ~20% of each other at the CI chunk
    # size (typical best-of-5: ~0.95 off, ~0.85 batch, ~0.8 always,
    # ~0.85 recovery), which makes the ratios noise-dominated — observed
    # run-to-run spread is +-0.15.  The floors catch a qualitative
    # regression (WAL encoding or replay becoming a multiple slower), not
    # small drifts; those are pinned by the 30% baseline tolerance against
    # per-metric-minimum baseline values.
    "durability": {
        "wal_off_ratio": 0.7,
        "wal_batch_ratio": 0.6,
        "wal_always_ratio": 0.5,
        "recovery_vs_insert": 0.5,
    },
    # Serving front end: coalesced sustained QPS over per-call under the
    # same open-loop arrival schedule.  The acceptance demonstration at CI
    # scale is >= 2x (typical best-of-5: 2.0-2.5x), but open-loop runs on
    # shared runners are scheduling-noise-sensitive, so the hard floor is
    # the contract itself — coalescing must never *lose* to per-call —
    # and the 30% baseline tolerance polices the 2x margin.
    "serving": {"coalesced_vs_percall": 1.0},
    # Epoch-keyed result cache raced on vs. off through the same coalescing
    # server.  Under the Zipfian mix (s=1.1, 192 distinct requests) the
    # cache must pay for itself with margin — >= 1.3x sustained QPS is the
    # acceptance floor (measured headroom above it at CI scale).  Under the
    # uniform mix nearly every probe misses, so the record pins miss-path
    # overhead instead: cache-on must hold >= 0.9x of cache-off throughput,
    # i.e. probing + filling + eviction churn never costs more than 10%.
    "serving_result_cache": {"cached_vs_uncached": 1.3},
    "serving_result_cache_uniform": {"cached_vs_uncached": 0.9},
}
# Measurement fields that identify "the same measurement" across runs.
KEY_FIELDS = ("workload", "mechanism", "pointer_scheme", "host_index")


def load_records(path: str) -> list[dict]:
    """Load benchmark JSON records from one file, validating their shape.

    A file holds either a single record or — like the committed baseline —
    a ``{"records": [...]}`` bundle.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    records = payload["records"] if "records" in payload else [payload]
    for record in records:
        name = record.get("benchmark")
        if name not in GATED_METRICS:
            raise SystemExit(
                f"{path}: unknown benchmark {name!r}; expected one of "
                f"{sorted(GATED_METRICS)}"
            )
    return records


def measurement_key(record_name: str, measurement: dict) -> tuple:
    """Stable identity of one measurement across benchmark runs."""
    return (record_name,) + tuple(
        measurement.get(field, "-") for field in KEY_FIELDS
    )


def index_measurements(records: list[dict]) -> dict[tuple, dict]:
    """Key → measurement over every record's measurement list."""
    indexed: dict[tuple, dict] = {}
    for record in records:
        for measurement in record["measurements"]:
            indexed[measurement_key(record["benchmark"], measurement)] = (
                measurement
            )
    return indexed


def check(records: list[dict], baseline: dict, min_speedup: float,
          tolerance: float) -> list[str]:
    """Return a list of failure messages (empty when the gate passes)."""
    failures: list[str] = []
    baseline_measurements = index_measurements(baseline.get("records", []))
    for record in records:
        metrics = GATED_METRICS[record["benchmark"]]
        for measurement in record["measurements"]:
            key = measurement_key(record["benchmark"], measurement)
            label = "/".join(str(part) for part in key)
            if not measurement.get("results_agree", True):
                failures.append(f"{label}: the raced paths returned "
                                f"different results")
            reference = baseline_measurements.get(key)
            for metric, metric_floor in metrics.items():
                floor_value = (metric_floor if metric_floor is not None
                               else min_speedup)
                value = measurement.get(metric)
                if value is None:
                    failures.append(f"{label}: record is missing {metric}")
                    continue
                if value < floor_value:
                    failures.append(
                        f"{label}: {metric} {value:.2f}x fell below the "
                        f"{floor_value:.2f}x floor"
                    )
                if reference is not None and metric in reference:
                    floor = (1.0 - tolerance) * reference[metric]
                    if value < floor:
                        failures.append(
                            f"{label}: {metric} {value:.2f}x degraded more "
                            f"than {tolerance:.0%} vs. baseline "
                            f"{reference[metric]:.2f}x (floor {floor:.2f}x)"
                        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("records", nargs="+",
                        help="benchmark JSON records to gate")
    parser.add_argument("--baseline", default=None,
                        help="committed baseline JSON to compare against")
    parser.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="write a fresh baseline from the records "
                             "instead of gating")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="hard floor for every gated speedup (default 1.0)")
    parser.add_argument("--tolerance", type=float, default=0.3,
                        help="allowed relative degradation vs. the baseline "
                             "(default 0.3 = 30%%)")
    args = parser.parse_args(argv)

    records = [record for path in args.records
               for record in load_records(path)]

    if args.write_baseline:
        baseline = {"records": records}
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2)
            handle.write("\n")
        print(f"wrote baseline {args.write_baseline} "
              f"({sum(len(r['measurements']) for r in records)} measurements)")
        return 0

    baseline = {}
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)

    failures = check(records, baseline, args.min_speedup, args.tolerance)
    if failures:
        print("perf-regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    gated = sum(len(record["measurements"]) for record in records)
    print(f"perf-regression gate passed: {gated} measurements, "
          f"min speedup {args.min_speedup:.2f}x, tolerance "
          f"{args.tolerance:.0%} vs. "
          f"{args.baseline or 'no baseline (floor check only)'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
