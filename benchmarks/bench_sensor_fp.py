"""Sensor-workload false-positive gap benchmark — Hermit vs. baseline.

Not a paper figure: this benchmark pins the repo's own fix for the ROADMAP
"Sensor-workload false positives" item.  On the power-law sensor response the
original fixed linear confidence bands admitted so many false positives that
Hermit trailed the complete secondary index by ~8x; the adaptive leaf models
(per-leaf linear / log-linear / piecewise-linear selection, the
candidate-count-aware ``max_fp_ratio`` split criterion, noise-floor band
widening and outlier-only demotion) close that to <= 3x, which CI gates via
the ``hermit_vs_baseline`` ratio (floor 1/3 in
``benchmarks/check_regression.py``).

Run as pytest (small scale, correctness smoke)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sensor_fp.py -s

or standalone, emitting the gated JSON record::

    PYTHONPATH=src python benchmarks/bench_sensor_fp.py \
        --rows 120000 --queries 12 --output sensor_fp.json
"""

from __future__ import annotations

import argparse
import json
import sys

import pytest

from repro.bench.sensor_fp import SensorFpMeasurement, run_sensor_fp_suite
from repro.bench.timing import scaled
from repro.storage.identifiers import PointerScheme

SMALL_SCALE_ROWS = 20_000


def format_measurements(measurements: list[SensorFpMeasurement]) -> str:
    """Plain-text table of one suite run."""
    header = (
        f"{'workload':<10} {'host':<7} {'hermit':>10} {'baseline':>10} "
        f"{'ratio':>7} {'gap':>7} {'fp':>6} {'leaves':>7}  agree"
    )
    lines = [header, "-" * len(header)]
    for m in measurements:
        lines.append(
            f"{m.workload:<10} {m.host_index:<7} {m.hermit_kops:>9.2f}K "
            f"{m.baseline_kops:>9.2f}K {m.hermit_vs_baseline:>6.2f}x "
            f"{m.gap:>6.2f}x {m.hermit_fp_ratio:>6.3f} {m.trs_leaves:>7} "
            f" {m.results_agree}"
        )
    return "\n".join(lines)


@pytest.mark.figure("sensor_fp")
def test_sensor_fp_gap_small_scale(benchmark):
    """Small-scale smoke: both mechanisms agree and the gap stays bounded."""
    def run():
        return run_sensor_fp_suite(num_tuples=scaled(SMALL_SCALE_ROWS),
                                   selectivity=1e-3, num_queries=12, rounds=3)

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_measurements(measurements))
    assert all(m.results_agree for m in measurements)
    # The hard <= 3x acceptance applies at CI scale; at smoke scale only
    # guard against a wholesale regression to the pre-adaptive ~8x gap.
    assert all(m.hermit_vs_baseline > 0.2 for m in measurements)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--rows", type=int, default=120_000,
                        help="rows in the sensor table (default 120k, the "
                             "CI size)")
    parser.add_argument("--selectivity", type=float, default=1e-3,
                        help="range-query selectivity (default 1e-3)")
    parser.add_argument("--queries", type=int, default=12,
                        help="queries per measurement (default 12)")
    parser.add_argument("--rounds", type=int, default=5,
                        help="interleaved timing rounds, best kept (default 5)")
    parser.add_argument("--scheme", default="physical",
                        choices=["physical", "logical"])
    parser.add_argument("--host-index", default="btree",
                        choices=["btree", "sorted"])
    parser.add_argument("--output", default="bench_sensor_fp.json",
                        help="path of the emitted JSON record")
    args = parser.parse_args(argv)

    scheme = (PointerScheme.PHYSICAL if args.scheme == "physical"
              else PointerScheme.LOGICAL)
    measurements = run_sensor_fp_suite(
        num_tuples=args.rows, selectivity=args.selectivity,
        num_queries=args.queries, rounds=args.rounds,
        pointer_scheme=scheme, host_index_kind=args.host_index,
    )
    print(format_measurements(measurements))

    record = {
        "benchmark": "sensor_fp",
        "rows": args.rows,
        "selectivity": args.selectivity,
        "queries": args.queries,
        "pointer_scheme": args.scheme,
        "host_index": args.host_index,
        "measurements": [m.as_dict() for m in measurements],
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
    print(f"\nwrote {args.output}")

    if not all(m.results_agree for m in measurements):
        print("ERROR: Hermit and the baseline disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
