"""Figures 14 & 15 — Point-lookup time breakdown vs. number of tuples.

Paper result: with logical pointers Hermit spends an increasing share of its
time in the primary-index lookup as the tuple count grows (more false
positives to resolve), and compared to the baseline it spends a larger share
on the base table because every fetched tuple must be validated.
"""

from __future__ import annotations

import gc

import pytest

from _helpers import build_synthetic_setup
from repro.bench.harness import FigureData, run_point_batch
from repro.bench.report import format_figure
from repro.storage.identifiers import PointerScheme
from repro.workloads.queries import point_queries

TUPLE_COUNTS = [5_000, 15_000, 30_000]
# 300 point probes per figure point: with the adaptive leaf models the
# downstream (host/primary/base) phases shrank so much that the per-phase
# *fractions* of a 150-probe batch wobbled with scheduler noise; the larger
# batch keeps the shape assertions stable under parallel test load.
QUERIES = 300


def breakdown_by_tuples(label: str, scheme: PointerScheme,
                        figure_name: str) -> FigureData:
    figure = FigureData(figure_name, "number of tuples", "fraction of time")
    for count in TUPLE_COUNTS:
        setup = build_synthetic_setup("sigmoid", num_tuples=count,
                                      pointer_scheme=scheme)
        values = point_queries(setup.dataset.columns["colC"], count=QUERIES,
                               seed=14)
        # TRS-Tree nodes hold parent<->child cycles, so the previous sweep
        # iteration's tree dies only at a cyclic-GC pass; collect it now
        # rather than letting a gen-2 collection land inside a measured
        # phase and skew the per-phase fractions this figure asserts on.
        gc.collect()
        batch = run_point_batch(setup.mechanisms[label], values)
        for phase, fraction in batch.breakdown.fractions().items():
            figure.add_point(phase, count, fraction)
    return figure


@pytest.mark.figure("fig14")
def test_fig14_hermit_point_breakdown_logical(benchmark):
    figure = benchmark.pedantic(
        lambda: breakdown_by_tuples("HERMIT", PointerScheme.LOGICAL,
                                    "Figure 14 HERMIT (logical)"),
        rounds=1, iterations=1)
    print()
    print(format_figure(figure))
    assert figure.series["Primary Index"].ys[-1] > 0.05
    # The TRS-Tree share must not grow much with the tuple count.  Under the
    # pre-adaptive bands the downstream phases ballooned with table size
    # (ever more false positives to resolve), which made any TRS growth
    # invisible; the adaptive leaf models hold the candidate count roughly
    # constant across table sizes, so tree navigation is now the dominant —
    # and scheduler-noisiest — share, hence the wider 0.2 allowance.
    trs = figure.series["TRS-Tree"].ys
    assert trs[-1] <= trs[0] + 0.2


@pytest.mark.figure("fig14")
def test_fig14_hermit_point_breakdown_physical(benchmark):
    figure = benchmark.pedantic(
        lambda: breakdown_by_tuples("HERMIT", PointerScheme.PHYSICAL,
                                    "Figure 14 HERMIT (physical)"),
        rounds=1, iterations=1)
    print()
    print(format_figure(figure))
    assert figure.series["Primary Index"].ys == [0.0] * len(TUPLE_COUNTS)


@pytest.mark.figure("fig15")
def test_fig15_baseline_point_breakdown(benchmark):
    figure = benchmark.pedantic(
        lambda: breakdown_by_tuples("Baseline", PointerScheme.LOGICAL,
                                    "Figure 15 Baseline (logical)"),
        rounds=1, iterations=1)
    print()
    print(format_figure(figure))
    assert figure.series["TRS-Tree"].ys == [0.0] * len(TUPLE_COUNTS)
    # The baseline's point-lookup time is dominated by index navigation plus
    # the primary-index hop; base-table access is a single fetch.
    assert figure.series["Primary Index"].ys[-1] + figure.series[
        "Host Index"].ys[-1] > figure.series["Base Table"].ys[-1]
