"""Serving front end under open-loop load — coalesced vs. per-call.

Not a paper figure: this benchmark pins the serving layer's contract.
``num_clients`` simulated client streams issue point/range requests at an
offered rate above the engine's calibrated per-call capacity; routing them
through the coalescing :class:`repro.serving.Server` must (a) return
exactly the per-call results and (b) sustain at least the per-call QPS
(gated >= 1.0 by ``check_regression.py``; the acceptance demonstration at
CI scale is >= 2x).  The emitted record also carries p50/p99 latency
against the *scheduled* arrivals, so queueing delay is part of the story.

Run as pytest (small scale, correctness + sanity ratio)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -s

or standalone, emitting a JSON record for the perf trajectory::

    PYTHONPATH=src python benchmarks/bench_serving.py \
        --rows 60000 --clients 64 --requests-per-client 40 \
        --output serving.json
"""

from __future__ import annotations

import argparse
import json
import sys

import pytest

from repro.bench.serving import (
    ServingMeasurement,
    build_serving_setup,
    measure_serving,
)
from repro.bench.timing import scaled

SMALL_SCALE_ROWS = 8_000


def format_measurement(measurement: ServingMeasurement) -> str:
    """Plain-text summary of one open-loop run."""
    m = measurement
    return "\n".join([
        f"clients {m.num_clients}, requests {m.num_requests}, "
        f"offered {m.offered_qps / 1e3:.1f}K qps "
        f"(rows {m.num_tuples})",
        f"  per-call : {m.percall_qps / 1e3:>8.1f}K qps   "
        f"p50 {m.percall_p50_ms:>7.2f} ms   p99 {m.percall_p99_ms:>7.2f} ms",
        f"  coalesced: {m.coalesced_qps / 1e3:>8.1f}K qps   "
        f"p50 {m.coalesced_p50_ms:>7.2f} ms   "
        f"p99 {m.coalesced_p99_ms:>7.2f} ms   "
        f"(mean batch {m.mean_batch:.1f}, max {m.max_batch})",
        f"  coalesced vs per-call: {m.coalesced_vs_percall:.2f}x   "
        f"agree: {m.results_agree}",
    ])


@pytest.mark.serving
@pytest.mark.figure("serving")
def test_coalesced_serving_beats_percall(benchmark):
    """Small-scale run: results agree; coalescing never collapses."""
    def run():
        setup = build_serving_setup(scaled(SMALL_SCALE_ROWS))
        return measure_serving(setup, num_clients=16,
                               requests_per_client=20, rounds=2)

    measurement, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_measurement(measurement))
    assert measurement.results_agree
    # At smoke scale the schedule is short and thread startup is a visible
    # fraction; pin a loose floor that still catches the server degenerating
    # into per-request execution.
    assert measurement.coalesced_vs_percall > 0.5
    assert measurement.mean_batch > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--rows", type=int, default=60_000,
                        help="rows in the Synthetic table (default 60k)")
    parser.add_argument("--clients", type=int, default=64,
                        help="simulated client streams (default 64)")
    parser.add_argument("--requests-per-client", type=int, default=40,
                        help="requests per client stream (default 40)")
    parser.add_argument("--overload", type=float, default=3.0,
                        help="offered rate as a multiple of calibrated "
                             "per-call capacity (default 3.0)")
    parser.add_argument("--selectivity", type=float, default=2e-3,
                        help="range-request selectivity (default 2e-3)")
    parser.add_argument("--rounds", type=int, default=5,
                        help="interleaved best-of rounds (default 5)")
    parser.add_argument("--output", default="bench_serving.json",
                        help="path of the emitted JSON record")
    args = parser.parse_args(argv)

    setup = build_serving_setup(args.rows)
    measurement, _ = measure_serving(
        setup, num_clients=args.clients,
        requests_per_client=args.requests_per_client,
        selectivity=args.selectivity, overload=args.overload,
        rounds=args.rounds,
    )
    print(format_measurement(measurement))

    bundle = {
        "records": [
            {
                "benchmark": "serving",
                "rows": args.rows,
                "clients": args.clients,
                "overload": args.overload,
                "measurements": [measurement.as_dict()],
            },
        ],
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(bundle, handle, indent=2)
    print(f"\nwrote {args.output}")

    if not measurement.results_agree:
        print("ERROR: coalesced and per-call results disagree",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
