"""Serving front end under open-loop load — coalesced vs. per-call.

Not a paper figure: this benchmark pins the serving layer's contract.
``num_clients`` simulated client streams issue point/range requests at an
offered rate above the engine's calibrated per-call capacity; routing them
through the coalescing :class:`repro.serving.Server` must (a) return
exactly the per-call results and (b) sustain at least the per-call QPS
(gated >= 1.0 by ``check_regression.py``; the acceptance demonstration at
CI scale is >= 2x).  The emitted record also carries p50/p99 latency
against the *scheduled* arrivals, so queueing delay is part of the story.

Run as pytest (small scale, correctness + sanity ratio)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -s

or standalone, emitting a JSON record for the perf trajectory::

    PYTHONPATH=src python benchmarks/bench_serving.py \
        --rows 60000 --clients 64 --requests-per-client 40 \
        --output serving.json

With ``--cache`` (the default) the run additionally races the epoch-keyed
result cache on vs. off through the same coalescing server under a
Zipfian request mix (``serving_result_cache``, gated >= 1.3x) and under a
uniform mix (``serving_result_cache_uniform``, the miss-path overhead
guard gated >= 0.9x).  ``--no-cache`` restores the plain serving record
only.
"""

from __future__ import annotations

import argparse
import json
import sys

import pytest

from repro.bench.serving import (
    ResultCacheMeasurement,
    ServingMeasurement,
    build_serving_setup,
    measure_result_cache,
    measure_serving,
)
from repro.bench.timing import scaled
from repro.cache.result_cache import ResultCacheConfig

SMALL_SCALE_ROWS = 8_000


def format_measurement(measurement: ServingMeasurement) -> str:
    """Plain-text summary of one open-loop run."""
    m = measurement
    return "\n".join([
        f"clients {m.num_clients}, requests {m.num_requests}, "
        f"offered {m.offered_qps / 1e3:.1f}K qps "
        f"(rows {m.num_tuples})",
        f"  per-call : {m.percall_qps / 1e3:>8.1f}K qps   "
        f"p50 {m.percall_p50_ms:>7.2f} ms   p99 {m.percall_p99_ms:>7.2f} ms",
        f"  coalesced: {m.coalesced_qps / 1e3:>8.1f}K qps   "
        f"p50 {m.coalesced_p50_ms:>7.2f} ms   "
        f"p99 {m.coalesced_p99_ms:>7.2f} ms   "
        f"(mean batch {m.mean_batch:.1f}, max {m.max_batch})",
        f"  coalesced vs per-call: {m.coalesced_vs_percall:.2f}x   "
        f"agree: {m.results_agree}",
    ])


def format_cache_measurement(measurement: ResultCacheMeasurement) -> str:
    """Plain-text summary of one cache-on vs. cache-off race."""
    m = measurement
    mode = "via server" if m.through_server else "engine-direct"
    return "\n".join([
        f"mix {m.mix} (s={m.zipf_s}, distinct {m.distinct_requests}), "
        f"clients {m.num_clients}, requests {m.num_requests} "
        f"(rows {m.num_tuples}, {mode})",
        f"  cache off: {m.uncached_qps / 1e3:>8.1f}K qps",
        f"  cache on : {m.cached_qps / 1e3:>8.1f}K qps   "
        f"hit ratio {m.hit_ratio:.3f}   "
        f"({m.cache_entries} entries, {m.cache_bytes / 1024:.1f} KiB)",
        f"  cached vs uncached: {m.cached_vs_uncached:.2f}x   "
        f"agree: {m.results_agree}",
    ])


@pytest.mark.serving
@pytest.mark.figure("serving")
def test_result_cache_serving_smoke(benchmark):
    """Small-scale cache race: identical results, hits actually happen."""
    def run():
        setup = build_serving_setup(scaled(SMALL_SCALE_ROWS),
                                    result_cache=ResultCacheConfig())
        return measure_result_cache(setup, num_clients=16,
                                    requests_per_client=20, rounds=2,
                                    distinct_requests=48)

    measurement = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_cache_measurement(measurement))
    assert measurement.results_agree
    # At this scale the coalescer folds most traffic into a few huge
    # batches, so the doorkeeper defers a large share of fills — the hit
    # ratio is modest but must be real, with entries actually installed.
    assert measurement.hit_ratio > 0.05
    assert measurement.cache_entries > 0
    # Loose smoke floor: at this scale the win is noisy, but a cache that
    # costs more than ~half the throughput is broken.
    assert measurement.cached_vs_uncached > 0.5


@pytest.mark.serving
@pytest.mark.figure("serving")
def test_coalesced_serving_beats_percall(benchmark):
    """Small-scale run: results agree; coalescing never collapses."""
    def run():
        setup = build_serving_setup(scaled(SMALL_SCALE_ROWS))
        return measure_serving(setup, num_clients=16,
                               requests_per_client=20, rounds=2)

    measurement, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_measurement(measurement))
    assert measurement.results_agree
    # At smoke scale the schedule is short and thread startup is a visible
    # fraction; pin a loose floor that still catches the server degenerating
    # into per-request execution.
    assert measurement.coalesced_vs_percall > 0.5
    assert measurement.mean_batch > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--rows", type=int, default=60_000,
                        help="rows in the Synthetic table (default 60k)")
    parser.add_argument("--clients", type=int, default=64,
                        help="simulated client streams (default 64)")
    parser.add_argument("--requests-per-client", type=int, default=40,
                        help="requests per client stream (default 40)")
    parser.add_argument("--overload", type=float, default=3.0,
                        help="offered rate as a multiple of calibrated "
                             "per-call capacity (default 3.0)")
    parser.add_argument("--selectivity", type=float, default=2e-3,
                        help="range-request selectivity (default 2e-3)")
    parser.add_argument("--rounds", type=int, default=5,
                        help="interleaved best-of rounds (default 5)")
    parser.add_argument("--zipf-s", type=float, default=1.1,
                        help="Zipf exponent of the cache-race request mix "
                             "(default 1.1)")
    parser.add_argument("--cache", default=True,
                        action=argparse.BooleanOptionalAction,
                        help="also race the result cache on vs. off "
                             "(--no-cache emits the serving record only)")
    parser.add_argument("--output", default="bench_serving.json",
                        help="path of the emitted JSON record")
    args = parser.parse_args(argv)

    result_cache = ResultCacheConfig() if args.cache else None
    setup = build_serving_setup(args.rows, result_cache=result_cache)
    measurement, _ = measure_serving(
        setup, num_clients=args.clients,
        requests_per_client=args.requests_per_client,
        selectivity=args.selectivity, overload=args.overload,
        rounds=args.rounds,
    )
    print(format_measurement(measurement))

    records = [
        {
            "benchmark": "serving",
            "rows": args.rows,
            "clients": args.clients,
            "overload": args.overload,
            "measurements": [measurement.as_dict()],
        },
    ]
    agree = measurement.results_agree

    if args.cache:
        # The Zipfian race runs open-loop through the coalescing server at
        # 8x overload (lower offered rates clamp the measurable win to the
        # arrival schedule); the uniform overhead guard races the engine's
        # batch path directly, where a ~5% per-miss cost is measurable
        # above the serving machinery's scheduling noise.
        for benchmark_name, mix, through_server in (
                ("serving_result_cache", "zipfian", True),
                ("serving_result_cache_uniform", "uniform", False)):
            if through_server:
                requests_per_client = args.requests_per_client
                rounds = args.rounds
            else:
                # The overhead guard pins a ~5% per-miss cost against
                # machine noise several times that size, so it leans on
                # sample count: engine-direct rounds are cheap (no
                # arrival schedule), so double the request count and
                # take the median over nine paired rounds — enough
                # samples to outvote a GC pause or scheduler hiccup
                # landing in any one round.
                requests_per_client = args.requests_per_client * 2
                rounds = max(args.rounds * 3, 9)
            cache_measurement = measure_result_cache(
                setup, num_clients=args.clients,
                requests_per_client=requests_per_client,
                mix=mix, zipf_s=args.zipf_s, rounds=rounds,
                through_server=through_server,
            )
            print()
            print(format_cache_measurement(cache_measurement))
            records.append({
                "benchmark": benchmark_name,
                "rows": args.rows,
                "clients": args.clients,
                "mix": mix,
                "zipf_s": args.zipf_s,
                "through_server": through_server,
                "measurements": [cache_measurement.as_dict()],
            })
            agree = agree and cache_measurement.results_agree

    bundle = {"records": records}
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(bundle, handle, indent=2)
    print(f"\nwrote {args.output}")

    if not agree:
        print("ERROR: contending sides returned different results",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
