"""Figure 5 — Memory consumption vs. number of indexes (Stock).

Paper result: building one new index per stock with Hermit consumes roughly
half the total memory of building complete B+-trees (Figure 5a), and the
space breakdown (Figure 5b) shows the baseline dominated by the newly created
indexes while Hermit's new indexes are negligible.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import FigureData
from repro.bench.report import format_figure, format_memory_report
from repro.bench.timing import scaled
from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.storage.memory import BYTES_PER_MB
from repro.workloads.stock import generate_stock, high_column, load_stock

INDEX_COUNTS = [5, 10, 15, 20]  # scaled stand-in for the paper's 25..100


def total_memory_mb(method: IndexMethod, num_stocks: int) -> tuple[float, object]:
    """Total database memory (MB) after indexing every high-price column."""
    dataset = generate_stock(num_stocks=num_stocks, num_days=scaled(2_000))
    database = Database()
    table_name = load_stock(database, dataset)
    for stock in range(num_stocks):
        database.create_index(f"new_high_{stock}", table_name, high_column(stock),
                              method=method,
                              host_column=f"low_{stock}"
                              if method is IndexMethod.HERMIT else None)
    report = database.memory_report(table_name)
    return report.total_mb, report


@pytest.mark.figure("fig5")
def test_fig05_memory_vs_number_of_indexes(benchmark):
    """Regenerate Figure 5a/5b and check the Hermit-vs-Baseline space ratio."""
    def sweep():
        figure = FigureData("Figure 5a", "number of indexes", "memory (MB)")
        reports = {}
        for count in INDEX_COUNTS:
            for method, label in ((IndexMethod.HERMIT, "HERMIT"),
                                  (IndexMethod.BTREE, "Baseline")):
                total, report = total_memory_mb(method, count)
                figure.add_point(label, count, total)
                reports[(label, count)] = report
        return figure, reports

    figure, reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    figure.notes.append("paper: HERMIT total memory ~half of Baseline at 100 indexes")
    print()
    print(format_figure(figure))
    largest = INDEX_COUNTS[-1]
    print(format_memory_report(reports[("HERMIT", largest)],
                               title=f"Figure 5b HERMIT ({largest} indexes)"))
    print(format_memory_report(reports[("Baseline", largest)],
                               title=f"Figure 5b Baseline ({largest} indexes)"))

    hermit_total = figure.series["HERMIT"].ys[-1]
    baseline_total = figure.series["Baseline"].ys[-1]
    assert hermit_total < 0.75 * baseline_total

    hermit_new = reports[("HERMIT", largest)].components["new_indexes"]
    baseline_new = reports[("Baseline", largest)].components["new_indexes"]
    assert hermit_new < baseline_new / 10
    # Baseline spends most of its memory on index maintenance (paper: >70%).
    baseline_report = reports[("Baseline", largest)]
    index_fraction = (baseline_report.fraction("new_indexes")
                      + baseline_report.fraction("existing_indexes"))
    assert index_fraction > 0.5
    assert baseline_new / BYTES_PER_MB > 0.0
