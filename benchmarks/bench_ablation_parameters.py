"""Ablations of the TRS-Tree design choices called out in DESIGN.md.

Not a paper figure; these benches quantify the design decisions the paper
only discusses qualitatively:

* ``node_fanout`` — wider nodes mean shallower trees but coarser partitions.
* ``max_height`` — capping the depth trades outlier-buffer growth for fewer
  nodes.
* sampling-based construction (Appendix D.2) — skips full fits for nodes that
  will clearly split, without changing lookup results.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import FigureData, construction_time, run_query_batch
from repro.bench.report import format_figure
from repro.bench.timing import scaled
from repro.core.config import TRSTreeConfig
from repro.core.trs_tree import TRSTree
from repro.index.base import KeyRange
from repro.storage.memory import BYTES_PER_MB
from repro.workloads.queries import range_queries
from repro.workloads.synthetic import generate_synthetic

NUM_TUPLES = 30_000


def sigmoid_arrays(num_tuples: int):
    dataset = generate_synthetic(scaled(num_tuples), "sigmoid",
                                 noise_fraction=0.01, seed=7)
    return (dataset.columns["colC"], dataset.columns["colB"],
            dataset.columns["colA"].astype(int))


def tree_with(config: TRSTreeConfig, arrays) -> TRSTree:
    targets, hosts, tids = arrays
    tree = TRSTree(config)
    tree.build(targets, hosts, tids)
    return tree


@pytest.mark.figure("ablation")
def test_ablation_node_fanout(benchmark):
    arrays = sigmoid_arrays(NUM_TUPLES)

    def sweep():
        figure = FigureData("Ablation: node_fanout", "fanout", "value")
        for fanout in (2, 4, 8, 16):
            tree = tree_with(TRSTreeConfig(node_fanout=fanout), arrays)
            figure.add_point("leaves", fanout, tree.num_leaves)
            figure.add_point("height", fanout, tree.height)
            figure.add_point("memory MB", fanout,
                             tree.memory_bytes() / BYTES_PER_MB)
        return figure

    figure = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_figure(figure))
    heights = figure.series["height"].ys
    # Wider fanout yields an equal-or-shallower tree.
    assert heights[-1] <= heights[0]


@pytest.mark.figure("ablation")
def test_ablation_max_height(benchmark):
    arrays = sigmoid_arrays(NUM_TUPLES)

    def sweep():
        figure = FigureData("Ablation: max_height", "max_height", "value")
        for max_height in (1, 2, 4, 10):
            tree = tree_with(TRSTreeConfig(max_height=max_height), arrays)
            figure.add_point("leaves", max_height, tree.num_leaves)
            figure.add_point("outliers", max_height, tree.num_outliers)
        return figure

    figure = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_figure(figure))
    outliers = figure.series["outliers"].ys
    # A single-level tree must absorb far more outliers than a deep one.
    assert outliers[0] >= outliers[-1]


@pytest.mark.figure("ablation")
def test_ablation_sampling_construction(benchmark):
    arrays = sigmoid_arrays(NUM_TUPLES)
    targets, hosts, tids = arrays

    def measure():
        plain = construction_time(
            lambda: tree_with(TRSTreeConfig(sample_fraction=None), arrays))
        sampled = construction_time(
            lambda: tree_with(TRSTreeConfig(sample_fraction=0.05), arrays))
        return plain, sampled

    plain_seconds, sampled_seconds = benchmark.pedantic(measure, rounds=1,
                                                        iterations=1)
    print(f"\nconstruction: full-fit={plain_seconds:.3f}s "
          f"sampled={sampled_seconds:.3f}s")

    # Sampling must never change lookup results.
    plain_tree = tree_with(TRSTreeConfig(sample_fraction=None), arrays)
    sampled_tree = tree_with(TRSTreeConfig(sample_fraction=0.05), arrays)
    domain = (float(targets.min()), float(targets.max()))
    for query in range_queries(domain, 0.001, count=5, seed=3):
        predicate = KeyRange(query.low, query.high)
        import numpy as np

        def resolve(tree):
            result = tree.lookup(predicate)
            candidates = {int(t) for t in result.outlier_tids}
            for host_range in result.host_ranges:
                candidates.update(
                    int(i) for i in np.flatnonzero(
                        (hosts >= host_range.low) & (hosts <= host_range.high)))
            return {tid for tid in candidates
                    if predicate.contains(float(targets[tid]))}

        assert resolve(plain_tree) == resolve(sampled_tree)


@pytest.mark.figure("ablation")
def test_ablation_error_bound_lookup_cost(benchmark):
    """Direct measurement of the space/computation trade-off (Section 6)."""
    dataset = generate_synthetic(scaled(NUM_TUPLES), "sigmoid",
                                 noise_fraction=0.01, seed=8)
    from repro.engine.catalog import IndexMethod
    from repro.engine.database import Database
    from repro.workloads.synthetic import load_synthetic

    def sweep():
        figure = FigureData("Ablation: error_bound trade-off", "error_bound",
                            "value")
        for error_bound in (1.0, 10.0, 100.0):
            database = Database()
            table_name = load_synthetic(database, dataset)
            entry = database.create_index(
                "hermit_colC", table_name, "colC", method=IndexMethod.HERMIT,
                host_column="colB",
                trs_config=TRSTreeConfig(error_bound=error_bound))
            hermit = entry.mechanism
            queries = range_queries((0.0, 1e6), 0.0005, count=20, seed=9)
            batch = run_query_batch(hermit, queries)
            figure.add_point("Kops", error_bound, batch.throughput.kops)
            figure.add_point("memory MB", error_bound,
                             hermit.memory_bytes() / BYTES_PER_MB)
            figure.add_point("false positives", error_bound,
                             batch.false_positive_ratio)
        return figure

    figure = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_figure(figure))
    # Larger error_bound never increases memory.
    memory = figure.series["memory MB"].ys
    assert memory[-1] <= memory[0] * 1.2
