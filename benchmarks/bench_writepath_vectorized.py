"""Write-path vectorization benchmark — per-row inserts vs. batched ``insert_many``.

Not a paper figure: this benchmark tracks the reproduction's own perf
trajectory, the write-side counterpart of ``bench_hotpath_vectorized.py``.
The PR that introduced it gave every index a batched write API (sorted merge
into B+-tree leaf runs, grouped hash-bucket appends, ``searchsorted`` merges
into the sorted-column arrays) and every secondary mechanism a
column-oriented ``insert_many``, and rewired ``Database.insert_many`` to
drive them end to end; ``Database.insert`` delegates to the same machinery
with a batch of one, so racing the two paths isolates exactly the per-row
overhead the batching removed.

Run as pytest (small scale, correctness + sanity speedup)::

    PYTHONPATH=src python -m pytest benchmarks/bench_writepath_vectorized.py -s

or standalone at full scale, emitting a JSON record for the trajectory::

    PYTHONPATH=src python benchmarks/bench_writepath_vectorized.py \
        --rows 1000000 --output writepath.json

The acceptance target of the write-path PR: batched ``insert_many`` >= 5x
the per-row scalar loop when inserting 1M rows into an indexed table.
"""

from __future__ import annotations

import argparse
import json
import sys

import pytest

from repro.bench.timing import scaled
from repro.bench.writepath import (
    WritepathMeasurement,
    run_writepath_suite,
)
from repro.bench.hotpath import WORKLOADS
from repro.storage.identifiers import PointerScheme

SMALL_SCALE_ROWS = 3_000


def format_measurements(measurements: list[WritepathMeasurement]) -> str:
    """Plain-text table of one suite run."""
    header = (
        f"{'workload':<10} {'mechanism':<9} {'base':>9} {'inserted':>9} "
        f"{'scalar':>10} {'batched':>10} {'speedup':>8}  agree"
    )
    lines = [header, "-" * len(header)]
    for m in measurements:
        lines.append(
            f"{m.workload:<10} {m.mechanism:<9} {m.base_rows:>9} "
            f"{m.insert_rows:>9} {m.scalar_kops:>9.2f}K "
            f"{m.batched_kops:>9.2f}K {m.speedup_batched:>7.1f}x  "
            f"{m.results_agree}"
        )
    return "\n".join(lines)


@pytest.mark.figure("writepath")
@pytest.mark.parametrize("workload", WORKLOADS)
def test_writepath_scalar_vs_batched(benchmark, workload):
    """Small-scale run: paths agree and the batched path is not slower."""
    def run():
        return run_writepath_suite(
            workloads=(workload,), insert_rows=scaled(SMALL_SCALE_ROWS),
        )

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_measurements(measurements))
    assert all(m.results_agree for m in measurements)
    # The 5x acceptance target applies to the full-scale standalone run;
    # at this scale just require the batch path not to collapse.
    assert all(m.speedup_batched > 0.5 for m in measurements)


@pytest.mark.figure("writepath")
def test_writepath_logical_pointers_agree(benchmark):
    """The batched write path stays exact under logical pointers."""
    def run():
        return run_writepath_suite(
            workloads=("synthetic",), insert_rows=scaled(SMALL_SCALE_ROWS),
            pointer_scheme=PointerScheme.LOGICAL,
        )

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_measurements(measurements))
    assert all(m.results_agree for m in measurements)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--rows", type=int, default=1_000_000,
                        help="rows inserted through each path (default 1M)")
    parser.add_argument("--base-rows", type=int, default=None,
                        help="rows pre-loaded before the indexes exist "
                             "(default: rows // 4)")
    parser.add_argument("--workloads", nargs="+", default=list(WORKLOADS),
                        choices=list(WORKLOADS))
    parser.add_argument("--scheme", default="physical",
                        choices=["physical", "logical"])
    parser.add_argument("--output", default="bench_writepath_vectorized.json",
                        help="path of the emitted JSON record")
    args = parser.parse_args(argv)

    scheme = (PointerScheme.PHYSICAL if args.scheme == "physical"
              else PointerScheme.LOGICAL)
    measurements = run_writepath_suite(
        workloads=tuple(args.workloads), insert_rows=args.rows,
        base_rows=args.base_rows, pointer_scheme=scheme,
    )
    print(format_measurements(measurements))

    record = {
        "benchmark": "writepath_vectorized",
        "rows": args.rows,
        "base_rows": args.base_rows,
        "pointer_scheme": args.scheme,
        "measurements": [m.as_dict() for m in measurements],
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
    print(f"\nwrote {args.output}")

    if not all(m.results_agree for m in measurements):
        print("ERROR: scalar and batched write paths disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
