"""Table 1 — Training time of leaf models: linear regression vs. kernel models.

Paper result: fitting a linear regression takes fractions of a millisecond to
a few milliseconds (0.42 ms at 1K to 3.2 ms at 100K tuples), while SVR with
RBF/linear/polynomial kernels is at least 200x slower and becomes intractable
(>60 s) at 100K tuples.  We substitute kernel ridge regression for libsvm-SVR
(same dense-kernel O(n³) training profile, see DESIGN.md) and cap the kernel
models at 4K tuples so the benchmark terminates quickly; the scaling trend is
already unambiguous there.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.report import format_table
from repro.mlmodels.kernel import KernelRegressionModel
from repro.mlmodels.linear import LinearRegressionModel

LINEAR_SIZES = [1_000, 10_000, 100_000]
KERNEL_SIZES = [1_000, 2_000, 4_000]


def training_data(count: int, seed: int = 1):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1000.0, size=count)
    y = 2.0 * x + 10.0 + rng.normal(0.0, 5.0, size=count)
    return x, y


@pytest.mark.figure("table1")
def test_table1_linear_regression_benchmark(benchmark):
    x, y = training_data(10_000)
    result = benchmark(lambda: LinearRegressionModel().timed_fit(x, y))
    assert result.mean_absolute_error < 20.0


@pytest.mark.figure("table1")
@pytest.mark.parametrize("kernel", ["rbf", "linear", "polynomial"])
def test_table1_kernel_regression_benchmark(benchmark, kernel):
    x, y = training_data(1_000)
    model = KernelRegressionModel(kernel=kernel, regularization=1.0)
    result = benchmark.pedantic(lambda: model.timed_fit(x, y),
                                rounds=2, iterations=1)
    assert result.seconds > 0


@pytest.mark.figure("table1")
def test_table1_report_training_times(benchmark):
    def sweep():
        rows = []
        for size in LINEAR_SIZES:
            x, y = training_data(size)
            rows.append(["linear regression", size,
                         LinearRegressionModel().timed_fit(x, y).seconds])
        for kernel in ("rbf", "linear", "polynomial"):
            for size in KERNEL_SIZES:
                x, y = training_data(size)
                model = KernelRegressionModel(kernel=kernel, regularization=1.0)
                rows.append([f"kernel ({kernel})", size,
                             model.timed_fit(x, y).seconds])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("== Table 1: model training time (seconds) ==")
    print(format_table(["model", "tuples", "seconds"], rows))

    linear_times = {size: seconds for model, size, seconds in rows
                    if model == "linear regression"}
    kernel_times = {(model, size): seconds for model, size, seconds in rows
                    if model != "linear regression"}
    # Linear regression stays in the milliseconds range even at 100K tuples.
    assert linear_times[100_000] < 0.1
    # Every kernel model is orders of magnitude slower than OLS at 1K tuples
    # (the paper reports >=200x; we require >=50x to absorb BLAS variance).
    for kernel in ("rbf", "linear", "polynomial"):
        assert kernel_times[(f"kernel ({kernel})", 1_000)] > 50 * linear_times[1_000]
    # Kernel training time grows superlinearly with the training-set size.
    for kernel in ("rbf", "linear", "polynomial"):
        small = kernel_times[(f"kernel ({kernel})", 1_000)]
        large = kernel_times[(f"kernel ({kernel})", 4_000)]
        assert large > 3 * small
