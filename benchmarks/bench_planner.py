"""Planner benchmark — planner-chosen plans vs. manual plans, plus the paged
leaf-run gather.

Not a paper figure: this benchmark pins the query planner's contract.  The
planner must (a) pick plans whose end-to-end throughput stays within 1.1x of
the *best* manual single-index plan on range and conjunctive queries, (b) at
least beat the *worst* manual plan everywhere — point lookups included, where
a single probe is a ~10us operation and per-call Python dispatch, not plan
quality, dominates the best-plan ratio — and (c) return exactly the same
rows as every manual plan.  It also races
``PagedBPlusTree.range_search_array`` (leaf-run gather) against the scalar
``Index`` fallback it replaced, so the paged read path's vectorization is
tracked like the in-memory one.

Run as pytest (small scale, correctness + sanity ratios)::

    PYTHONPATH=src python -m pytest benchmarks/bench_planner.py -s

or standalone, emitting a JSON bundle for the perf trajectory::

    PYTHONPATH=src python benchmarks/bench_planner.py \
        --rows 200000 --selectivity 0.005 --output planner.json

The bundle holds three records — ``planner`` (single + conjunctive classes,
gated on ``speedup_vs_best`` and ``speedup_vs_worst``), ``planner_point``
(gated on ``speedup_vs_worst``) and ``paged_read`` (gated on
``speedup_gather``) — all checked by ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import sys

import pytest

from repro.bench.planner import (
    PagedReadMeasurement,
    PlannerMeasurement,
    run_paged_read_suite,
    run_planner_suite,
)
from repro.bench.timing import scaled
from repro.storage.identifiers import PointerScheme

SMALL_SCALE_ROWS = 20_000


def format_planner(measurements: list[PlannerMeasurement]) -> str:
    """Plain-text table of one planner suite run."""
    header = (
        f"{'class':<12} {'chosen':<18} {'best manual':<22} {'planner':>10} "
        f"{'best':>10} {'vs best':>8} {'vs worst':>9}  agree"
    )
    lines = [header, "-" * len(header)]
    for m in measurements:
        record = m.as_dict()
        lines.append(
            f"{m.query_class:<12} {m.chosen:<18} {m.best_manual:<22} "
            f"{record['planner_kops']:>9.2f}K "
            f"{record['manual_kops'][m.best_manual]:>9.2f}K "
            f"{m.speedup_vs_best:>7.2f}x {m.speedup_vs_worst:>8.2f}x  "
            f"{m.results_agree}"
        )
    return "\n".join(lines)


def format_paged(measurement: PagedReadMeasurement) -> str:
    """One-line summary of the paged read-path race."""
    record = measurement.as_dict()
    return (f"paged leaf-run gather: {record['gather_kops']:.2f}K vs scalar "
            f"{record['scalar_kops']:.2f}K "
            f"({measurement.speedup_gather:.2f}x, "
            f"agree={measurement.results_agree})")


@pytest.mark.figure("planner")
def test_planner_matches_manual_plans(benchmark):
    """Small-scale run: every plan agrees and the planner beats the worst."""
    def run():
        return run_planner_suite(num_tuples=scaled(SMALL_SCALE_ROWS),
                                 selectivity=5e-3, num_queries=10)

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_planner(measurements))
    assert all(m.results_agree for m in measurements)
    # At this scale per-query work is small, so only pin a loose floor; the
    # 0.9x acceptance floor applies to the full-scale standalone run.
    assert all(m.speedup_vs_best > 0.3 for m in measurements)


@pytest.mark.figure("planner")
def test_paged_gather_not_slower(benchmark):
    """The leaf-run gather must at least match the scalar fallback."""
    def run():
        return run_paged_read_suite(num_tuples=scaled(SMALL_SCALE_ROWS),
                                    num_queries=10)

    measurement = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_paged(measurement))
    assert measurement.results_agree
    assert measurement.speedup_gather > 0.8


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--rows", type=int, default=200_000,
                        help="rows in the Synthetic table (default 200k)")
    parser.add_argument("--selectivity", type=float, default=1e-2,
                        help="range-query selectivity (default 1e-2)")
    parser.add_argument("--queries", type=int, default=20,
                        help="queries per measurement (default 20)")
    parser.add_argument("--scheme", default="physical",
                        choices=["physical", "logical"])
    parser.add_argument("--output", default="bench_planner.json",
                        help="path of the emitted JSON record bundle")
    args = parser.parse_args(argv)

    scheme = (PointerScheme.PHYSICAL if args.scheme == "physical"
              else PointerScheme.LOGICAL)
    measurements = run_planner_suite(
        num_tuples=args.rows, selectivity=args.selectivity,
        num_queries=args.queries, pointer_scheme=scheme,
    )
    paged = run_paged_read_suite(num_tuples=args.rows,
                                 selectivity=args.selectivity,
                                 num_queries=max(args.queries, 30))
    print(format_planner(measurements))
    print()
    print(format_paged(paged))

    ranged = [m for m in measurements if m.query_class != "point"]
    points = [m for m in measurements if m.query_class == "point"]
    bundle = {
        "records": [
            {
                "benchmark": "planner",
                "rows": args.rows,
                "selectivity": args.selectivity,
                "queries": args.queries,
                "pointer_scheme": args.scheme,
                "measurements": [m.as_dict() for m in ranged],
            },
            {
                "benchmark": "planner_point",
                "rows": args.rows,
                "queries": args.queries,
                "pointer_scheme": args.scheme,
                "measurements": [m.as_dict() for m in points],
            },
            {
                "benchmark": "paged_read",
                "rows": args.rows,
                "selectivity": args.selectivity,
                "measurements": [paged.as_dict()],
            },
        ],
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(bundle, handle, indent=2)
    print(f"\nwrote {args.output}")

    if not all(m.results_agree for m in measurements) or not paged.results_agree:
        print("ERROR: planner and manual plans disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
