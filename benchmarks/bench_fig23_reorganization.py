"""Figure 23 — Online structure reorganization trace (Synthetic – Sigmoid).

Paper protocol: build the TRS-Tree on a small table, bulk-insert a large
number of new tuples, then trigger reorganization of 1/4 of the structure
(2 of the 8 first-level subtrees) every 5 seconds while running range
lookups.  The paper observes (a) stable lookup throughput during the trace
and (b) memory consumption dropping significantly as reorganization absorbs
the outlier buffers into refitted models.

The reproduction compresses the timeline (reorganization every trace step
instead of every 5 wall-clock seconds) and makes the "drastic workload
change" the paper mentions explicit: the bulk-inserted tuples follow a
*different* (linear) correlation than the one the TRS-Tree was built on, so
they initially pile up in the outlier buffers; reorganization then refits the
affected subtrees to the new dominant correlation and the buffers drain —
which is precisely the memory drop Figure 23b shows.  The 2-subtrees-per-step
schedule and the concurrent lookups match the paper's protocol.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import FigureData, run_query_batch
from repro.bench.report import format_figure
from repro.bench.timing import scaled
from repro.core.config import TRSTreeConfig
from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.storage.memory import BYTES_PER_MB
from repro.workloads.queries import range_queries
from repro.workloads.synthetic import generate_synthetic, load_synthetic

INITIAL_TUPLES = 2_000
BULK_INSERT = 20_000
TRACE_STEPS = 8
QUERIES_PER_STEP = 15
SELECTIVITY = 0.0001


@pytest.mark.figure("fig23")
def test_fig23_reorganization_trace(benchmark):
    def trace():
        dataset = generate_synthetic(scaled(INITIAL_TUPLES), "sigmoid",
                                     noise_fraction=0.01, seed=23)
        database = Database()
        table_name = load_synthetic(database, dataset)
        entry = database.create_index("hermit_colC", table_name, "colC",
                                      method=IndexMethod.HERMIT,
                                      host_column="colB",
                                      trs_config=TRSTreeConfig())
        hermit = entry.mechanism

        # Bulk-insert new tuples through the facade so every structure
        # (table, primary index, host index, TRS-Tree) is maintained online.
        # The new tuples follow a *linear* correlation — a drastic workload
        # change relative to the sigmoid the tree was built on — so they land
        # in the outlier buffers until reorganization refits the models.
        extra = generate_synthetic(scaled(BULK_INSERT), "linear",
                                   noise_fraction=0.01, seed=24)
        columns = dict(extra.columns)
        columns["colA"] = columns["colA"] + 10_000_000.0
        database.insert_many(table_name, columns)

        domain = (float(dataset.columns["colC"].min()),
                  float(dataset.columns["colC"].max()))
        figure = FigureData("Figure 23", "trace step", "Kops / MB")
        fanout = hermit.trs_tree.config.node_fanout
        for step in range(TRACE_STEPS):
            queries = range_queries(domain, SELECTIVITY, QUERIES_PER_STEP,
                                    seed=100 + step)
            batch = run_query_batch(hermit, queries)
            figure.add_point("lookup Kops", step, batch.throughput.kops)
            figure.add_point("memory MB", step,
                             hermit.memory_bytes() / BYTES_PER_MB)
            # Reorganize 1/4 of the structure per step (2 of 8 subtrees).
            first = (2 * step) % fanout
            hermit.reorganize_children([first, (first + 1) % fanout])
        return figure

    figure = benchmark.pedantic(trace, rounds=1, iterations=1)
    figure.notes.append("paper: throughput stays stable; memory drops during reorg")
    print()
    print(format_figure(figure))

    kops = figure.series["lookup Kops"].ys
    memory = figure.series["memory MB"].ys
    assert all(value > 0 for value in kops)
    # Memory drops significantly once reorganization has swept the structure
    # (the paper's Figure 23b shape): the outlier buffers holding the drifted
    # inserts are refitted into models.
    assert memory[-1] < 0.7 * max(memory)
    # Throughput stays usable throughout the trace.  Unlike the paper's trace
    # (same-distribution inserts) this protocol reorganizes under a workload
    # *shift*, so steps whose queries hit not-yet-reorganized or mixed regions
    # show transient dips; we assert on the median rather than the minimum and
    # record the deviation in EXPERIMENTS.md.
    ordered = sorted(kops)
    median = ordered[len(ordered) // 2]
    assert median > 0.05 * max(kops)
