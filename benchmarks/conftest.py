"""Pytest configuration for the benchmark suite.

Each ``bench_*`` module reproduces one table or figure of the paper.  The
modules use the ``benchmark`` fixture from pytest-benchmark for the headline
measurement and print the full reproduced series (the rows the paper plots)
to stdout, so that ``pytest benchmarks/ --benchmark-only -s`` regenerates the
data behind every figure.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make the sibling helper module importable regardless of how pytest was
# invoked (rootdir vs. benchmarks/ directly).
sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks a benchmark as reproducing a paper figure"
    )
