"""Figure 6 — Range lookup throughput vs. selectivity (Sensor).

Paper result: on the non-linearly correlated Sensor workload Hermit is ~22%
slower than the baseline at 1% selectivity, and the gap diminishes as the
selectivity grows.
"""

from __future__ import annotations

import pytest

from _helpers import (
    STOCK_SELECTIVITIES,
    assert_within_factor,
    build_sensor_setup,
    selectivity_sweep,
)
from repro.bench.report import format_figure
from repro.storage.identifiers import PointerScheme
from repro.workloads.queries import range_queries


@pytest.fixture(scope="module", params=[PointerScheme.LOGICAL,
                                        PointerScheme.PHYSICAL],
                ids=["logical", "physical"])
def sensor_setup(request):
    return build_sensor_setup(num_tuples=15_000,
                              pointer_scheme=request.param), request.param


@pytest.mark.figure("fig6")
@pytest.mark.parametrize("mechanism_label", ["HERMIT", "Baseline"])
def test_fig06_range_lookup_throughput(benchmark, sensor_setup, mechanism_label):
    """Benchmark one batch of 2.5%-selectivity range lookups per mechanism."""
    setup, _ = sensor_setup
    queries = range_queries(setup.domain, selectivity=0.025, count=20, seed=6)
    mechanism = setup.mechanisms[mechanism_label]
    results = benchmark(lambda: [mechanism.lookup_range(q.low, q.high)
                                 for q in queries])
    assert len(results) == 20


@pytest.mark.figure("fig6")
def test_fig06_report_selectivity_sweep(benchmark, sensor_setup):
    """Regenerate the Figure 6 series and check its shape."""
    setup, scheme = sensor_setup
    figure = benchmark.pedantic(
        lambda: selectivity_sweep(setup, STOCK_SELECTIVITIES,
                                  f"Figure 6 ({scheme.value} pointers)"),
        rounds=1, iterations=1)
    figure.notes.append("paper: HERMIT ~22% slower at 1% selectivity, gap shrinks")
    print()
    print(format_figure(figure))

    hermit = figure.series["HERMIT"].ys
    baseline = figure.series["Baseline"].ys
    # Hermit stays within a moderate factor across the sweep.  (The paper
    # reports ~22% at 1% selectivity.  The constant factor is larger here:
    # the TRS-Tree's wide confidence bands on the power-law sensor response
    # produce many false-positive candidates, and since the lookup path was
    # vectorized the baseline benefits more from the array-native scan than
    # Hermit's candidate-heavy pipeline does, so the gap is wider than under
    # the scalar seed path.)
    for h, b in zip(hermit, baseline):
        assert_within_factor(h, b, factor=10.0)
    # The relative gap at the largest selectivity is no worse than at the
    # smallest (the paper's "gap diminishes" trend, with slack for noise).
    assert hermit[-1] / baseline[-1] >= 0.5 * (hermit[0] / baseline[0])
