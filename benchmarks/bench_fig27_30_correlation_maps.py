"""Figures 27–30 — Hermit vs. Correlation Maps vs. Baseline under noise.

Paper result (Appendix E): CM's range-lookup throughput degrades sharply as
the percentage of injected noise grows (it has no outlier handling, so noisy
tuples drag extra host buckets into every mapping), while Hermit sustains its
throughput by parking noise in outlier buffers.  Both save memory relative to
the complete B+-tree, with Hermit saving the most; CM's memory shrinks as its
bucket size grows, trading throughput for space.  Figures 27/28 use the
Linear correlation, 29/30 the Sigmoid one.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import FigureData, run_query_batch
from repro.bench.report import format_figure
from repro.bench.timing import scaled
from repro.core.hermit import HermitIndex
from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.storage.memory import BYTES_PER_MB
from repro.workloads.queries import range_queries
from repro.workloads.synthetic import TARGET_DOMAIN, generate_synthetic, load_synthetic

NOISE_FRACTIONS = [0.0, 0.025, 0.05, 0.075, 0.10]
# The paper's CM bucket sizes (16 .. 4096 distinct values per bucket) are
# defined relative to a 20M-tuple table; with the scaled-down table we keep
# the *tuples-per-bucket* ratio comparable by using coarser bucket widths on
# the 10^6-wide value domain (2^12 .. 2^16 value units per bucket).
CM_TARGET_BUCKETS = [2 ** 12, 2 ** 14, 2 ** 16]
CM_HOST_BUCKET = 2 ** 14
NUM_TUPLES = 20_000
SELECTIVITY = 0.0001
QUERIES = 25


def build_mechanisms(correlation: str, noise: float):
    dataset = generate_synthetic(scaled(NUM_TUPLES), correlation,
                                 noise_fraction=noise, seed=27)
    database = Database()
    table_name = load_synthetic(database, dataset)
    mechanisms = {}
    hermit = database.create_index("hermit_colC", table_name, "colC",
                                   method=IndexMethod.HERMIT, host_column="colB")
    mechanisms["HERMIT"] = hermit.mechanism
    baseline = database.create_index("baseline_colC", table_name, "colC",
                                     method=IndexMethod.BTREE)
    mechanisms["Baseline"] = baseline.mechanism
    for width in CM_TARGET_BUCKETS:
        entry = database.create_index(
            f"cm_{width}", table_name, "colC",
            method=IndexMethod.CORRELATION_MAP, host_column="colB",
            cm_target_bucket_width=float(width),
            cm_host_bucket_width=float(CM_HOST_BUCKET))
        mechanisms[f"CM-{width}"] = entry.mechanism
    return mechanisms, dataset


def noise_sweep(correlation: str):
    throughput = FigureData(f"Figures 27/29 ({correlation})",
                            "injected noise", "Kops")
    memory = FigureData(f"Figures 28/30 ({correlation})",
                        "injected noise", "index memory (MB)")
    for noise in NOISE_FRACTIONS:
        mechanisms, dataset = build_mechanisms(correlation, noise)
        domain = (float(dataset.columns["colC"].min()),
                  float(dataset.columns["colC"].max()))
        queries = range_queries(domain, SELECTIVITY, QUERIES, seed=28)
        for label, mechanism in mechanisms.items():
            batch = run_query_batch(mechanism, queries)
            throughput.add_point(label, noise, batch.throughput.kops)
            memory.add_point(label, noise,
                             mechanism.memory_bytes() / BYTES_PER_MB)
    return throughput, memory


@pytest.mark.figure("fig27-30")
@pytest.mark.parametrize("correlation", ["linear", "sigmoid"])
def test_fig27_30_cm_comparison(benchmark, correlation):
    throughput, memory = benchmark.pedantic(lambda: noise_sweep(correlation),
                                            rounds=1, iterations=1)
    throughput.notes.append(
        "paper: HERMIT throughput stable vs noise; CM degrades with noise")
    memory.notes.append(
        "paper: HERMIT smallest; CM memory falls as bucket width grows")
    print()
    print(format_figure(throughput))
    print()
    print(format_figure(memory))

    hermit_tp = throughput.series["HERMIT"].ys
    # Hermit's throughput does not collapse as noise grows.
    assert hermit_tp[-1] > 0.3 * hermit_tp[0]

    finest_cm = f"CM-{CM_TARGET_BUCKETS[0]}"
    cm_tp = throughput.series[finest_cm].ys
    hermit_degradation = hermit_tp[0] / max(hermit_tp[-1], 1e-12)
    cm_degradation = cm_tp[0] / max(cm_tp[-1], 1e-12)
    # CM suffers more from noise than Hermit does.
    assert cm_degradation >= 0.8 * hermit_degradation

    # Memory: Hermit and CM both undercut the complete B+-tree at high noise;
    # Hermit is the smallest of all mechanisms at zero noise.
    baseline_memory = memory.series["Baseline"].ys
    hermit_memory = memory.series["HERMIT"].ys
    assert hermit_memory[0] < baseline_memory[0] / 5
    for width in CM_TARGET_BUCKETS:
        assert memory.series[f"CM-{width}"].ys[0] < baseline_memory[0]
    # CM memory decreases as the bucket width grows (coarser buckets).
    coarsest_cm = f"CM-{CM_TARGET_BUCKETS[-1]}"
    assert memory.series[coarsest_cm].ys[0] <= memory.series[finest_cm].ys[0]
    assert TARGET_DOMAIN[1] > TARGET_DOMAIN[0]
