"""Figure 9 — Range lookup throughput vs. selectivity (Synthetic – Sigmoid).

Paper result: even for the harder (polynomial-shaped) Sigmoid correlation the
performance gap between Hermit and the baseline barely changes relative to
the Linear case — the TRS-Tree simply uses more leaves.
"""

from __future__ import annotations

import pytest

from _helpers import (
    SYNTHETIC_SELECTIVITIES,
    assert_within_factor,
    build_synthetic_setup,
    geometric_mean,
    selectivity_sweep,
)
from repro.bench.report import format_figure
from repro.storage.identifiers import PointerScheme
from repro.workloads.queries import range_queries


@pytest.fixture(scope="module", params=[PointerScheme.LOGICAL,
                                        PointerScheme.PHYSICAL],
                ids=["logical", "physical"])
def sigmoid_setup(request):
    return build_synthetic_setup("sigmoid", num_tuples=40_000,
                                 pointer_scheme=request.param), request.param


@pytest.mark.figure("fig9")
@pytest.mark.parametrize("mechanism_label", ["HERMIT", "Baseline"])
def test_fig09_range_lookup_throughput(benchmark, sigmoid_setup, mechanism_label):
    setup, _ = sigmoid_setup
    queries = range_queries(setup.domain, selectivity=0.0005, count=30, seed=9)
    mechanism = setup.mechanisms[mechanism_label]
    results = benchmark(lambda: [mechanism.lookup_range(q.low, q.high)
                                 for q in queries])
    assert len(results) == 30


@pytest.mark.figure("fig9")
def test_fig09_report_selectivity_sweep(benchmark, sigmoid_setup):
    setup, scheme = sigmoid_setup
    figure = benchmark.pedantic(
        lambda: selectivity_sweep(setup, SYNTHETIC_SELECTIVITIES,
                                  f"Figure 9 ({scheme.value} pointers)",
                                  queries_per_point=40),
        rounds=1, iterations=1)
    figure.notes.append("paper: gap vs Baseline barely changes from the Linear case")
    print()
    print(format_figure(figure))

    # Sigmoid needs more leaves than Linear, but remains exact and competitive.
    hermit_mechanism = setup.mechanisms["HERMIT"]
    assert hermit_mechanism.trs_tree.num_leaves > 1

    hermit = geometric_mean(figure.series["HERMIT"].ys)
    baseline = geometric_mean(figure.series["Baseline"].ys)
    assert_within_factor(hermit, baseline, factor=3.0)
