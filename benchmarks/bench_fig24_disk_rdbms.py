"""Figure 24 — Hermit in a disk-based RDBMS (PostgreSQL stand-in, Sensor).

The paper integrates Hermit into PostgreSQL (physical pointers, page-based
B+-tree behind a buffer pool) and finds: (a) Hermit's range lookups are ~30%
slower than the native secondary index at 1% selectivity with the gap
shrinking at higher selectivities, and (b) the TRS-Tree phase is negligible —
the time goes to the host-index probe and to validating false positives
against the heap.

This reproduction runs the same protocol on the simulated disk substrate:
heap file + paged B+-trees behind a buffer pool, with throughput reported
over CPU time plus charged I/O latency (see ``repro.storage.disk``).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import FigureData
from repro.bench.report import format_figure, format_table
from repro.bench.timing import SimulatedClock, scaled
from repro.core.config import TRSTreeConfig
from repro.core.trs_tree import TRSTree
from repro.index.base import KeyRange
from repro.index.paged_bptree import PagedBPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.heap_file import HeapFile
from repro.storage.schema import numeric_schema
from repro.workloads.queries import range_queries
from repro.workloads.sensor import generate_sensor, sensor_column

SELECTIVITIES = [0.01, 0.025, 0.05, 0.075, 0.10]
NUM_TUPLES = 8_000
QUERIES_PER_POINT = 10
TARGET = sensor_column(0)
HOST = "average"


class DiskSetup:
    """Sensor data stored in a heap file with paged host/secondary indexes."""

    def __init__(self, num_tuples: int) -> None:
        dataset = generate_sensor(num_tuples=num_tuples)
        self.dataset = dataset
        schema = numeric_schema("sensor_disk", ["ts", HOST, TARGET],
                                primary_key="ts")
        self.disk = DiskManager()
        self.pool = BufferPool(self.disk, capacity=4096)
        self.heap = HeapFile(schema, self.pool)
        self.host_index = PagedBPlusTree(self.pool)
        self.secondary_index = PagedBPlusTree(self.pool)
        targets = dataset.columns[TARGET]
        hosts = dataset.columns[HOST]
        locations = []
        for i in range(len(targets)):
            location = self.heap.insert({
                "ts": float(i), HOST: float(hosts[i]), TARGET: float(targets[i]),
            })
            locations.append(location)
            self.host_index.insert(float(hosts[i]), location)
            self.secondary_index.insert(float(targets[i]), location)
        self.trs_tree = TRSTree(TRSTreeConfig())
        self.trs_tree.build(targets, hosts, locations)
        self.domain = (float(targets.min()), float(targets.max()))

    def hermit_lookup(self, low: float, high: float) -> tuple[list[int], dict]:
        """Hermit's 4-step lookup on the disk substrate, with phase timing."""
        phases = {}
        clock = SimulatedClock(self.disk)
        clock.start()
        trs = self.trs_tree.lookup(KeyRange(low, high))
        clock.stop()
        phases["TRS-Tree"] = clock.total_seconds

        clock = SimulatedClock(self.disk)
        clock.start()
        candidates = set(self.host_index.range_search_many(trs.host_ranges))
        candidates.update(int(t) for t in trs.outlier_tids)
        clock.stop()
        phases["Index"] = clock.total_seconds

        clock = SimulatedClock(self.disk)
        clock.start()
        matches = [loc for loc in candidates
                   if low <= self.heap.value(loc, TARGET) <= high]
        clock.stop()
        phases["Validation"] = clock.total_seconds
        return matches, phases

    def baseline_lookup(self, low: float, high: float) -> tuple[list[int], dict]:
        """The native secondary-index lookup on the disk substrate."""
        phases = {}
        clock = SimulatedClock(self.disk)
        clock.start()
        locations = self.secondary_index.range_search(KeyRange(low, high))
        clock.stop()
        phases["Index"] = clock.total_seconds

        clock = SimulatedClock(self.disk)
        clock.start()
        for location in locations:
            self.heap.value(location, TARGET)
        clock.stop()
        phases["Heap"] = clock.total_seconds
        return locations, phases


@pytest.fixture(scope="module")
def disk_setup():
    return DiskSetup(scaled(NUM_TUPLES))


@pytest.mark.figure("fig24")
@pytest.mark.parametrize("mechanism", ["HERMIT", "Baseline"])
def test_fig24_disk_range_benchmark(benchmark, disk_setup, mechanism):
    queries = range_queries(disk_setup.domain, 0.025, count=5, seed=24)
    lookup = (disk_setup.hermit_lookup if mechanism == "HERMIT"
              else disk_setup.baseline_lookup)
    results = benchmark.pedantic(
        lambda: [lookup(q.low, q.high) for q in queries], rounds=2, iterations=1)
    assert len(results) == 5


@pytest.mark.figure("fig24")
def test_fig24_report_disk_throughput_and_breakdown(benchmark, disk_setup):
    def sweep():
        figure = FigureData("Figure 24a", "selectivity", "ops/s (simulated)")
        breakdown_rows = []
        for selectivity in SELECTIVITIES:
            queries = range_queries(disk_setup.domain, selectivity,
                                    count=QUERIES_PER_POINT, seed=24)
            for label, lookup in (("HERMIT", disk_setup.hermit_lookup),
                                  ("Baseline", disk_setup.baseline_lookup)):
                expected = None
                total_seconds = 0.0
                phase_totals: dict[str, float] = {}
                for query in queries:
                    matches, phases = lookup(query.low, query.high)
                    total_seconds += sum(phases.values())
                    for phase, seconds in phases.items():
                        phase_totals[phase] = phase_totals.get(phase, 0) + seconds
                    if expected is None:
                        expected = len(matches)
                ops = len(queries) / total_seconds if total_seconds else 0.0
                figure.add_point(label, selectivity, ops)
                if selectivity == SELECTIVITIES[0]:
                    total = sum(phase_totals.values()) or 1.0
                    breakdown_rows.append(
                        [label] + [f"{phase}: {seconds / total:.2f}"
                                   for phase, seconds in phase_totals.items()])
        return figure, breakdown_rows

    figure, breakdown_rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    figure.notes.append("paper: HERMIT ~30% slower at 1% selectivity; gap shrinks")
    print()
    print(format_figure(figure))
    print(format_table(["mechanism", "phase 1", "phase 2", "phase 3"],
                       [row + [""] * (4 - len(row)) for row in breakdown_rows]))

    hermit = figure.series["HERMIT"].ys
    baseline = figure.series["Baseline"].ys
    # Hermit is slower but within a small factor, and both answer correctly.
    for h, b in zip(hermit, baseline):
        assert h > 0 and b > 0
        assert h * 4.0 >= b
    # The gap narrows as the selectivity grows (paper: 30% at 1%, shrinking).
    assert hermit[-1] / baseline[-1] >= 0.8 * (hermit[0] / baseline[0])
    # Correctness of the disk-substrate Hermit path against the native index.
    queries = range_queries(disk_setup.domain, 0.05, count=5, seed=99)
    for query in queries:
        hermit_result, _ = disk_setup.hermit_lookup(query.low, query.high)
        baseline_result, _ = disk_setup.baseline_lookup(query.low, query.high)
        assert set(hermit_result) == set(baseline_result)
