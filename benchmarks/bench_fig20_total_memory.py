"""Figure 20 — Total memory vs. number of new indexes (Synthetic – Linear).

Paper result: adding extra correlated columns and indexing each of them, the
baseline's total memory grows nearly linearly with the number of new indexes
(8.5 GB at 10 indexes) while Hermit's stays close to the table + primary
index footprint (2.4 GB), and the baseline spends >70% of its memory on
secondary indexes.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import FigureData
from repro.bench.report import format_figure, format_memory_report
from repro.bench.timing import scaled
from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.workloads.synthetic import generate_synthetic, load_synthetic

INDEX_COUNTS = [1, 2, 4, 8, 10]
NUM_TUPLES = 20_000


def total_memory(method: IndexMethod, num_indexes: int):
    dataset = generate_synthetic(scaled(NUM_TUPLES), "linear",
                                 noise_fraction=0.01)
    database = Database()
    table_name = load_synthetic(database, dataset,
                                extra_correlated_columns=num_indexes)
    for i in range(num_indexes):
        database.create_index(f"new_colE{i}", table_name, f"colE{i}",
                              method=method,
                              host_column="colB"
                              if method is IndexMethod.HERMIT else None)
    return database.memory_report(table_name)


@pytest.mark.figure("fig20")
def test_fig20_total_memory_vs_indexes(benchmark):
    def sweep():
        figure = FigureData("Figure 20a", "number of new indexes", "memory (MB)")
        reports = {}
        for count in INDEX_COUNTS:
            for method, label in ((IndexMethod.HERMIT, "HERMIT"),
                                  (IndexMethod.BTREE, "Baseline")):
                report = total_memory(method, count)
                figure.add_point(label, count, report.total_mb)
                reports[(label, count)] = report
        return figure, reports

    figure, reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    figure.notes.append("paper: Baseline grows ~linearly; HERMIT stays near-flat")
    print()
    print(format_figure(figure))
    largest = INDEX_COUNTS[-1]
    print(format_memory_report(reports[("HERMIT", largest)],
                               title="Figure 20b HERMIT (10 indexes)"))
    print(format_memory_report(reports[("Baseline", largest)],
                               title="Figure 20b Baseline (10 indexes)"))

    hermit = figure.series["HERMIT"].ys
    baseline = figure.series["Baseline"].ys
    # Baseline at 10 indexes is well above Hermit's total.
    assert baseline[-1] > 1.5 * hermit[-1]
    # Per added index, the baseline pays a full B+-tree while Hermit pays a
    # few KB of TRS-Tree; compare the *new index* components directly (the
    # totals also grow because each extra column enlarges the base table for
    # both mechanisms alike).
    hermit_new = reports[("HERMIT", largest)].components["new_indexes"]
    baseline_new = reports[("Baseline", largest)].components["new_indexes"]
    assert hermit_new < baseline_new / 10
    # Baseline spends the majority of its memory on secondary indexes.
    baseline_report = reports[("Baseline", largest)]
    index_share = (baseline_report.fraction("new_indexes")
                   + baseline_report.fraction("existing_indexes"))
    assert index_share > 0.5
    hermit_report = reports[("HERMIT", largest)]
    assert hermit_report.fraction("new_indexes") < 0.1
