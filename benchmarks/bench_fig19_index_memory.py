"""Figure 19 — Index memory vs. number of tuples (Synthetic).

Paper result: the TRS-Tree on a Linear correlation needs a constant few bytes
(one regression model) regardless of the tuple count, the Sigmoid TRS-Tree
needs more (more leaves) but stays well under 10 MB, while the baseline
B+-tree grows linearly into the hundreds of MB.
"""

from __future__ import annotations

import pytest

from _helpers import build_synthetic_setup
from repro.bench.harness import FigureData
from repro.bench.report import format_figure
from repro.storage.memory import BYTES_PER_MB

TUPLE_COUNTS = [5_000, 10_000, 20_000, 40_000]


def memory_sweep(correlation: str) -> FigureData:
    figure = FigureData(f"Figure 19 ({correlation})", "number of tuples",
                        "index memory (MB)")
    for count in TUPLE_COUNTS:
        setup = build_synthetic_setup(correlation, num_tuples=count,
                                      noise_fraction=0.01)
        figure.add_point("HERMIT", count,
                         setup.mechanisms["HERMIT"].memory_bytes() / BYTES_PER_MB)
        figure.add_point("Baseline", count,
                         setup.mechanisms["Baseline"].memory_bytes() / BYTES_PER_MB)
    return figure


@pytest.mark.figure("fig19")
@pytest.mark.parametrize("correlation", ["linear", "sigmoid"])
def test_fig19_index_memory(benchmark, correlation):
    figure = benchmark.pedantic(lambda: memory_sweep(correlation),
                                rounds=1, iterations=1)
    figure.notes.append("paper: TRS-Tree orders of magnitude below the B+-tree")
    print()
    print(format_figure(figure))

    hermit = figure.series["HERMIT"].ys
    baseline = figure.series["Baseline"].ys
    # Hermit is far smaller than the baseline at every scale, and the margin
    # widens as the table grows (the TRS-Tree does not store per-tuple entries).
    for h, b in zip(hermit, baseline):
        assert h < b / 3
    # The baseline grows linearly; Hermit grows much more slowly.
    assert baseline[-1] > 4 * baseline[0] * 0.8
    assert hermit[-1] < baseline[-1] / 5
