"""Batched query throughput — ``query_many`` vs. the per-query loop.

Not a paper figure: this benchmark pins the batched read API's contract.
``Database.query_many`` / ``query_conjunctive_many`` must (a) return
exactly the rows of the equivalent per-query ``Database.query`` /
``query_conjunctive`` loop, (b) never be slower than that loop on any
(mechanism × pointer scheme × batch class) combination, (c) reach at
least **3x** the loop on range batches where the access path is
array-native end to end (the sorted-column mechanism under physical
pointers), and (d) reach at least **4x** on the B+-tree-backed Hermit
range path, where the vectorized TRS translation and the host B+-tree's
flattened-leaf-level probe removed the per-entry Python leaf walks that
used to cap it at ~2.5x (see docs/architecture.md "Batched execution").

Run as pytest (small scale, correctness + sanity ratios)::

    PYTHONPATH=src python -m pytest benchmarks/bench_query_throughput.py -s

or standalone, emitting a JSON bundle for the perf trajectory::

    PYTHONPATH=src python benchmarks/bench_query_throughput.py \
        --rows 60000 --batch 192 --output query_throughput.json

The bundle holds three records — ``query_throughput_range`` (the gated
≥ 3x array-native demonstration), ``query_throughput_btree_range`` (the
gated ≥ 4x B+-tree-backed Hermit range path: vectorized TRS translation
feeding the host index's flattened-leaf probe) and ``query_throughput``
(everything else, gated ≥ 1.0) — all checked by
``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import sys

import pytest

from repro.bench.query_throughput import (
    QueryThroughputMeasurement,
    run_query_throughput_suite,
)
from repro.bench.timing import scaled
from repro.storage.identifiers import PointerScheme

SMALL_SCALE_ROWS = 8_000

# The ≥ 3x acceptance gate: range batches on the fully array-native path.
_RANGE_GATE = ("Sorted", "range", "physical")
# The ≥ 4x acceptance gate: range batches on the B+-tree-backed Hermit
# path under physical pointers — vectorized TRS translation feeding the
# host index's flattened-leaf-level probe.
_BTREE_RANGE_GATE = ("HERMIT", "range", "physical")


def is_range_gated(measurement: QueryThroughputMeasurement) -> bool:
    """Whether a measurement belongs to the gated ≥ 3x range record."""
    return (measurement.mechanism, measurement.batch_class,
            measurement.pointer_scheme) == _RANGE_GATE


def is_btree_range_gated(measurement: QueryThroughputMeasurement) -> bool:
    """Whether a measurement belongs to the gated ≥ 4x btree range record."""
    return (measurement.mechanism, measurement.batch_class,
            measurement.pointer_scheme) == _BTREE_RANGE_GATE


def format_measurements(measurements: list[QueryThroughputMeasurement]) -> str:
    """Plain-text table of one suite run."""
    header = (f"{'scheme':<9} {'mechanism':<9} {'class':<12} "
              f"{'loop':>10} {'batched':>10} {'speedup':>8}  agree")
    lines = [header, "-" * len(header)]
    for m in measurements:
        lines.append(
            f"{m.pointer_scheme:<9} {m.mechanism:<9} {m.batch_class:<12} "
            f"{m.loop_kops:>9.2f}K {m.batched_kops:>9.2f}K "
            f"{m.batched_vs_loop:>7.2f}x  {m.results_agree}"
        )
    return "\n".join(lines)


@pytest.mark.figure("query_throughput")
def test_batched_queries_match_loop(benchmark):
    """Small-scale run: batch and loop agree; the batch never collapses."""
    def run():
        return run_query_throughput_suite(
            num_tuples=scaled(SMALL_SCALE_ROWS), selectivity=5e-3,
            batch_size=48, rounds=3,
            pointer_schemes=(PointerScheme.PHYSICAL,),
        )

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_measurements(measurements))
    assert all(m.results_agree for m in measurements)
    # At this scale per-query work is small; pin a loose floor that still
    # catches the batch path degenerating into a hidden per-query loop.
    assert all(m.batched_vs_loop > 0.5 for m in measurements)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--rows", type=int, default=60_000,
                        help="rows in the Synthetic table (default 60k)")
    parser.add_argument("--selectivity", type=float, default=1e-3,
                        help="range-query selectivity (default 1e-3)")
    parser.add_argument("--batch", type=int, default=192,
                        help="queries per batch (default 192)")
    parser.add_argument("--rounds", type=int, default=5,
                        help="interleaved best-of rounds (default 5)")
    parser.add_argument("--output", default="bench_query_throughput.json",
                        help="path of the emitted JSON record bundle")
    args = parser.parse_args(argv)

    measurements = run_query_throughput_suite(
        num_tuples=args.rows, selectivity=args.selectivity,
        batch_size=args.batch, rounds=args.rounds,
    )
    print(format_measurements(measurements))

    range_gated = [m for m in measurements if is_range_gated(m)]
    btree_range_gated = [m for m in measurements if is_btree_range_gated(m)]
    rest = [m for m in measurements
            if not (is_range_gated(m) or is_btree_range_gated(m))]
    bundle = {
        "records": [
            {
                "benchmark": "query_throughput_range",
                "rows": args.rows,
                "selectivity": args.selectivity,
                "batch": args.batch,
                "measurements": [m.as_dict() for m in range_gated],
            },
            {
                "benchmark": "query_throughput_btree_range",
                "rows": args.rows,
                "selectivity": args.selectivity,
                "batch": args.batch,
                "measurements": [m.as_dict() for m in btree_range_gated],
            },
            {
                "benchmark": "query_throughput",
                "rows": args.rows,
                "selectivity": args.selectivity,
                "batch": args.batch,
                "measurements": [m.as_dict() for m in rest],
            },
        ],
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(bundle, handle, indent=2)
    print(f"\nwrote {args.output}")

    if not all(m.results_agree for m in measurements):
        print("ERROR: batched and per-query results disagree",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
