"""Shared builders for the per-figure benchmark scripts.

Every benchmark reproduces one table or figure of the paper.  The builders
here assemble the workload databases with *both* mechanisms (Hermit and the
conventional B+-tree baseline, plus optionally Correlation Maps) indexed on
the same target column, so each figure script only has to sweep its parameter
and print the series.

Workload sizes are geometrically scaled down from the paper (which uses up to
20M tuples on a C++ engine); set the ``REPRO_SCALE`` environment variable to
scale them back up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.harness import FigureData, run_query_batch
from repro.bench.timing import scaled
from repro.core.config import TRSTreeConfig
from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.storage.identifiers import PointerScheme
from repro.workloads.queries import range_queries
from repro.workloads.sensor import generate_sensor, load_sensor, sensor_column
from repro.workloads.stock import generate_stock, high_column, load_stock
from repro.workloads.synthetic import generate_synthetic, load_synthetic

# Paper-default selectivities for the Stock/Sensor sweeps (1% .. 10%).
STOCK_SELECTIVITIES = [0.01, 0.025, 0.05, 0.075, 0.10]
# The paper sweeps 0.01% .. 0.1% on 20M-tuple Synthetic tables, i.e. 2k-20k
# result tuples per query.  The reproduction runs tables that are ~500x
# smaller, so the selectivities are scaled up to keep the per-query result
# cardinality (and therefore the relative cost structure of the lookup path)
# comparable; the x-axis label of the regenerated figures reflects this.
SYNTHETIC_SELECTIVITIES = [0.0025, 0.005, 0.01, 0.025, 0.05]
DEFAULT_QUERIES_PER_POINT = 30


@dataclass
class WorkloadSetup:
    """A built workload plus the mechanisms under comparison."""

    database: Database
    table_name: str
    target_column: str
    domain: tuple[float, float]
    mechanisms: dict[str, object] = field(default_factory=dict)
    dataset: object | None = None

    @property
    def table(self):
        """The base table object."""
        return self.database.table(self.table_name)


def build_synthetic_setup(correlation: str = "linear", num_tuples: int = 20_000,
                          noise_fraction: float = 0.01,
                          pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
                          trs_config: TRSTreeConfig | None = None,
                          seed: int = 42) -> WorkloadSetup:
    """Synthetic table with Hermit and Baseline indexes on ``colC``."""
    dataset = generate_synthetic(scaled(num_tuples), correlation,
                                 noise_fraction=noise_fraction, seed=seed)
    database = Database(pointer_scheme=pointer_scheme,
                        trs_config=trs_config or TRSTreeConfig())
    table_name = load_synthetic(database, dataset)
    hermit_entry = database.create_index("hermit_colC", table_name, "colC",
                                         method=IndexMethod.HERMIT,
                                         host_column="colB",
                                         trs_config=trs_config)
    baseline_entry = database.create_index("baseline_colC", table_name, "colC",
                                           method=IndexMethod.BTREE)
    values = dataset.columns["colC"]
    return WorkloadSetup(
        database=database, table_name=table_name, target_column="colC",
        domain=(float(values.min()), float(values.max())),
        mechanisms={"HERMIT": hermit_entry.mechanism,
                    "Baseline": baseline_entry.mechanism},
        dataset=dataset,
    )


def build_stock_setup(num_stocks: int = 10, num_days: int = 4_000,
                      pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
                      stock: int = 0) -> WorkloadSetup:
    """Stock table with Hermit and Baseline indexes on one high-price column."""
    dataset = generate_stock(num_stocks=num_stocks, num_days=scaled(num_days))
    database = Database(pointer_scheme=pointer_scheme)
    table_name = load_stock(database, dataset)
    column = high_column(stock)
    hermit_entry = database.create_index(f"hermit_{column}", table_name, column,
                                         method=IndexMethod.HERMIT,
                                         host_column=f"low_{stock}")
    baseline_entry = database.create_index(f"baseline_{column}", table_name,
                                           column, method=IndexMethod.BTREE)
    values = dataset.columns[column]
    return WorkloadSetup(
        database=database, table_name=table_name, target_column=column,
        domain=(float(values.min()), float(values.max())),
        mechanisms={"HERMIT": hermit_entry.mechanism,
                    "Baseline": baseline_entry.mechanism},
        dataset=dataset,
    )


def build_sensor_setup(num_tuples: int = 20_000, sensor: int = 0,
                       pointer_scheme: PointerScheme = PointerScheme.PHYSICAL
                       ) -> WorkloadSetup:
    """Sensor table with Hermit and Baseline indexes on one sensor column."""
    dataset = generate_sensor(num_tuples=scaled(num_tuples))
    database = Database(pointer_scheme=pointer_scheme)
    table_name = load_sensor(database, dataset)
    column = sensor_column(sensor)
    hermit_entry = database.create_index(f"hermit_{column}", table_name, column,
                                         method=IndexMethod.HERMIT,
                                         host_column="average")
    baseline_entry = database.create_index(f"baseline_{column}", table_name,
                                           column, method=IndexMethod.BTREE)
    values = dataset.columns[column]
    return WorkloadSetup(
        database=database, table_name=table_name, target_column=column,
        domain=(float(values.min()), float(values.max())),
        mechanisms={"HERMIT": hermit_entry.mechanism,
                    "Baseline": baseline_entry.mechanism},
        dataset=dataset,
    )


def selectivity_sweep(setup: WorkloadSetup, selectivities: list[float],
                      figure_name: str,
                      queries_per_point: int = DEFAULT_QUERIES_PER_POINT,
                      seed: int = 0) -> FigureData:
    """Throughput (K ops) of every mechanism across range-query selectivities."""
    figure = FigureData(figure_name, "selectivity", "Kops")
    for selectivity in selectivities:
        queries = range_queries(setup.domain, selectivity,
                                count=queries_per_point, seed=seed)
        for label, mechanism in setup.mechanisms.items():
            batch = run_query_batch(mechanism, queries)
            figure.add_point(label, selectivity, batch.throughput.kops)
    return figure


def breakdown_sweep(setup: WorkloadSetup, mechanism_label: str,
                    selectivities: list[float], figure_name: str,
                    queries_per_point: int = DEFAULT_QUERIES_PER_POINT,
                    seed: int = 0) -> FigureData:
    """Per-phase time fractions of one mechanism across selectivities."""
    figure = FigureData(figure_name, "selectivity", "fraction of time")
    mechanism = setup.mechanisms[mechanism_label]
    for selectivity in selectivities:
        queries = range_queries(setup.domain, selectivity,
                                count=queries_per_point, seed=seed)
        batch = run_query_batch(mechanism, queries)
        for phase, fraction in batch.breakdown.fractions().items():
            figure.add_point(phase, selectivity, fraction)
    return figure


def assert_within_factor(slower: float, faster: float, factor: float) -> None:
    """Assert ``slower`` is no worse than ``faster`` divided by ``factor``.

    Used for the qualitative "shape" checks: e.g. Hermit's range-query
    throughput stays within a small factor of the baseline.
    """
    assert slower > 0, "throughput must be positive"
    assert slower * factor >= faster, (
        f"expected within {factor}x, got {slower:.3f} vs {faster:.3f}"
    )


def geometric_mean(values: list[float]) -> float:
    """Geometric mean, ignoring non-positive entries."""
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return float(np.exp(np.mean(np.log(positives))))
