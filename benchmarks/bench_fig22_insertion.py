"""Figure 22 — Insertion throughput vs. number of new indexes (Synthetic – Linear).

Paper result: with 10 new indexes maintained as Hermit structures, insertion
throughput is ~2.6x higher than with conventional secondary indexes, because
a TRS-Tree insert only touches an outlier buffer when necessary, while every
B+-tree insert pays a full index-maintenance path.  The baseline spends >80%
of its insertion time maintaining the secondary indexes.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.harness import FigureData, insertion_throughput
from repro.bench.report import format_figure, format_table
from repro.bench.timing import scaled
from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.engine.query import RangePredicate
from repro.workloads.synthetic import generate_synthetic, load_synthetic

INDEX_COUNTS = [1, 2, 4, 8, 10]
BASE_TUPLES = 10_000
INSERT_BATCH = 2_000


def build_database(method: IndexMethod, num_indexes: int):
    dataset = generate_synthetic(scaled(BASE_TUPLES), "linear",
                                 noise_fraction=0.01)
    database = Database()
    table_name = load_synthetic(database, dataset,
                                extra_correlated_columns=num_indexes)
    for i in range(num_indexes):
        database.create_index(f"new_colE{i}", table_name, f"colE{i}",
                              method=method,
                              host_column="colB"
                              if method is IndexMethod.HERMIT else None)
    return database, table_name


def insertion_rows(count: int, start: float = 5e7) -> list[dict]:
    rows = []
    for i in range(count):
        col_c = float((i * 37) % 1_000_000)
        col_b = 2.0 * col_c + 10.0
        row = {"colA": start + i, "colB": col_b, "colC": col_c, "colD": 0.0}
        rows.append(row)
    return rows


def with_extra_columns(rows: list[dict], num_indexes: int) -> list[dict]:
    return [dict(row, **{f"colE{i}": row["colB"] for i in range(num_indexes)})
            for row in rows]


def rows_to_columns(rows: list[dict]) -> dict[str, list[float]]:
    """Transpose row dicts into the column-oriented ``insert_many`` shape."""
    return {name: [row[name] for row in rows] for name in rows[0]}


@pytest.mark.figure("fig22")
@pytest.mark.parametrize("method,label", [(IndexMethod.HERMIT, "HERMIT"),
                                          (IndexMethod.BTREE, "Baseline")])
def test_fig22_insert_benchmark(benchmark, method, label):
    """Headline measurement: inserting a batch with 4 maintained new indexes."""
    database, table_name = build_database(method, num_indexes=4)
    rows = with_extra_columns(insertion_rows(200), 4)
    counter = [0]

    def insert_batch():
        offset = counter[0]
        counter[0] += len(rows)
        for i, row in enumerate(rows):
            database.insert(table_name, dict(row, colA=9e8 + offset + i))

    benchmark.pedantic(insert_batch, rounds=3, iterations=1)


@pytest.mark.figure("fig22")
@pytest.mark.parametrize("method,label", [(IndexMethod.HERMIT, "HERMIT"),
                                          (IndexMethod.BTREE, "Baseline")])
def test_fig22_batched_insert_matches_scalar(benchmark, method, label):
    """Batched ``insert_many`` maintains the same indexes as the scalar loop.

    The Figure 22 scenario (4 maintained new indexes) raced through both
    write paths: the batch must leave the database in an identical state and
    must not be slower than inserting the rows one at a time.
    """
    rows = with_extra_columns(insertion_rows(scaled(INSERT_BATCH)), 4)
    columns = rows_to_columns(rows)

    def race():
        scalar_db, table_name = build_database(method, num_indexes=4)
        batched_db, _ = build_database(method, num_indexes=4)
        started = time.perf_counter()
        for row in rows:
            scalar_db.insert(table_name, row)
        scalar_seconds = time.perf_counter() - started
        started = time.perf_counter()
        batched_db.insert_many(table_name, columns)
        batched_seconds = time.perf_counter() - started
        return scalar_db, batched_db, table_name, scalar_seconds, batched_seconds

    scalar_db, batched_db, table_name, scalar_seconds, batched_seconds = (
        benchmark.pedantic(race, rounds=1, iterations=1)
    )
    speedup = scalar_seconds / max(batched_seconds, 1e-12)
    print(f"\n{label}: scalar {scalar_seconds:.3f}s, batched "
          f"{batched_seconds:.3f}s, speedup {speedup:.1f}x")

    scalar_entry = scalar_db.catalog.table_entry(table_name)
    batched_entry = batched_db.catalog.table_entry(table_name)
    assert scalar_entry.table.num_rows == batched_entry.table.num_rows
    assert (scalar_entry.primary_index.num_entries
            == batched_entry.primary_index.num_entries)
    for low, high in [(0.0, 50_000.0), (400_000.0, 500_000.0)]:
        predicate = RangePredicate("colE0", low, high)
        assert (set(map(int, scalar_db.query(table_name, predicate).locations))
                == set(map(int,
                           batched_db.query(table_name, predicate).locations)))
    # Loose bound at bench scale — the full acceptance target lives in
    # bench_writepath_vectorized.py.
    assert speedup > 0.8


@pytest.mark.figure("fig22")
def test_fig22_report_insertion_sweep(benchmark):
    def sweep():
        figure = FigureData("Figure 22a", "number of new indexes", "Kops")
        breakdowns = {}
        for count in INDEX_COUNTS:
            for method, label in ((IndexMethod.HERMIT, "HERMIT"),
                                  (IndexMethod.BTREE, "Baseline")):
                database, table_name = build_database(method, count)
                rows = with_extra_columns(insertion_rows(scaled(INSERT_BATCH)),
                                          count)
                # Time the index-maintenance share explicitly for Figure 22b.
                started = time.perf_counter()
                result = insertion_throughput(database, table_name, rows)
                total = time.perf_counter() - started
                figure.add_point(label, count, result.kops)
                breakdowns[(label, count)] = total
        return figure, breakdowns

    figure, _ = benchmark.pedantic(sweep, rounds=1, iterations=1)
    figure.notes.append("paper: HERMIT ~2.6x Baseline at 10 indexes")
    print()
    print(format_figure(figure))

    hermit = figure.series["HERMIT"].ys
    baseline = figure.series["Baseline"].ys
    # With many indexes Hermit sustains higher insert throughput (paper: 2.6x;
    # much smaller here because the shared per-insert engine overhead — base
    # table, statistics, primary index — is a larger constant in pure Python
    # than the per-secondary-index maintenance delta; see EXPERIMENTS.md).
    assert hermit[-1] > baseline[-1]
    # The baseline's throughput degrades more steeply as indexes are added.
    baseline_drop = baseline[0] / baseline[-1]
    hermit_drop = hermit[0] / hermit[-1]
    assert baseline_drop > hermit_drop

    rows = [["HERMIT", hermit[0], hermit[-1]],
            ["Baseline", baseline[0], baseline[-1]]]
    print(format_table(["mechanism", "Kops @1 index", "Kops @10 indexes"], rows))
