"""Figures 10 & 11 — Range-lookup time breakdown (Synthetic – Sigmoid).

Paper result: with logical pointers both Hermit and the baseline spend over
90% of their time in the primary-index lookup; with physical pointers the
bottleneck shifts to the base-table access.  Hermit's own TRS-Tree phase is a
negligible fraction in every configuration.

Reproduction note: since the lookup path was vectorized, base-table
validation is a single numpy gather + mask, so under physical pointers its
share is far smaller than in the paper's C++ engine and the dominant phase
is the (pointer-chasing, pure-Python) index probe instead.  The logical
scheme still reproduces the paper's shape: per-key primary-index resolution
dominates.  The invariant checks below assert the vectorized profile.
"""

from __future__ import annotations

import pytest

from _helpers import SYNTHETIC_SELECTIVITIES, breakdown_sweep, build_synthetic_setup
from repro.bench.report import format_figure
from repro.storage.identifiers import PointerScheme


@pytest.fixture(scope="module", params=[PointerScheme.LOGICAL,
                                        PointerScheme.PHYSICAL],
                ids=["logical", "physical"])
def sigmoid_setup(request):
    return build_synthetic_setup("sigmoid", num_tuples=30_000,
                                 pointer_scheme=request.param), request.param


@pytest.mark.figure("fig10")
def test_fig10_hermit_breakdown(benchmark, sigmoid_setup):
    setup, scheme = sigmoid_setup
    figure = benchmark.pedantic(
        lambda: breakdown_sweep(setup, "HERMIT", SYNTHETIC_SELECTIVITIES,
                                f"Figure 10 HERMIT ({scheme.value})"),
        rounds=1, iterations=1)
    print()
    print(format_figure(figure))

    trs_fractions = figure.series["TRS-Tree"].ys
    # TRS-Tree navigation is cheap relative to the full lookup path, and its
    # share shrinks as the selectivity (result size) grows.
    assert trs_fractions[-1] < 0.5
    assert trs_fractions[-1] <= trs_fractions[0] + 0.05
    if scheme is PointerScheme.LOGICAL:
        # Primary-index resolution dominates with logical pointers.
        assert figure.series["Primary Index"].ys[-1] > 0.3
    else:
        assert figure.series["Primary Index"].ys[-1] == 0.0
        # Vectorized validation leaves the host-index probe as the dominant
        # phase; base-table work is one gather + mask.
        assert figure.series["Host Index"].ys[-1] > 0.3
        assert figure.series["Base Table"].ys[-1] < 0.5


@pytest.mark.figure("fig11")
def test_fig11_baseline_breakdown(benchmark, sigmoid_setup):
    setup, scheme = sigmoid_setup
    figure = benchmark.pedantic(
        lambda: breakdown_sweep(setup, "Baseline", SYNTHETIC_SELECTIVITIES,
                                f"Figure 11 Baseline ({scheme.value})"),
        rounds=1, iterations=1)
    # For the baseline the "Host Index" share is its secondary B+-tree.
    figure.notes.append("'Host Index' = the baseline's secondary index probe")
    print()
    print(format_figure(figure))

    assert figure.series["TRS-Tree"].ys == [0.0] * len(SYNTHETIC_SELECTIVITIES)
    if scheme is PointerScheme.LOGICAL:
        assert figure.series["Primary Index"].ys[-1] > 0.3
    else:
        # The baseline's secondary B+-tree probe dominates once validation
        # is a single vectorized base-table touch.
        assert figure.series["Host Index"].ys[-1] > 0.3
        assert figure.series["Base Table"].ys[-1] < 0.5
