"""Figures 16, 17 & 18 — Sensitivity to error_bound and injected noise.

One sweep over ``error_bound`` ∈ {1, 10, 100, 1000, 10000} × noise ∈
{0%, 2.5%, 5%, 7.5%, 10%} produces the three figures:

* Figure 16 — range-lookup throughput: drops drastically as error_bound grows
  (more false positives), but is stable across noise percentages.
* Figure 17 — false-positive ratio: approaches ~0.8 at error_bound = 10000.
* Figure 18 — memory: grows roughly linearly with the noise percentage
  (outlier buffers) and shrinks as error_bound grows (fewer nodes/outliers).
"""

from __future__ import annotations

import pytest

from _helpers import build_synthetic_setup
from repro.bench.harness import FigureData, run_query_batch
from repro.bench.report import format_figure
from repro.core.config import TRSTreeConfig
from repro.storage.identifiers import PointerScheme
from repro.storage.memory import BYTES_PER_MB
from repro.workloads.queries import range_queries

ERROR_BOUNDS = [1.0, 10.0, 100.0, 1_000.0, 10_000.0]
NOISE_FRACTIONS = [0.0, 0.025, 0.05, 0.075, 0.10]
# The paper uses 0.01% selectivity on 20M tuples (~2000 result tuples per
# query); with the scaled-down table we use 1% so each query still returns a
# few hundred tuples and the false-positive ratio is driven by error_bound
# rather than by the tiny result cardinality.
SELECTIVITY = 0.01
NUM_TUPLES = 20_000
QUERIES = 25


def sweep(correlation: str):
    throughput = FigureData(f"Figure 16 ({correlation})", "error_bound", "Kops")
    false_positives = FigureData(f"Figure 17 ({correlation})", "error_bound",
                                 "false positive ratio")
    memory = FigureData(f"Figure 18 ({correlation})", "error_bound",
                        "TRS-Tree memory (MB)")
    for noise in NOISE_FRACTIONS:
        label = f"{noise * 100:.1f}% noise"
        for error_bound in ERROR_BOUNDS:
            config = TRSTreeConfig(error_bound=error_bound)
            setup = build_synthetic_setup(
                correlation, num_tuples=NUM_TUPLES, noise_fraction=noise,
                pointer_scheme=PointerScheme.LOGICAL, trs_config=config)
            hermit = setup.mechanisms["HERMIT"]
            queries = range_queries(setup.domain, SELECTIVITY, QUERIES, seed=16)
            batch = run_query_batch(hermit, queries)
            throughput.add_point(label, error_bound, batch.throughput.kops)
            false_positives.add_point(label, error_bound,
                                      batch.false_positive_ratio)
            memory.add_point(label, error_bound,
                             hermit.memory_bytes() / BYTES_PER_MB)
    return throughput, false_positives, memory


@pytest.mark.figure("fig16")
@pytest.mark.parametrize("correlation", ["linear", "sigmoid"])
def test_fig16_17_18_error_bound_and_noise(benchmark, correlation):
    throughput, false_positives, memory = benchmark.pedantic(
        lambda: sweep(correlation), rounds=1, iterations=1)
    throughput.notes.append("paper: throughput drops with error_bound, stable vs noise")
    false_positives.notes.append("paper: false-positive ratio ~0.8 at error_bound=1e4")
    memory.notes.append("paper: memory grows with noise, shrinks with error_bound")
    print()
    for figure in (throughput, false_positives, memory):
        print(format_figure(figure))
        print()

    clean = "0.0% noise"
    noisy = "10.0% noise"
    # Figure 16 shape: throughput at the largest error_bound is clearly lower
    # than at the smallest (false positives dominate).
    assert throughput.series[clean].ys[-1] < throughput.series[clean].ys[0]
    # Figure 17 shape: false-positive ratio rises monotonically-ish with
    # error_bound and becomes large at 10000.
    assert false_positives.series[clean].ys[-1] > 0.4
    assert false_positives.series[clean].ys[0] < 0.3
    # Figure 16/17: throughput is not destroyed by noise (outlier buffers).
    # The Sigmoid case is checked at a small error_bound: in its flat tails a
    # noisy fit with a large error_bound inflates the returned host ranges far
    # more than on the Linear correlation (see EXPERIMENTS.md).
    mid = 1 if correlation == "sigmoid" else len(ERROR_BOUNDS) // 2
    floor = 0.3 if correlation == "linear" else 0.15
    assert throughput.series[noisy].ys[mid] > floor * throughput.series[clean].ys[mid]
    # Figure 18 shape: more noise => more memory (outlier buffers); larger
    # error_bound => not more memory.
    assert memory.series[noisy].ys[0] > memory.series[clean].ys[0]
    assert memory.series[clean].ys[-1] <= memory.series[clean].ys[0] * 1.5
