"""Figure 21 — TRS-Tree construction time vs. number of threads.

Paper result: (1) constructing the TRS-Tree for the Sigmoid correlation takes
longer than for Linear (more rounds of regression), and (2) construction time
drops near-linearly with more threads because the top-down build parallelises
without synchronisation.

Reproduction note: this build is pure Python + numpy; the regression scans
release the GIL only inside numpy kernels, so the thread-scaling here is much
weaker than the paper's C++ implementation.  The Linear-vs-Sigmoid ordering is
the shape check; the thread sweep is reported for completeness.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import FigureData, construction_time
from repro.bench.report import format_figure
from repro.bench.timing import scaled
from repro.core.config import TRSTreeConfig
from repro.core.trs_tree import TRSTree
from repro.workloads.synthetic import generate_synthetic

THREAD_COUNTS = [1, 2, 4, 6, 8]
NUM_TUPLES = 60_000


def build_once(correlation: str, parallelism: int) -> float:
    dataset = generate_synthetic(scaled(NUM_TUPLES), correlation,
                                 noise_fraction=0.01)
    targets = dataset.columns["colC"]
    hosts = dataset.columns["colB"]
    tids = dataset.columns["colA"].astype(int)

    def build():
        tree = TRSTree(TRSTreeConfig())
        tree.build(targets, hosts, tids, parallelism=parallelism)
        return tree

    return construction_time(build, repetitions=1)


@pytest.mark.figure("fig21")
@pytest.mark.parametrize("correlation", ["linear", "sigmoid"])
def test_fig21_construction_benchmark(benchmark, correlation):
    """Headline measurement: single-threaded construction time."""
    dataset = generate_synthetic(scaled(NUM_TUPLES), correlation,
                                 noise_fraction=0.01)
    targets = dataset.columns["colC"]
    hosts = dataset.columns["colB"]
    tids = dataset.columns["colA"].astype(int)

    def build():
        tree = TRSTree(TRSTreeConfig())
        tree.build(targets, hosts, tids, parallelism=1)
        return tree

    tree = benchmark(build)
    assert tree.num_leaves >= 1


@pytest.mark.figure("fig21")
def test_fig21_report_thread_sweep(benchmark):
    def sweep():
        figure = FigureData("Figure 21", "threads", "construction time (s)")
        for correlation in ("linear", "sigmoid"):
            for threads in THREAD_COUNTS:
                figure.add_point(correlation, threads,
                                 build_once(correlation, threads))
        return figure

    figure = benchmark.pedantic(sweep, rounds=1, iterations=1)
    figure.notes.append(
        "paper: Sigmoid construction slower than Linear; time drops with threads "
        "(thread scaling limited here by the GIL)")
    print()
    print(format_figure(figure))

    linear = figure.series["linear"].ys
    sigmoid = figure.series["sigmoid"].ys
    # Shape check (paper finding 1): Sigmoid construction costs more.
    assert sigmoid[0] > linear[0]
    # Sanity: all measurements are positive and finite.
    assert all(value > 0 for value in linear + sigmoid)
