"""Setuptools shim.

The offline environment has neither network access nor the ``wheel`` package,
so PEP 517 editable installs cannot build a wheel.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .`` on machines with ``wheel`` available) work either way.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
