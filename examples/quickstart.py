"""Quickstart: build a Hermit index and compare it against a complete B+-tree.

Run with::

    python examples/quickstart.py

The script loads the paper's Synthetic workload (colB = 2*colC + 10 with 1%
injected noise), lets the correlation advisor decide that ``colC`` can be
served by a Hermit index hosted on the existing ``colB`` index, and then
compares result correctness, lookup latency and memory against a conventional
B+-tree secondary index.
"""

from __future__ import annotations

import time

from repro import Database, IndexMethod, PointerScheme, RangePredicate
from repro.bench.report import format_memory_report, format_table
from repro.storage.memory import BYTES_PER_MB
from repro.workloads.synthetic import generate_synthetic, load_synthetic


def main() -> None:
    print("Generating the Synthetic-Linear workload (50k tuples, 1% noise)...")
    dataset = generate_synthetic(50_000, "linear", noise_fraction=0.01)
    database = Database(pointer_scheme=PointerScheme.PHYSICAL)
    table_name = load_synthetic(database, dataset)

    print("Creating an index on colC with method=AUTO ...")
    entry = database.create_index("idx_colC", table_name, "colC",
                                  method=IndexMethod.AUTO)
    print(f"  advisor chose: {entry.method.value}"
          f" (host column: {entry.host_column})")

    baseline = database.create_index("idx_colC_btree", table_name, "colC",
                                     method=IndexMethod.BTREE)

    predicate = RangePredicate("colC", 250_000.0, 300_000.0)
    started = time.perf_counter()
    hermit_result = database.query_with(table_name, "idx_colC", predicate)
    hermit_seconds = time.perf_counter() - started

    started = time.perf_counter()
    baseline_result = database.query_with(table_name, "idx_colC_btree", predicate)
    baseline_seconds = time.perf_counter() - started

    assert hermit_result.locations == baseline_result.locations
    print(f"\nBoth mechanisms returned the same {len(hermit_result)} tuples.")
    print(format_table(
        ["mechanism", "latency (ms)", "false-positive ratio", "index memory (MB)"],
        [
            ["HERMIT", hermit_seconds * 1e3,
             hermit_result.breakdown.false_positive_ratio,
             entry.mechanism.memory_bytes() / BYTES_PER_MB],
            ["B+-tree", baseline_seconds * 1e3,
             baseline_result.breakdown.false_positive_ratio,
             baseline.mechanism.memory_bytes() / BYTES_PER_MB],
        ],
    ))

    print("\nDatabase-wide memory breakdown:")
    print(format_memory_report(database.memory_report(table_name)))

    trs_tree = entry.mechanism.trs_tree
    print(f"\nTRS-Tree internals: {trs_tree.num_leaves} leaves, "
          f"height {trs_tree.height}, {trs_tree.num_outliers} outliers "
          f"(the injected noise).")


if __name__ == "__main__":
    main()
