"""Dynamic workload: online inserts, deletes and background reorganization.

The key operational difference between Hermit and learned-index approaches is
that the TRS-Tree absorbs inserts/deletes/updates immediately (outlier
buffers) and re-optimises itself with on-demand structure reorganization on a
background thread, instead of requiring a full retraining pass.  This example
drives a mixed workload against a Hermit-indexed table, shows the outlier
buffers filling up, lets the background reorganizer run, and verifies that
every intermediate state still answers queries exactly.

Run with::

    python examples/dynamic_maintenance.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import Database, IndexMethod, RangePredicate
from repro.bench.report import format_table
from repro.core.reorganize import BackgroundReorganizer
from repro.engine.executor import full_scan
from repro.storage.memory import BYTES_PER_MB
from repro.workloads.synthetic import generate_synthetic, load_synthetic

INITIAL_TUPLES = 10_000
CHURN_OPERATIONS = 5_000


def verify(database, table_name) -> None:
    predicate = RangePredicate("colC", 300_000.0, 350_000.0)
    indexed = database.query(table_name, predicate)
    scanned = full_scan(database.table(table_name), predicate)
    assert indexed.locations == scanned.locations


def main() -> None:
    rng = np.random.default_rng(0)
    dataset = generate_synthetic(INITIAL_TUPLES, "sigmoid", noise_fraction=0.01)
    database = Database()
    table_name = load_synthetic(database, dataset)
    entry = database.create_index("idx_colC", table_name, "colC",
                                  method=IndexMethod.HERMIT, host_column="colB")
    hermit = entry.mechanism

    snapshots = []

    def snapshot(label: str) -> None:
        tree = hermit.trs_tree
        snapshots.append([label, tree.num_leaves, tree.num_outliers,
                          hermit.memory_bytes() / BYTES_PER_MB,
                          hermit.pending_reorganizations])

    snapshot("after build")
    verify(database, table_name)

    print(f"Applying {CHURN_OPERATIONS} mixed insert/delete/update operations...")
    live = [int(s) for s in database.table(table_name).live_slots()]
    for step in range(CHURN_OPERATIONS):
        choice = step % 4
        if choice in (0, 1):  # 50% inserts, half of them "drifted" (outliers)
            col_c = float(rng.uniform(0, 1e6))
            drifted = choice == 1
            col_b = float(rng.uniform(0, 1e6)) if drifted else None
            if col_b is None:
                col_b = float(dataset.columns["colB"].mean())
            live.append(database.insert(table_name, {
                "colA": 1e8 + step, "colB": col_b, "colC": col_c, "colD": 0.0,
            }))
        elif choice == 2 and live:
            database.delete(table_name, live.pop(0))
        elif live:
            database.update(table_name, live[0],
                            {"colC": float(rng.uniform(0, 1e6))})
    snapshot("after churn")
    verify(database, table_name)

    print("Running the background reorganizer until the candidate queue drains...")
    with BackgroundReorganizer(hermit, interval_seconds=0.05) as reorganizer:
        deadline = time.time() + 30.0
        while hermit.pending_reorganizations and time.time() < deadline:
            time.sleep(0.05)
        passes = reorganizer.stats.passes
    snapshot("after reorganization")
    verify(database, table_name)

    print(f"\nReorganizer ran {passes} pass(es).")
    print(format_table(
        ["stage", "leaves", "outliers", "memory (MB)", "pending reorgs"],
        snapshots,
    ))
    print("\nEvery stage answered the verification query exactly.")


if __name__ == "__main__":
    main()
