"""Stock scenario: index every stock's highest-price column without the memory bill.

This is the paper's running example (Section 3): the table already has an
index per stock on the daily *lowest* price, and analysts keep asking "during
which time periods did stock X's highest price fall between Y and Z?".
Building one more complete B+-tree per stock doubles the index memory;
Hermit instead models the near-linear low↔high correlation per stock and
routes the queries through the existing indexes, parking shock days (e.g. a
PG&E-style 50% single-day move) in outlier buffers.

Run with::

    python examples/stock_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import Database, IndexMethod, RangePredicate
from repro.bench.report import format_table
from repro.correlation.discovery import pearson_coefficient
from repro.storage.memory import BYTES_PER_MB
from repro.workloads.stock import (
    dow_sp_series,
    generate_stock,
    high_column,
    load_stock,
    low_column,
)

NUM_STOCKS = 20
NUM_DAYS = 5_000


def main() -> None:
    print(f"Generating {NUM_STOCKS} stocks x {NUM_DAYS} trading days...")
    dataset = generate_stock(num_stocks=NUM_STOCKS, num_days=NUM_DAYS)
    database = Database()
    table_name = load_stock(database, dataset)

    print("Indexing every highest-price column with method=AUTO ...")
    hermit_count = 0
    for stock in range(NUM_STOCKS):
        entry = database.create_index(f"idx_{high_column(stock)}", table_name,
                                      high_column(stock),
                                      method=IndexMethod.AUTO)
        if entry.method is IndexMethod.HERMIT:
            hermit_count += 1
    print(f"  {hermit_count}/{NUM_STOCKS} columns were served by Hermit indexes")

    report = database.memory_report(table_name)
    print(format_table(
        ["component", "MB"],
        [[label, size / BYTES_PER_MB]
         for label, size in sorted(report.components.items())],
    ))

    # Ask the paper's query for a few stocks and verify against a full scan.
    print("\nSample analyst queries (verified against a full scan):")
    rows = []
    for stock in (0, NUM_STOCKS // 2, NUM_STOCKS - 1):
        highs = dataset.columns[high_column(stock)]
        low, high = (float(np.quantile(highs, 0.45)),
                     float(np.quantile(highs, 0.55)))
        result = database.query(table_name,
                                RangePredicate(high_column(stock), low, high))
        expected = int(((highs >= low) & (highs <= high)).sum())
        rows.append([high_column(stock), f"[{low:.2f}, {high:.2f}]",
                     len(result), expected,
                     result.breakdown.false_positive_ratio])
        assert len(result) == expected
    print(format_table(["column", "price range", "matches", "expected",
                        "false-positive ratio"], rows))

    # The low/high correlation each Hermit index exploits, plus the famous
    # Dow-Jones vs S&P-500 pair from the paper's appendix (Figure 26).
    lows = dataset.columns[low_column(0)]
    highs = dataset.columns[high_column(0)]
    sp500, dow = dow_sp_series()
    print(f"\nlow_0 vs high_0 Pearson coefficient: "
          f"{pearson_coefficient(lows, highs):.4f}")
    print(f"S&P-500 vs Dow-Jones Pearson coefficient: "
          f"{pearson_coefficient(sp500, dow):.4f}")


if __name__ == "__main__":
    main()
