"""Conjunctive queries through the planner: Hermit path + host-index intersection.

Run with::

    python examples/planner_conjunctive.py

The script builds the Synthetic workload under *logical* pointers (the
MySQL-style scheme where every secondary-index candidate costs a primary-index
descent), creates a Hermit index on ``colC`` hosted by the pre-existing
``colB`` B+-tree, and then answers a two-predicate conjunctive query::

    SELECT ... WHERE 100k <= colC <= 104k AND 150k <= colB <= 250k

three ways:

1. **Planner** — ``Database.query_conjunctive`` lets the cost model decide.
   Under logical pointers every candidate is expensive to resolve, so the
   planner executes *both* access paths — the Hermit mechanism for the colC
   predicate and the host B+-tree for the colB predicate — intersects their
   candidate tid sets with ``np.intersect1d`` while they are still primary
   keys, and only then pays resolution + validation for the survivors.
2. **Manual plan A** — Hermit probe for colC, then post-filter colB.
3. **Manual plan B** — host-index probe for colB, then post-filter colC.

All three return identical rows; the plan explanation and the timings show
why the intersection wins.
"""

from __future__ import annotations

import time

import numpy as np

from repro import Database, IndexMethod, PointerScheme, RangePredicate, conjunction
from repro.workloads.synthetic import generate_synthetic, load_synthetic

NUM_TUPLES = 100_000


def manual_plan(database: Database, table_name: str, index_name: str,
                probe: RangePredicate, post: RangePredicate) -> np.ndarray:
    """One named index probe plus a vectorized post-filter."""
    result = database.query_with(table_name, index_name, probe)
    locations = np.asarray(result.locations, dtype=np.int64)
    if locations.size:
        locations = database.table(table_name).filter_in_range(
            locations, post.column, post.low, post.high
        )
    return np.unique(locations)


def timed(label: str, thunk):
    started = time.perf_counter()
    result = thunk()
    seconds = time.perf_counter() - started
    print(f"  {label:<42} {seconds * 1e3:8.2f} ms   {len(result):5d} rows")
    return result


def main() -> None:
    print(f"Loading Synthetic-Linear ({NUM_TUPLES // 1000}k tuples) "
          f"under LOGICAL pointers...")
    dataset = generate_synthetic(NUM_TUPLES, "linear", noise_fraction=0.01)
    database = Database(pointer_scheme=PointerScheme.LOGICAL)
    table_name = load_synthetic(database, dataset)
    database.create_index("idx_colC", table_name, "colC",
                          method=IndexMethod.HERMIT, host_column="colB")

    # colB = 2*colC + 10, so the host window [280k, 330k] covers the image
    # of colC in [140k, 165k]: each predicate alone matches thousands of
    # rows, their conjunction under a fifth of that — the regime where
    # intersecting candidate tid sets beats any single-index plan.
    target = RangePredicate("colC", 100_000.0, 150_000.0)
    host = RangePredicate("colB", 280_000.0, 330_000.0)
    query = conjunction(target, host)

    print("\nEXPLAIN:")
    print(database.explain(table_name, query).describe())

    print("\nRacing the three plans:")
    planned = timed("planner (Hermit ∩ host-index, batched)",
                    lambda: database.query_conjunctive(table_name, query)
                    .locations)
    hermit_first = timed("manual: Hermit probe + colB post-filter",
                         lambda: manual_plan(database, table_name, "idx_colC",
                                             target, host))
    host_first = timed("manual: host-index probe + colC post-filter",
                       lambda: manual_plan(database, table_name, "idx_colB",
                                           host, target))

    assert np.array_equal(planned, hermit_first)
    assert np.array_equal(planned, host_first)
    print(f"\nAll three plans returned the same {len(planned)} rows.")
    print("Under logical pointers the intersection pays off because tids are "
          "intersected\nbefore the per-candidate primary-index resolution, "
          "not after.")


if __name__ == "__main__":
    main()
