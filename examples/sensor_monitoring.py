"""Sensor scenario: non-linear correlations and the error_bound trade-off.

The Sensor application monitors gas concentration with 16 sensors whose
readings are *non-linearly* correlated with the per-row average reading (the
only indexed column).  This example indexes several sensor columns with
Hermit, shows how the TRS-Tree adapts its depth to the curvature, and sweeps
the ``error_bound`` parameter to expose the space/computation trade-off the
paper discusses in Section 6.

Run with::

    python examples/sensor_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import Database, IndexMethod, RangePredicate, TRSTreeConfig
from repro.bench.harness import run_query_batch
from repro.bench.report import format_table
from repro.storage.memory import BYTES_PER_MB
from repro.workloads.queries import range_queries
from repro.workloads.sensor import generate_sensor, load_sensor, sensor_column

NUM_TUPLES = 30_000


def main() -> None:
    print(f"Generating {NUM_TUPLES} sensor readings (16 sensors + average)...")
    dataset = generate_sensor(num_tuples=NUM_TUPLES)
    database = Database()
    table_name = load_sensor(database, dataset)

    print("\nIndexing three sensor columns with Hermit (host = average):")
    rows = []
    for sensor in (0, 5, 10):
        entry = database.create_index(f"idx_{sensor_column(sensor)}", table_name,
                                      sensor_column(sensor),
                                      method=IndexMethod.HERMIT,
                                      host_column="average")
        tree = entry.mechanism.trs_tree
        rows.append([sensor_column(sensor), tree.num_leaves, tree.height,
                     tree.num_outliers,
                     entry.mechanism.memory_bytes() / BYTES_PER_MB])
    print(format_table(["column", "leaves", "height", "outliers", "memory (MB)"],
                       rows))

    # Verify a monitoring query against a scan.
    readings = dataset.columns[sensor_column(5)]
    low, high = (float(np.quantile(readings, 0.7)),
                 float(np.quantile(readings, 0.8)))
    result = database.query(table_name,
                            RangePredicate(sensor_column(5), low, high))
    expected = int(((readings >= low) & (readings <= high)).sum())
    assert len(result) == expected
    print(f"\n'When did sensor_5 read between {low:.1f} and {high:.1f}?' -> "
          f"{len(result)} periods (verified)")

    # error_bound sweep on a fresh database: space vs computation.
    print("\nerror_bound trade-off on sensor_0 (Section 6):")
    sweep_rows = []
    for error_bound in (1.0, 10.0, 100.0, 1000.0):
        sweep_db = Database()
        sweep_table = load_sensor(sweep_db, dataset)
        entry = sweep_db.create_index(
            "idx_s0", sweep_table, sensor_column(0), method=IndexMethod.HERMIT,
            host_column="average",
            trs_config=TRSTreeConfig(error_bound=error_bound))
        domain = (float(dataset.columns[sensor_column(0)].min()),
                  float(dataset.columns[sensor_column(0)].max()))
        batch = run_query_batch(entry.mechanism,
                                range_queries(domain, 0.01, count=20, seed=1))
        sweep_rows.append([error_bound,
                           entry.mechanism.memory_bytes() / BYTES_PER_MB,
                           batch.throughput.kops,
                           batch.false_positive_ratio])
    print(format_table(["error_bound", "memory (MB)", "Kops",
                        "false-positive ratio"], sweep_rows))


if __name__ == "__main__":
    main()
