"""System catalog: tables, indexes and discovered correlations.

The catalog is deliberately thin — it owns no behaviour beyond bookkeeping —
but it is what lets the database facade answer questions such as "which
columns of this table already carry a complete index?" (the host candidates
for a new Hermit index) and "how much memory do the existing vs. newly created
indexes consume?" (the space-breakdown figures).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.correlation.discovery import CorrelationCandidate
from repro.errors import CatalogError
from repro.storage.table import Table


class IndexMethod(enum.Enum):
    """How a secondary index is physically realised."""

    BTREE = "btree"
    HERMIT = "hermit"
    CORRELATION_MAP = "correlation_map"
    AUTO = "auto"


@dataclass
class IndexEntry:
    """Catalog record of one secondary index.

    Attributes:
        name: Unique index name.
        table_name: Table the index belongs to.
        column: Indexed (target) column.
        method: Physical mechanism backing the index.
        mechanism: The mechanism object (BaselineSecondaryIndex, HermitIndex
            or CorrelationMap); duck-typed by the executor.
        host_column: Host column for correlation-based mechanisms.
        is_preexisting: Whether the index existed before the experiment's
            "new" indexes were added; drives the space-breakdown labels.
    """

    name: str
    table_name: str
    column: str
    method: IndexMethod
    mechanism: object
    host_column: str | None = None
    is_preexisting: bool = False


@dataclass
class TableEntry:
    """Catalog record of one table and its primary index."""

    name: str
    table: Table
    primary_index: object
    indexes: dict[str, IndexEntry] = field(default_factory=dict)
    correlations: list[CorrelationCandidate] = field(default_factory=list)


class Catalog:
    """Registry of tables and their indexes."""

    def __init__(self) -> None:
        self._tables: dict[str, TableEntry] = {}

    def add_table(self, name: str, table: Table, primary_index: object) -> TableEntry:
        """Register a table.

        Raises:
            CatalogError: If a table with the same name already exists.
        """
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        entry = TableEntry(name=name, table=table, primary_index=primary_index)
        self._tables[name] = entry
        return entry

    def table_entry(self, name: str) -> TableEntry:
        """Look up a table entry by name.

        Raises:
            CatalogError: If the table does not exist.
        """
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def add_index(self, entry: IndexEntry) -> None:
        """Register a secondary index.

        Raises:
            CatalogError: If the index name is taken on that table.
        """
        table_entry = self.table_entry(entry.table_name)
        if entry.name in table_entry.indexes:
            raise CatalogError(
                f"index {entry.name!r} already exists on table {entry.table_name!r}"
            )
        table_entry.indexes[entry.name] = entry

    def drop_index(self, table_name: str, index_name: str) -> IndexEntry:
        """Remove and return a secondary index entry."""
        table_entry = self.table_entry(table_name)
        try:
            return table_entry.indexes.pop(index_name)
        except KeyError:
            raise CatalogError(
                f"index {index_name!r} does not exist on table {table_name!r}"
            ) from None

    def indexes_on(self, table_name: str) -> list[IndexEntry]:
        """All secondary indexes of a table."""
        return list(self.table_entry(table_name).indexes.values())

    def indexes_on_column(self, table_name: str, column: str) -> list[IndexEntry]:
        """Secondary indexes whose target column is ``column``."""
        return [entry for entry in self.indexes_on(table_name)
                if entry.column == column]

    def indexed_columns(self, table_name: str,
                        methods: tuple[IndexMethod, ...] = (IndexMethod.BTREE,)) -> list[str]:
        """Columns of a table carrying a complete index of one of ``methods``.

        These are the viable host candidates for a Hermit index.
        """
        return [entry.column for entry in self.indexes_on(table_name)
                if entry.method in methods]

    def record_correlation(self, table_name: str,
                           candidate: CorrelationCandidate) -> None:
        """Remember a discovered correlation for a table."""
        self.table_entry(table_name).correlations.append(candidate)

    def tables(self) -> Iterator[TableEntry]:
        """Iterate all table entries."""
        return iter(self._tables.values())

    def __contains__(self, table_name: str) -> bool:
        return table_name in self._tables
