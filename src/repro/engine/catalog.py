"""System catalog: tables, indexes and discovered correlations.

The catalog is deliberately thin — it owns no behaviour beyond bookkeeping —
but it is what lets the database facade answer questions such as "which
columns of this table already carry a complete index?" (the host candidates
for a new Hermit index) and "how much memory do the existing vs. newly created
indexes consume?" (the space-breakdown figures).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.correlation.discovery import CorrelationCandidate
from repro.errors import CatalogError
from repro.index.base import KeyRange
from repro.storage.table import Table


class IndexMethod(enum.Enum):
    """How a secondary index is physically realised."""

    BTREE = "btree"
    SORTED_COLUMN = "sorted_column"
    HERMIT = "hermit"
    CORRELATION_MAP = "correlation_map"
    COMPOSITE = "composite"
    AUTO = "auto"


# Methods that constitute a *complete* exact index on their target column and
# can therefore serve as the host of a correlation-based mechanism.
HOST_METHODS = (IndexMethod.BTREE, IndexMethod.SORTED_COLUMN)

# Assumed selectivity when a column carries no usable statistics; chosen so
# the cost model's default ranking reproduces the pre-planner executor's
# fixed preference order (host index, then Hermit, then CM).
DEFAULT_SELECTIVITY = 0.05


@dataclass(frozen=True)
class ColumnStats:
    """Lightweight per-column optimizer statistics served by the catalog.

    Derived from the running min/max/count the table maintains on insert;
    the cost model assumes a uniform value distribution over ``[minimum,
    maximum]``, which is exactly the granularity the paper's "optimizer
    statistics" provide.
    """

    row_count: int
    minimum: float
    maximum: float

    @property
    def has_range(self) -> bool:
        """Whether min/max have been observed (false on empty columns)."""
        return math.isfinite(self.minimum) and math.isfinite(self.maximum)

    def selectivity(self, key_range: KeyRange) -> float:
        """Estimated fraction of rows matching ``key_range`` (uniform model).

        Falls back to :data:`DEFAULT_SELECTIVITY` when the column has no
        observed range, and floors non-empty overlaps at one row so point
        predicates never estimate to zero.
        """
        if self.row_count == 0:
            return 0.0
        if not self.has_range:
            return DEFAULT_SELECTIVITY
        low = max(key_range.low, self.minimum)
        high = min(key_range.high, self.maximum)
        if high < low:
            return 0.0
        domain = self.maximum - self.minimum
        if domain <= 0:
            return 1.0
        return min(1.0, max((high - low) / domain, 1.0 / self.row_count))

    def estimated_rows(self, key_range: KeyRange) -> float:
        """Estimated number of matching rows."""
        return self.row_count * self.selectivity(key_range)

    def selectivity_array(self, lows: "np.ndarray",
                          highs: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`selectivity` over aligned bound arrays.

        Used by the batch planner to bucket a whole query batch in one
        pass; the expression tree mirrors the scalar method exactly so
        both produce bit-identical selectivities (and therefore identical
        cache-key buckets) for the same predicate.
        """
        count = len(lows)
        if self.row_count == 0:
            return np.zeros(count, dtype=np.float64)
        if not self.has_range:
            return np.full(count, DEFAULT_SELECTIVITY, dtype=np.float64)
        low = np.maximum(lows, self.minimum)
        high = np.minimum(highs, self.maximum)
        domain = self.maximum - self.minimum
        if domain <= 0:
            return np.where(high < low, 0.0, 1.0)
        result = np.minimum(
            1.0, np.maximum((high - low) / domain, 1.0 / self.row_count)
        )
        result[high < low] = 0.0
        return result


@dataclass
class IndexEntry:
    """Catalog record of one secondary index.

    Attributes:
        name: Unique index name.
        table_name: Table the index belongs to.
        column: Indexed (target) column.
        method: Physical mechanism backing the index.
        mechanism: The mechanism object (BaselineSecondaryIndex, HermitIndex,
            CorrelationMap or CompositeSecondaryIndex); duck-typed by the
            executor and the planner's access paths.
        host_column: Host column for correlation-based mechanisms.
        second_column: Second key column for COMPOSITE indexes (``column``
            is the leading key).
        is_preexisting: Whether the index existed before the experiment's
            "new" indexes were added; drives the space-breakdown labels.
        definition: JSON-serialisable creation parameters (resolved method,
            host column, TRS-Tree/CM configuration).  The durability layer
            logs it on ``create_index`` and embeds it in checkpoint
            manifests so recovery can rebuild the mechanism from data.
    """

    name: str
    table_name: str
    column: str
    method: IndexMethod
    mechanism: object
    host_column: str | None = None
    second_column: str | None = None
    is_preexisting: bool = False
    definition: dict | None = None


@dataclass
class TableEntry:
    """Catalog record of one table and its primary index.

    ``data_epoch`` counts committed mutations (DML write epochs) against the
    table — :meth:`Catalog.bump_data_epoch` is called by the database facade
    once per committed ``insert_many`` / ``update`` / ``delete``.  The
    statistics cache and the planner's plan cache key their freshness on it,
    which is what lets a long-lived plan template notice that the table it
    was priced against has drifted even when the row count stays within the
    coarse 2x replan window.
    """

    name: str
    table: Table
    primary_index: object
    indexes: dict[str, IndexEntry] = field(default_factory=dict)
    correlations: list[CorrelationCandidate] = field(default_factory=list)
    data_epoch: int = 0


class Catalog:
    """Registry of tables and their indexes.

    Args:
        epoch_guard: Optional callable invoked with a short label by every
            catalog mutator (``add_table``, ``add_index``, ``drop_index``,
            ``bump_data_epoch``).  ``Database`` wires it to
            :meth:`EpochManager.note_mutation
            <repro.engine.epochs.EpochManager.note_mutation>` so the
            epoch-lock discipline checker sees catalog mutations; a bare
            ``Catalog()`` (tests, planner fixtures) runs unguarded.
    """

    def __init__(self, epoch_guard=None) -> None:
        self._tables: dict[str, TableEntry] = {}
        self._version = 0
        self._epoch_guard = epoch_guard
        # (table, column) -> (observation count, data epoch, stats); rebuilt
        # when the table has observed new values, committed a mutation epoch
        # or changed its live row count.
        self._stats_cache: dict[tuple[str, str],
                                tuple[int, int, ColumnStats]] = {}

    def _guard(self, label: str) -> None:
        if self._epoch_guard is not None:
            self._epoch_guard(label)

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every index DDL.

        The planner keys its plan cache on this: a cached plan is only
        replayed while the index set it was chosen from is unchanged.
        """
        return self._version

    def add_table(self, name: str, table: Table, primary_index: object) -> TableEntry:
        """Register a table.

        Raises:
            CatalogError: If a table with the same name already exists.
        """
        self._guard("catalog.add_table")
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        entry = TableEntry(name=name, table=table, primary_index=primary_index)
        self._tables[name] = entry
        return entry

    def table_entry(self, name: str) -> TableEntry:
        """Look up a table entry by name.

        Raises:
            CatalogError: If the table does not exist.
        """
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def add_index(self, entry: IndexEntry) -> None:
        """Register a secondary index.

        Raises:
            CatalogError: If the index name is taken on that table.
        """
        self._guard("catalog.add_index")
        table_entry = self.table_entry(entry.table_name)
        if entry.name in table_entry.indexes:
            raise CatalogError(
                f"index {entry.name!r} already exists on table {entry.table_name!r}"
            )
        table_entry.indexes[entry.name] = entry
        self._version += 1

    def drop_index(self, table_name: str, index_name: str) -> IndexEntry:
        """Remove and return a secondary index entry."""
        self._guard("catalog.drop_index")
        table_entry = self.table_entry(table_name)
        try:
            dropped = table_entry.indexes.pop(index_name)
        except KeyError:
            raise CatalogError(
                f"index {index_name!r} does not exist on table {table_name!r}"
            ) from None
        self._version += 1
        return dropped

    def bump_data_epoch(self, table_name: str) -> int:
        """Record one committed mutation against ``table_name``.

        Returns the table's new data epoch.  Called by the database facade
        under the write side of its :class:`~repro.engine.epochs.EpochManager`,
        so the bump is always ordered after the mutation it records.
        """
        self._guard("catalog.bump_data_epoch")
        entry = self.table_entry(table_name)
        entry.data_epoch += 1
        return entry.data_epoch

    def data_epoch(self, table_name: str) -> int:
        """Committed-mutation count of a table (see :class:`TableEntry`)."""
        return self.table_entry(table_name).data_epoch

    def indexes_on(self, table_name: str) -> list[IndexEntry]:
        """All secondary indexes of a table."""
        return list(self.table_entry(table_name).indexes.values())

    def indexes_on_column(self, table_name: str, column: str) -> list[IndexEntry]:
        """Secondary indexes whose target column is ``column``."""
        return [entry for entry in self.indexes_on(table_name)
                if entry.column == column]

    def indexed_columns(self, table_name: str,
                        methods: tuple[IndexMethod, ...] = HOST_METHODS) -> list[str]:
        """Columns of a table carrying a complete index of one of ``methods``.

        These are the viable host candidates for a Hermit index.
        """
        return [entry.column for entry in self.indexes_on(table_name)
                if entry.method in methods]

    def column_stats(self, table_name: str, column: str) -> ColumnStats:
        """Optimizer statistics for one column, fed to the planner's cost model.

        The catalog serves them from the running min/max/count the table
        maintains; a column that never observed a value yields stats whose
        :meth:`ColumnStats.selectivity` falls back to the default, which is
        what keeps the cost model's ranking equal to the pre-planner
        executor's fixed preference order on unknown data.
        """
        entry = self.table_entry(table_name)
        observed = entry.table.statistics.get(column)
        if observed is None:
            return ColumnStats(entry.table.num_rows, math.inf, -math.inf)
        cache_key = (table_name, column)
        cached = self._stats_cache.get(cache_key)
        row_count = entry.table.num_rows
        if (cached is not None and cached[0] == observed.count
                and cached[1] == entry.data_epoch
                and cached[2].row_count == row_count):
            return cached[2]
        stats = ColumnStats(row_count, observed.minimum, observed.maximum)
        self._stats_cache[cache_key] = (observed.count, entry.data_epoch, stats)
        return stats

    def record_correlation(self, table_name: str,
                           candidate: CorrelationCandidate) -> None:
        """Remember a discovered correlation for a table."""
        self.table_entry(table_name).correlations.append(candidate)

    def tables(self) -> Iterator[TableEntry]:
        """Iterate all table entries."""
        return iter(self._tables.values())

    def __contains__(self, table_name: str) -> bool:
        return table_name in self._tables
