"""Access paths: the uniform unit the planner chooses between.

An :class:`AccessPath` is one concrete way to produce *candidate tuple
identifiers* for part of a query — a full table scan, a probe of a complete
host index (B+-tree or sorted column), a Hermit mechanism lookup, a
Correlation-Map lookup, or a composite-index probe covering two predicates at
once.  Every path obeys the same array-native contract:

* ``execute(breakdown) -> np.ndarray`` returns candidate tids (row locations
  under physical pointers, primary-key values under logical pointers) as one
  numpy array, charging its work to the shared per-phase breakdown, and
* ``estimated_cost()`` / ``estimated_candidates()`` expose the cost model's
  view of the path so the planner can compare paths of different kinds.

Candidates may contain false positives (Hermit/CM) and dead rows; the
executor removes both in a single batched base-table validation pass after
intersecting the candidate sets, so paths never validate individually.

Costs are measured in abstract *row-touch units* (the cost of moving one
entry through a Python-level index structure).  The formulas, with ``n`` the
live row count, ``k`` the mechanism's estimated candidate count and
``L = log2(n + 1)``:

=====================  =====================================================
Path                   Estimated cost
=====================  =====================================================
full scan              ``n * scan_per_row``
B+-tree index          ``descent_cost * L + k``
sorted-column index    ``sorted_probe_cost * L + sorted_per_candidate * k``
Hermit mechanism       ``mechanism_overhead * L + k``  (k inflated by the
                       observed false-positive ratio)
Correlation Map        ``mechanism_overhead * L + k``  (k inflated by bucket
                       expansion and the host-bucket over-fetch)
composite index        ``descent_cost * L + k``  (k uses both predicates'
                       selectivities, independence assumed)
=====================  =====================================================

Downstream of every path, each surviving candidate still pays pointer
resolution (a primary-index descent under logical pointers, free under
physical pointers) plus the vectorized validation touch — the planner uses
that per-candidate downstream weight both to pick the driver path and to
decide whether intersecting an additional path pays for itself.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.hermit import LookupBreakdown
from repro.engine.catalog import ColumnStats, IndexEntry, IndexMethod
from repro.index.base import KeyRange
from repro.segments import concat_segments, run_indices, segmented_filter
from repro.storage.identifiers import PointerScheme
from repro.storage.table import Table


def column_bounds(key_ranges: Sequence[dict[str, KeyRange]],
                  column: str) -> tuple[np.ndarray, np.ndarray]:
    """Aligned per-query (lows, highs) arrays for one predicate column.

    The batch executor and the access paths both need the per-query bounds
    of a column as flat float arrays (to repeat over segment sizes or feed
    ``searchsorted``); keeping the extraction here keeps the dtype/count
    handling in one place.
    """
    count = len(key_ranges)
    lows = np.fromiter((ranges[column].low for ranges in key_ranges),
                       dtype=np.float64, count=count)
    highs = np.fromiter((ranges[column].high for ranges in key_ranges),
                        dtype=np.float64, count=count)
    return lows, highs


@dataclass(frozen=True)
class CostModel:
    """Constants of the planner's cost model, in row-touch units.

    The defaults encode two measured facts about this codebase — sorted-column
    probes return zero-copy views (ROADMAP: ~2x over the B+-tree) and
    vectorized validation costs a fraction of a Python-level index touch —
    plus one deliberate bias: ``scan_per_row`` is kept at parity with the
    per-candidate index cost so an index is chosen whenever one covers a
    predicate, matching the pre-planner executor's behaviour.
    """

    scan_per_row: float = 1.0
    descent_cost: float = 2.0
    btree_per_candidate: float = 1.0
    sorted_probe_cost: float = 0.5
    sorted_per_candidate: float = 0.3
    mechanism_overhead: float = 2.0
    validate_per_candidate: float = 0.3
    # Per-candidate primary-index resolution under logical pointers, per
    # log2(n) level.  Deliberately below descent_cost: resolution runs as
    # one batched search_many whose per-key descents are C-level bisects,
    # measurably cheaper than the Python-level leaf walks a fresh index
    # probe pays per candidate.
    resolve_per_level: float = 0.5
    # Safety margin on the intersection decision: an extra path must
    # undercut *half* the downstream work it could save, so estimate errors
    # do not push the planner into intersections that lose in practice.
    intersect_margin: float = 0.5

    def downstream_per_candidate(self, pointer_scheme: PointerScheme,
                                 row_count: int) -> float:
        """Per-candidate cost paid after a path: resolution + validation.

        Under logical pointers every candidate tid costs one (batched)
        primary-index descent before it can be validated; under physical
        pointers the tid *is* the location and only the vectorized
        validation touch remains.  This asymmetry is why the planner
        intersects far more eagerly under logical pointers.
        """
        cost = self.validate_per_candidate
        if pointer_scheme.needs_primary_lookup:
            cost += self.resolve_per_level * math.log2(row_count + 2)
        return cost


DEFAULT_COST_MODEL = CostModel()


class AccessPath:
    """One way to produce candidate tids for (part of) a query.

    Subclasses bind their predicate(s) and statistics at construction and
    precompute the two estimates, so the planner compares plain floats.

    Attributes:
        columns: Predicate columns this path covers (the executor validates
            *all* query predicates regardless; covered columns only matter
            for plan selection).
        produces_locations: True when :meth:`execute` returns row locations
            directly instead of pointer-scheme tids (full scans), letting
            the executor skip pointer resolution.
        produces_unique_tids: True when :meth:`execute` guarantees a
            duplicate-free candidate array.  Every concrete path does —
            full scans emit distinct live slots, complete indexes
            (B+-tree, sorted column, composite) hold one entry per row,
            and the correlation mechanisms (Hermit, CM) end their candidate
            generation with an explicit dedup — which lets the executor
            pass ``assume_unique=True`` to its ``np.intersect1d`` calls and
            replace the final ``np.unique`` with a plain sort.  A future
            path without the guarantee sets this False and the executor
            falls back to the safe kernels.
    """

    columns: tuple[str, ...] = ()
    produces_locations = False
    produces_unique_tids = True

    def estimated_candidates(self) -> float:
        """Cost-model estimate of the candidate count this path returns."""
        raise NotImplementedError

    def estimated_cost(self) -> float:
        """Cost-model estimate of executing this path, in row-touch units."""
        raise NotImplementedError

    def execute(self, breakdown: LookupBreakdown) -> np.ndarray:
        """Produce the candidate tid array, charging phases to ``breakdown``."""
        raise NotImplementedError

    def execute_many(self, key_ranges: Sequence[dict[str, KeyRange]],
                     breakdown: LookupBreakdown,
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Produce candidate tids for a whole query batch, segmented.

        ``key_ranges`` holds one merged predicate mapping per query (every
        query of a batch group shares the same column set; the ranges
        differ) — the path picks out the columns it covers, ignoring the
        ranges it was constructed with.  Returns ``(values, offsets)``
        where query ``i`` owns ``values[offsets[i]:offsets[i + 1]]`` (see
        ``repro.segments``), so the executor can intersect, resolve and
        validate the whole batch in O(1) array passes.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description for plan explanations."""
        raise NotImplementedError

    def rebind(self, merged: dict[str, KeyRange]) -> "AccessPath":
        """Cheap clone bound to new predicate ranges (plan-cache replay).

        The clone keeps the template's cost estimates — the plan cache only
        replays a template while the query's selectivity bucket matches, so
        re-estimating would change nothing the planner acts on.
        """
        raise NotImplementedError


class FullScanPath(AccessPath):
    """Scan the live rows once, masking every predicate in one pass.

    Unlike the index paths, a scan produces *row locations* rather than
    pointer-scheme tids: the planner never intersects a scan with another
    path (a scan already applies every predicate), so the executor can skip
    pointer resolution entirely for scan plans — under logical pointers that
    is the whole point of scanning.
    """

    produces_locations = True

    def __init__(self, table: Table, predicates: dict[str, KeyRange],
                 cost_model: CostModel = DEFAULT_COST_MODEL) -> None:
        self.table = table
        self.predicates = dict(predicates)
        self.columns = tuple(self.predicates)
        self._cost = table.num_rows * cost_model.scan_per_row
        # A scan applies every predicate while it reads, so its candidates
        # are already the (live) matches; the planner refines this estimate
        # from the column statistics via bind_candidate_estimate.
        self._candidates = float(table.num_rows)

    def bind_candidate_estimate(self, candidates: float) -> None:
        """Let the planner refine the match estimate from column stats."""
        self._candidates = candidates

    def estimated_candidates(self) -> float:
        return self._candidates

    def estimated_cost(self) -> float:
        return self._cost

    def execute(self, breakdown: LookupBreakdown) -> np.ndarray:
        started = time.perf_counter()
        projected = self.table.project(list(self.predicates))
        slots = projected[0]
        mask = np.ones(slots.shape, dtype=bool)
        for key_range, values in zip(self.predicates.values(), projected[1:]):
            mask &= (values >= key_range.low) & (values <= key_range.high)
        matching = slots[mask]
        breakdown.base_table_seconds += time.perf_counter() - started
        return matching

    def execute_many(self, key_ranges: Sequence[dict[str, KeyRange]],
                     breakdown: LookupBreakdown,
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Scan once for the whole batch: sort the driving column, slice per query.

        The live rows are projected once and sorted on the first predicate
        column; every query's matching run is then located with one
        vectorized ``searchsorted`` pair and gathered with a single
        multi-arange fancy index.  Remaining predicate columns are masked
        per element against their own query's bounds (``np.repeat`` of the
        per-query bounds over the run sizes) — B scans collapse into one
        O(n log n) sort plus O(total matches) array work.
        """
        started = time.perf_counter()
        driving = self.columns[0]
        projected = self.table.project(list(self.columns))
        slots = projected[0]
        order = np.argsort(projected[1], kind="stable")
        sorted_values = projected[1][order]
        lows, highs = column_bounds(key_ranges, driving)
        starts = np.searchsorted(sorted_values, lows, side="left")
        stops = np.searchsorted(sorted_values, highs, side="right")
        indices, offsets = run_indices(starts, stops)
        # Gather through the matched positions only — order[indices] is
        # O(total matches), while slots[order] would permute the whole
        # table once per column.
        matched = order[indices]
        candidates = slots[matched]
        if len(self.columns) > 1 and candidates.size:
            sizes = np.diff(offsets)
            mask = np.ones(candidates.size, dtype=bool)
            for column, values in zip(self.columns[1:], projected[2:]):
                gathered = values[matched]
                column_lows, column_highs = column_bounds(key_ranges, column)
                mask &= ((gathered >= np.repeat(column_lows, sizes))
                         & (gathered <= np.repeat(column_highs, sizes)))
            candidates, offsets = segmented_filter(candidates, offsets, mask)
        breakdown.base_table_seconds += time.perf_counter() - started
        return candidates, offsets

    def describe(self) -> str:
        columns = ", ".join(self.columns)
        return f"full-scan({columns}) cost={self._cost:.0f}"

    def rebind(self, merged: dict[str, KeyRange]) -> "FullScanPath":
        clone = object.__new__(FullScanPath)
        clone.table = self.table
        clone.predicates = dict(merged)
        clone.columns = tuple(merged)
        clone._cost = self._cost
        clone._candidates = self._candidates
        return clone


class MechanismPath(AccessPath):
    """Probe one catalogued single-column index mechanism.

    Covers B+-tree and sorted-column complete indexes, Hermit mechanisms and
    Correlation Maps — anything exposing ``candidate_tids(key_range,
    breakdown)`` and ``estimate_candidates(key_range, stats)``.
    """

    def __init__(self, entry: IndexEntry, key_range: KeyRange,
                 stats: ColumnStats,
                 cost_model: CostModel = DEFAULT_COST_MODEL) -> None:
        self.entry = entry
        self.key_range = key_range
        self.columns = (entry.column,)
        self._candidates = float(
            entry.mechanism.estimate_candidates(key_range, stats)
        )
        levels = math.log2(stats.row_count + 2)
        if entry.method is IndexMethod.SORTED_COLUMN:
            self._cost = (cost_model.sorted_probe_cost * levels
                          + cost_model.sorted_per_candidate * self._candidates)
        elif entry.method is IndexMethod.BTREE:
            self._cost = (cost_model.descent_cost * levels
                          + cost_model.btree_per_candidate * self._candidates)
        else:  # HERMIT / CORRELATION_MAP: translation + host-index gathers
            self._cost = (cost_model.mechanism_overhead * levels
                          + cost_model.btree_per_candidate * self._candidates)

    def estimated_candidates(self) -> float:
        return self._candidates

    def estimated_cost(self) -> float:
        return self._cost

    def execute(self, breakdown: LookupBreakdown) -> np.ndarray:
        return self.entry.mechanism.candidate_tids(self.key_range, breakdown)

    def execute_many(self, key_ranges: Sequence[dict[str, KeyRange]],
                     breakdown: LookupBreakdown,
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Delegate the whole batch to the mechanism's segmented probe."""
        column = self.entry.column
        return self.entry.mechanism.candidate_tids_many(
            [ranges[column] for ranges in key_ranges], breakdown
        )

    def describe(self) -> str:
        return (f"{self.entry.method.value}({self.entry.name} on "
                f"{self.entry.column}) cost={self._cost:.0f} "
                f"~candidates={self._candidates:.0f}")

    def rebind(self, merged: dict[str, KeyRange]) -> "MechanismPath":
        clone = object.__new__(MechanismPath)
        clone.entry = self.entry
        clone.key_range = merged[self.entry.column]
        clone.columns = self.columns
        clone._candidates = self._candidates
        clone._cost = self._cost
        return clone


class CompositePath(AccessPath):
    """Probe a composite index, covering two predicates with one path."""

    def __init__(self, entry: IndexEntry, leading_range: KeyRange,
                 second_range: KeyRange, leading_stats: ColumnStats,
                 second_stats: ColumnStats,
                 cost_model: CostModel = DEFAULT_COST_MODEL) -> None:
        self.entry = entry
        self.leading_range = leading_range
        self.second_range = second_range
        self.columns = (entry.column, entry.second_column)
        self._candidates = float(entry.mechanism.estimate_candidates(
            leading_range, second_range, leading_stats, second_stats
        ))
        # The probe walks the whole leading-key run and masks the second key,
        # so the per-candidate term uses the leading predicate's row estimate.
        leading_rows = leading_stats.estimated_rows(leading_range)
        self._cost = (cost_model.descent_cost
                      * math.log2(leading_stats.row_count + 2)
                      + cost_model.btree_per_candidate * leading_rows)

    def estimated_candidates(self) -> float:
        return self._candidates

    def estimated_cost(self) -> float:
        return self._cost

    def execute(self, breakdown: LookupBreakdown) -> np.ndarray:
        return self.entry.mechanism.candidate_tids_pair(
            self.leading_range, self.second_range, breakdown
        )

    def execute_many(self, key_ranges: Sequence[dict[str, KeyRange]],
                     breakdown: LookupBreakdown,
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Per-query pair probes, concatenated into one segmented array.

        The composite entry list keeps ``(leading, second, tid)`` triples in
        Python objects, so the probe itself stays per query; the batch win
        here is only the shared downstream pipeline.
        """
        leading, second = self.columns
        return concat_segments([
            self.entry.mechanism.candidate_tids_pair(
                ranges[leading], ranges[second], breakdown
            )
            for ranges in key_ranges
        ])

    def describe(self) -> str:
        return (f"composite({self.entry.name} on {self.entry.column}, "
                f"{self.entry.second_column}) cost={self._cost:.0f} "
                f"~candidates={self._candidates:.0f}")

    def rebind(self, merged: dict[str, KeyRange]) -> "CompositePath":
        clone = object.__new__(CompositePath)
        clone.entry = self.entry
        clone.leading_range = merged[self.entry.column]
        clone.second_range = merged[self.entry.second_column]
        clone.columns = self.columns
        clone._candidates = self._candidates
        clone._cost = self._cost
        return clone
