"""The cost-based query planner.

The planner turns a :class:`~repro.engine.query.ConjunctiveQuery` into a
:class:`Plan`: an ordered list of :class:`~repro.engine.access_path.AccessPath`
objects to execute and intersect, chosen by the cost model from the catalog's
per-column statistics.  Planning proceeds in four steps:

1. **Normalise** — merge same-column predicates (:meth:`ConjunctiveQuery.merged`);
   a contradiction short-circuits to an unsatisfiable plan.
2. **Enumerate** — for every predicate column, build one
   :class:`~repro.engine.access_path.MechanismPath` per catalogued index on
   that column; for every composite index whose two key columns both carry
   predicates, build a :class:`~repro.engine.access_path.CompositePath`; and
   always one :class:`~repro.engine.access_path.FullScanPath` covering the
   whole conjunction.
3. **Select** — keep the cheapest path per column (a composite path wins a
   pair of columns when it undercuts the two single-column winners combined),
   pick the *driver* path minimising ``cost + downstream_per_candidate *
   candidates``, and fall back to the full scan when the driver does not beat
   it.
4. **Intersect or validate** — every additional selected path is executed and
   intersected (``np.intersect1d``) only when its execution cost undercuts the
   downstream work it saves on the driver's candidates (under logical
   pointers each candidate costs a primary-index descent, so intersection
   pays off much earlier than under physical pointers); predicates whose
   paths are not worth executing are enforced by the executor's final batched
   validation pass instead.

The executor half lives in :mod:`repro.engine.executor`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.hermit import LookupBreakdown
from repro.engine.access_path import (
    DEFAULT_COST_MODEL,
    AccessPath,
    CompositePath,
    CostModel,
    FullScanPath,
    MechanismPath,
)
from repro.engine.catalog import Catalog, IndexMethod, TableEntry
from repro.engine.query import ConjunctiveQuery
from repro.index.base import KeyRange
from repro.storage.identifiers import PointerScheme


@dataclass
class Plan:
    """The planner's output: which paths to execute, and why.

    Attributes:
        table_name: Table the plan reads.
        query: The normalised input query.
        merged: One intersected key range per predicate column (empty when
            unsatisfiable).
        paths: Access paths to execute, driver first; their candidate tid
            arrays are intersected in order.
        estimated_cost: Cost-model total for the chosen paths plus the
            downstream per-candidate work on the driver's candidates.
        unsatisfiable: True when same-column predicates contradict — the
            executor returns an empty result without touching any path.
    """

    table_name: str
    query: ConjunctiveQuery
    merged: dict[str, KeyRange] = field(default_factory=dict)
    paths: list[AccessPath] = field(default_factory=list)
    estimated_cost: float = 0.0
    unsatisfiable: bool = False
    # Snapshot of the planner's cumulative cache counters taken when this
    # plan was handed out (None for plans that bypassed the cache, e.g.
    # unsatisfiable ones) — the observability hook ``Database.explain``
    # surfaces, so a workload can verify its plans actually amortise.
    cache_stats: "PlannerCacheStats | None" = None
    # Marker for queries served by the epoch-keyed result cache
    # (``repro.cache``): a cached "plan" has no paths — the stored location
    # array is returned without planning or execution — but still reports
    # the index that populated the entry.  ``Database.explain`` returns one
    # when the query would currently be answered from cache.
    cached: bool = False
    cached_used_index: str | None = None

    @property
    def used_index(self) -> str | None:
        """Name of the driver path's index, or None for a full scan."""
        if self.cached:
            return self.cached_used_index
        for path in self.paths:
            entry = getattr(path, "entry", None)
            if entry is not None:
                return entry.name
        return None

    @property
    def is_full_scan(self) -> bool:
        """Whether the plan reads the base table directly."""
        return any(isinstance(path, FullScanPath) for path in self.paths)

    def describe(self) -> str:
        """Multi-line plan explanation (the ``EXPLAIN`` output)."""
        if self.cached:
            via = (f"index {self.cached_used_index!r}"
                   if self.cached_used_index is not None else "a full scan")
            return (f"plan for {self.table_name}: result cache hit — the "
                    f"stored locations (populated via {via}) are returned "
                    f"without planning or execution")
        if self.unsatisfiable:
            return (f"plan for {self.table_name}: unsatisfiable "
                    f"(contradictory predicates)")
        lines = [f"plan for {self.table_name} "
                 f"(estimated cost {self.estimated_cost:.0f}):"]
        for position, path in enumerate(self.paths):
            role = "drive" if position == 0 else "intersect"
            lines.append(f"  {role}: {path.describe()}")
        executed = {column for path in self.paths for column in path.columns}
        validated = [column for column in self.merged if column not in executed]
        columns = ", ".join(self.merged)
        suffix = (f" (+ validate-only: {', '.join(validated)})"
                  if validated else "")
        lines.append(f"  validate: base table on [{columns}]{suffix}")
        if self.cache_stats is not None:
            stats = self.cache_stats
            lines.append(f"  plan cache: hits={stats.hits} "
                         f"misses={stats.misses} replays={stats.replays}")
        return "\n".join(lines)


@dataclass
class PlannedQueryResult:
    """Array-native result of a planned query.

    Attributes:
        locations: Matching row locations, sorted ascending, deduplicated
            (an int64 numpy array — the planner pipeline never leaves numpy).
        breakdown: Per-phase time accounting accumulated across every
            executed path, pointer resolution and validation.
        plan: The plan that produced the result.
    """

    locations: np.ndarray
    breakdown: LookupBreakdown
    plan: Plan
    # Number of queries that shared this result's plan template in one
    # batched execution (1 for the per-query API).  Together with the
    # planner's cache counters this shows how well a batch amortised
    # planning: a batch of B same-shape queries yields group_size == B and
    # a single planner visit.
    group_size: int = 1
    # Write epoch the read executed under (None when the caller ran outside
    # the epoch protocol); see repro.engine.epochs.
    epoch: int | None = None

    def __len__(self) -> int:
        return int(self.locations.size)


def _selectivity_bucket(selectivity: float) -> int:
    """Quantise a selectivity to a power-of-two bucket for plan caching."""
    if selectivity <= 0.0:
        return -64
    return max(-64, min(0, int(math.log2(selectivity))))


def _selectivity_bucket_array(selectivities: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_selectivity_bucket` for the batch planner.

    Matches the scalar function exactly: ``int()`` truncates towards zero,
    which is what ``astype(int64)`` does to the ``log2`` values too.
    """
    buckets = np.full(selectivities.size, -64, dtype=np.int64)
    positive = selectivities > 0.0
    if positive.any():
        logs = np.log2(selectivities[positive]).astype(np.int64)
        buckets[positive] = np.clip(logs, -64, 0)
    return buckets


# A cached plan is replayed at most this many times before a full replan.
# Mechanism cost estimates improve as queries execute (the executor feeds
# observed false-positive ratios back into the mechanisms), and none of the
# cache-invalidation signals sees that feedback — bounding replays keeps
# the amortised planning cost near zero while guaranteeing a plan priced on
# stale estimates is reconsidered within a bounded number of queries.
_MAX_PLAN_REPLAYS = 64

# A cached plan also expires after this many committed write epochs against
# its table (TableEntry.data_epoch, bumped once per insert_many / update /
# delete).  The 2x row-count window catches bulk growth but is blind to
# mutations that leave the count roughly unchanged — a steady
# update/delete+insert churn can shift a column's min/max (and therefore
# every selectivity the plan was priced on) without ever tripping it.
_MAX_EPOCH_DRIFT = 32


@dataclass(frozen=True)
class PlannerCacheStats:
    """Cumulative plan-cache counters (the planner's observability surface).

    Attributes:
        hits: Queries served by replaying a valid cached plan.
        misses: Queries that required fresh cost-based planning (cold cache,
            catalog/row-count invalidation, or the replay bound expiring).
        replays: Queries that reused a plan template without planning —
            cache hits plus the members of batched plan groups beyond each
            group's representative, so ``replays - hits`` is exactly the
            planning work the batch API amortised away.
    """

    hits: int = 0
    misses: int = 0
    replays: int = 0


@dataclass
class PlanGroup:
    """One batch-planning group: queries that share a plan template.

    Attributes:
        plan: The template chosen (or replayed) for the group's
            representative query; the executor rebinds per query from
            ``merged_list`` rather than from the template's ranges.
        indices: Positions of the group's queries in the input batch.
        merged_list: Per-query merged key ranges, aligned with ``indices``
            (empty dicts for unsatisfiable queries).
    """

    plan: Plan
    indices: list[int] = field(default_factory=list)
    merged_list: list[dict[str, KeyRange]] = field(default_factory=list)


@dataclass
class _CachedPlan:
    """A plan template replayed while its planning inputs stay stable."""

    plan: Plan
    catalog_version: int
    row_count: int
    data_epoch: int = 0
    replays: int = 0

    def replay(self, query: ConjunctiveQuery,
               merged: dict[str, KeyRange]) -> Plan:
        """Rebind the template's paths to the new predicate ranges."""
        self.replays += 1
        template = self.plan
        return Plan(
            table_name=template.table_name, query=query, merged=merged,
            paths=[path.rebind(merged) for path in template.paths],
            estimated_cost=template.estimated_cost,
        )


class Planner:
    """Cost-based single-table planner over the catalog.

    Planning a query costs a few dozen microseconds of pure Python, which
    would dwarf a point probe if paid on every call — so chosen plans are
    cached per (table, predicate-column set) and replayed while the index
    set is unchanged (catalog version), the table has not grown or shrunk
    past 2x, the table has committed fewer than ``_MAX_EPOCH_DRIFT`` write
    epochs since the plan was priced, and the query's per-column
    selectivity stays in the same power-of-two bucket.  Any of those
    changing — or a cached plan hitting its replay bound (mechanism cost
    estimates improve as observed false-positive ratios accumulate) —
    replans from scratch.

    Single-column *point* requests additionally skip the per-call
    selectivity bucketing: every point on a column estimates to the same
    ~1/n selectivity, so the planner keeps a direct (table, column) →
    cache-slot pointer and replays the cached plan after only the cheap
    freshness checks.  Point probes are dispatch-dominated (the probe
    itself touches a handful of rows), which made the stats lookup +
    ``log2`` bucketing a measurable fraction of the whole query; the fast
    path exists to close that gap.

    Args:
        catalog: The catalog providing index entries and column statistics.
        pointer_scheme: Tuple-identifier scheme of the database — it sets the
            per-candidate downstream weight (resolution is free under
            physical pointers, a primary-index descent under logical ones).
        cost_model: Cost-model constants.
    """

    def __init__(self, catalog: Catalog,
                 pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
                 cost_model: CostModel = DEFAULT_COST_MODEL) -> None:
        self.catalog = catalog
        self.pointer_scheme = pointer_scheme
        self.cost_model = cost_model
        self._cache: dict[tuple, _CachedPlan] = {}
        # (table, column) -> generic cache key of the slot that last served a
        # point probe on that column.  The point fast path follows this
        # pointer into ``_cache`` directly, skipping the stats lookup and
        # selectivity bucketing; the slot itself (freshness checks, replay
        # bound, counters) is shared with the generic path, so the fast path
        # cannot outlive any invalidation signal.
        self._point_keys: dict[tuple[str, str], tuple] = {}
        self._hits = 0
        self._misses = 0
        self._replays = 0
        # Per-table splits of the counters above (same definitions), so a
        # multi-table workload can see which table's plans amortise.
        self._table_hits: dict[str, int] = {}
        self._table_misses: dict[str, int] = {}
        self._table_replays: dict[str, int] = {}

    def cache_info(self) -> PlannerCacheStats:
        """Snapshot of the cumulative plan-cache counters."""
        return PlannerCacheStats(hits=self._hits, misses=self._misses,
                                 replays=self._replays)

    def table_cache_info(self) -> dict[str, PlannerCacheStats]:
        """Per-table snapshot of the plan-cache counters.

        Tables appear once they have been planned for; the values sum to
        :meth:`cache_info` across tables.
        """
        tables = sorted(set(self._table_hits) | set(self._table_misses)
                        | set(self._table_replays))
        return {
            table: PlannerCacheStats(
                hits=self._table_hits.get(table, 0),
                misses=self._table_misses.get(table, 0),
                replays=self._table_replays.get(table, 0),
            )
            for table in tables
        }

    def cache_clear(self) -> None:
        """Drop every cached plan template and reset all counters.

        The next query on any table replans from scratch — the hook for
        tests and operators that changed something the freshness checks
        cannot see (e.g. swapping a cost model in place).
        """
        self._cache.clear()
        self._point_keys.clear()
        self._hits = self._misses = self._replays = 0
        self._table_hits.clear()
        self._table_misses.clear()
        self._table_replays.clear()

    def _is_fresh(self, cached: _CachedPlan, entry: TableEntry) -> bool:
        """Whether a cached plan may still be replayed against ``entry``.

        Fresh means: under its replay bound, chosen from the current index
        set, the table's live row count within 2x of the count it was priced
        at, and fewer than ``_MAX_EPOCH_DRIFT`` write epochs committed since.
        """
        row_count = entry.table.num_rows
        return (cached.replays < _MAX_PLAN_REPLAYS
                and cached.catalog_version == self.catalog.version
                and cached.row_count <= 2 * row_count
                and row_count <= 2 * cached.row_count
                and entry.data_epoch - cached.data_epoch <= _MAX_EPOCH_DRIFT)

    def plan(self, table_name: str, query: ConjunctiveQuery) -> Plan:
        """Choose the cheapest access-path combination for ``query``."""
        entry = self.catalog.table_entry(table_name)

        # Point fast path: single-column point probes replay straight off
        # the (table, column) pointer — no stats lookup, no log2 bucketing.
        # All points on a column share one slot even when their generic
        # bucket would differ (in- vs out-of-domain values): the plan shape
        # is identical either way and the executor's validation pass
        # enforces correctness, so collapsing them trades nothing.
        predicates = query.predicates
        is_point = len(predicates) == 1 and predicates[0].is_point
        if is_point:
            point_key = self._point_keys.get(
                (table_name, predicates[0].column))
            if point_key is not None:
                cached = self._cache.get(point_key)
                if cached is not None and self._is_fresh(cached, entry):
                    self._hits += 1
                    self._replays += 1
                    self._table_hits[table_name] = (
                        self._table_hits.get(table_name, 0) + 1)
                    self._table_replays[table_name] = (
                        self._table_replays.get(table_name, 0) + 1)
                    plan = cached.replay(
                        query,
                        {predicates[0].column: predicates[0].key_range},
                    )
                    plan.cache_stats = self.cache_info()
                    return plan

        merged = query.merged()
        if merged is None:
            return Plan(table_name=table_name, query=query, unsatisfiable=True)

        stats = {column: self.catalog.column_stats(table_name, column)
                 for column in merged}
        buckets = tuple(
            _selectivity_bucket(stats[column].selectivity(key_range))
            for column, key_range in merged.items()
        )
        # The bucket tuple is part of the key (not just a validity check):
        # a workload alternating shapes on the same columns — point probes
        # interleaved with ranges — must hit two cache slots, not evict one.
        cache_key = (table_name, tuple(merged), buckets)
        cached = self._cache.get(cache_key)
        if cached is not None and self._is_fresh(cached, entry):
            self._hits += 1
            self._replays += 1
            self._table_hits[table_name] = (
                self._table_hits.get(table_name, 0) + 1)
            self._table_replays[table_name] = (
                self._table_replays.get(table_name, 0) + 1)
            plan = cached.replay(query, merged)
            plan.cache_stats = self.cache_info()
            return plan

        self._misses += 1
        self._table_misses[table_name] = (
            self._table_misses.get(table_name, 0) + 1)
        plan = self._plan_fresh(table_name, entry, query, merged, stats)
        self._cache[cache_key] = _CachedPlan(
            plan=plan, catalog_version=self.catalog.version,
            row_count=entry.table.num_rows,
            data_epoch=entry.data_epoch,
        )
        if is_point:
            self._point_keys[(table_name, predicates[0].column)] = cache_key
        plan.cache_stats = self.cache_info()
        return plan

    def plan_many(self, table_name: str,
                  queries: "list[ConjunctiveQuery]") -> list[PlanGroup]:
        """Group a query batch by plan shape, planning once per group.

        Queries land in the same group — and share one plan template —
        when they agree on (predicate-column set, selectivity bucket per
        column); only each group's first query goes through :meth:`plan`
        (cache and counters included), every further member is a pure
        ``replays`` increment.  Group members also advance the cached
        plan's replay bound so mechanism-estimate feedback still forces a
        replan within a bounded number of *queries*, not batches.
        Unsatisfiable queries collapse into one no-path group.

        Grouping itself is batched: single-predicate queries — the
        ``query_many`` fast path — are bucketed per column with one
        vectorized selectivity pass instead of per-query stats lookups;
        only multi-predicate conjunctions walk the scalar route.
        """
        groups: dict[tuple, PlanGroup] = {}
        order: list[tuple] = []

        def member(key: tuple, query: ConjunctiveQuery, position: int,
                   merged: dict[str, KeyRange]) -> None:
            group = groups.get(key)
            if group is None:
                if key[0] == "__unsatisfiable__":
                    group = PlanGroup(plan=Plan(table_name=table_name,
                                                query=query,
                                                unsatisfiable=True))
                else:
                    group = PlanGroup(plan=self.plan(table_name, query))
                groups[key] = group
                order.append(key)
            elif key[0] != "__unsatisfiable__":
                # Unsatisfiable queries never had a plan template to reuse,
                # so they do not count as amortised planning work.
                self._replays += 1
                self._table_replays[table_name] = (
                    self._table_replays.get(table_name, 0) + 1)
                cached = self._cache.get((table_name,) + key)
                if cached is not None:
                    cached.replays += 1
            group.indices.append(position)
            group.merged_list.append(merged)

        single: dict[str, list[tuple[int, ConjunctiveQuery]]] = {}
        for position, query in enumerate(queries):
            if len(query.predicates) == 1:
                single.setdefault(query.predicates[0].column, []).append(
                    (position, query)
                )
                continue
            merged = query.merged()
            if merged is None:
                member(("__unsatisfiable__",), query, position, {})
                continue
            buckets = tuple(
                _selectivity_bucket(
                    self.catalog.column_stats(table_name, column)
                    .selectivity(key_range)
                )
                for column, key_range in merged.items()
            )
            member((tuple(merged), buckets), query, position, merged)

        for column, members in single.items():
            stats = self.catalog.column_stats(table_name, column)
            count = len(members)
            lows = np.fromiter(
                (query.predicates[0].low for _, query in members),
                dtype=np.float64, count=count)
            highs = np.fromiter(
                (query.predicates[0].high for _, query in members),
                dtype=np.float64, count=count)
            buckets = _selectivity_bucket_array(
                stats.selectivity_array(lows, highs)
            )
            columns = (column,)
            for (position, query), bucket in zip(members, buckets.tolist()):
                member((columns, (bucket,)), query, position, query.merged())
        return [groups[key] for key in order]

    def _plan_fresh(self, table_name: str, entry: TableEntry,
                    query: ConjunctiveQuery, merged: dict[str, KeyRange],
                    stats: dict) -> Plan:
        """Full cost-based planning (the cache-miss path)."""
        scan = self._scan_path(entry, merged, stats)
        best_per_column = self._best_single_column_paths(table_name, merged,
                                                         stats)
        self._fold_in_composite_paths(table_name, merged, stats,
                                      best_per_column)

        selected: list[AccessPath] = []
        for path in best_per_column.values():
            if path is not None and path not in selected:
                selected.append(path)
        row_count = entry.table.num_rows
        downstream = self.cost_model.downstream_per_candidate(
            self.pointer_scheme, row_count
        )
        if not selected:
            return self._scan_plan(table_name, query, merged, scan)

        driver = min(selected, key=lambda path: path.estimated_cost()
                     + downstream * path.estimated_candidates())
        driver_total = (driver.estimated_cost()
                        + downstream * driver.estimated_candidates())
        scan_total = (scan.estimated_cost()
                      + self.cost_model.validate_per_candidate
                      * scan.estimated_candidates())
        if driver_total >= scan_total:
            return self._scan_plan(table_name, query, merged, scan)

        # An extra path is worth executing only when probing it costs clearly
        # less than the downstream work it can strip from the driver's
        # candidates (the margin guards against estimate errors).
        budget = (self.cost_model.intersect_margin * downstream
                  * driver.estimated_candidates())
        extras = sorted(
            (path for path in selected
             if path is not driver and path.estimated_cost() < budget),
            key=lambda path: path.estimated_cost(),
        )
        paths = [driver] + extras
        total = sum(path.estimated_cost() for path in paths) + downstream * min(
            path.estimated_candidates() for path in paths
        )
        return Plan(table_name=table_name, query=query, merged=merged,
                    paths=paths, estimated_cost=total)

    # ---------------------------------------------------------------- private

    def _scan_path(self, entry: TableEntry, merged: dict[str, KeyRange],
                   stats: dict) -> FullScanPath:
        scan = FullScanPath(entry.table, merged, self.cost_model)
        matches = float(entry.table.num_rows)
        for column, key_range in merged.items():
            matches *= stats[column].selectivity(key_range)
        scan.bind_candidate_estimate(matches)
        return scan

    def _scan_plan(self, table_name: str, query: ConjunctiveQuery,
                   merged: dict[str, KeyRange], scan: FullScanPath) -> Plan:
        # A scan produces locations directly, so its candidates skip pointer
        # resolution and pay the validation touch only.
        total = (scan.estimated_cost()
                 + self.cost_model.validate_per_candidate
                 * scan.estimated_candidates())
        return Plan(table_name=table_name, query=query, merged=merged,
                    paths=[scan], estimated_cost=total)

    def _best_single_column_paths(self, table_name: str,
                                  merged: dict[str, KeyRange],
                                  stats: dict) -> dict[str, AccessPath | None]:
        """Cheapest mechanism path per predicate column (None = no index)."""
        best: dict[str, AccessPath | None] = {}
        for column, key_range in merged.items():
            paths = [
                MechanismPath(index_entry, key_range, stats[column],
                              self.cost_model)
                for index_entry in self.catalog.indexes_on_column(table_name,
                                                                  column)
                if index_entry.method is not IndexMethod.COMPOSITE
            ]
            best[column] = (min(paths, key=lambda path: path.estimated_cost())
                            if paths else None)
        return best

    def _fold_in_composite_paths(self, table_name: str,
                                 merged: dict[str, KeyRange], stats: dict,
                                 best: dict[str, AccessPath | None]) -> None:
        """Let composite indexes compete for pairs of predicate columns."""
        for index_entry in self.catalog.indexes_on(table_name):
            if index_entry.method is not IndexMethod.COMPOSITE:
                continue
            leading, second = index_entry.column, index_entry.second_column
            if leading not in merged or second not in merged:
                continue
            composite = CompositePath(
                index_entry, merged[leading], merged[second],
                stats[leading], stats[second], self.cost_model,
            )
            pair_cost = sum(
                best[column].estimated_cost() if best[column] is not None
                else float("inf")
                for column in (leading, second)
            )
            if composite.estimated_cost() < pair_cost:
                best[leading] = composite
                best[second] = composite
