"""Query execution helpers.

The heavy lifting happens inside the index mechanisms themselves (they each
implement ``lookup_range`` and return per-phase breakdowns); the executor's
job is to pick the right access path for a predicate — an index if one exists
on the predicate column, otherwise a full scan — and to normalise the result.
"""

from __future__ import annotations

import numpy as np

from repro.core.hermit import LookupBreakdown
from repro.engine.catalog import IndexEntry
from repro.engine.query import QueryResult, RangePredicate
from repro.storage.table import Table


def full_scan(table: Table, predicate: RangePredicate) -> QueryResult:
    """Answer a predicate by scanning the whole table (the no-index fallback)."""
    slots, values = table.project([predicate.column])
    mask = (values >= predicate.low) & (values <= predicate.high)
    locations = [int(slot) for slot in np.asarray(slots)[mask]]
    breakdown = LookupBreakdown(lookups=1, candidates=len(locations),
                                results=len(locations))
    return QueryResult(locations=sorted(locations), breakdown=breakdown,
                       used_index=None)


def execute_with_index(entry: IndexEntry, predicate: RangePredicate) -> QueryResult:
    """Execute a predicate through a catalogued index mechanism."""
    result = entry.mechanism.lookup_range(predicate.low, predicate.high)
    # Mechanisms return either an int64 array (vectorized path) or a list
    # (scalar reference path); normalise to a sorted list of Python ints.
    locations = np.sort(np.asarray(result.locations, dtype=np.int64)).tolist()
    return QueryResult(
        locations=locations,
        breakdown=result.breakdown,
        used_index=entry.name,
    )


def choose_index(entries: list[IndexEntry]) -> IndexEntry | None:
    """Pick the index used to serve a predicate.

    Preference order mirrors what a real optimizer would do given the paper's
    setting: a complete B+-tree first (it never produces false positives),
    then Hermit, then CM.
    """
    if not entries:
        return None
    priority = {"btree": 0, "hermit": 1, "correlation_map": 2}
    return min(entries, key=lambda e: priority.get(e.method.value, 99))
