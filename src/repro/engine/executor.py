"""Query execution: plan pipelines and the legacy single-predicate helpers.

The executor half of the planner subsystem runs a
:class:`~repro.engine.planner.Plan` with the array-native pipeline the
mechanisms already use internally: every access path returns one candidate
tid ndarray, the arrays are intersected with ``np.intersect1d``, pointer
resolution happens once on the intersection (batched primary-index probe
under logical pointers), and a single vectorized base-table validation pass
enforces *every* predicate of the query — including the ones no path was
executed for — and drops dead rows and mechanism false positives.

The pre-planner helpers (:func:`full_scan`, :func:`execute_with_index`,
:func:`choose_index`) are kept: the first two serve ``query_with`` and the
correctness tests' reference semantics, and :func:`choose_index` is the cost
model's default-statistics ranking in miniature.
"""

# repro: hot-module
# (repro.analysis REP004: no per-element Python loops over arrays here)

from __future__ import annotations

import time

import numpy as np

from repro.core.hermit import (
    LookupBreakdown,
    resolve_tids_array,
    resolve_tids_segmented,
)
from repro.engine.access_path import column_bounds
from repro.engine.catalog import IndexEntry, IndexMethod, TableEntry
from repro.engine.planner import Plan, PlannedQueryResult
from repro.engine.query import QueryResult, RangePredicate
from repro.index.base import Index, KeyRange
from repro.segments import (
    segmented_filter,
    segmented_intersect,
    segmented_sort,
    segmented_unique,
    split_segments,
)
from repro.storage.identifiers import PointerScheme
from repro.storage.table import Table


def execute_plan(plan: Plan, entry: TableEntry,
                 pointer_scheme: PointerScheme,
                 primary_index: Index | None = None) -> PlannedQueryResult:
    """Run a plan: execute paths, intersect, resolve once, validate once."""
    breakdown = LookupBreakdown(lookups=1)
    if plan.unsatisfiable or not plan.paths:
        return PlannedQueryResult(np.empty(0, dtype=np.int64), breakdown, plan)

    # Single-path plans (the overwhelmingly common case) never touch
    # np.intersect1d; multi-path plans intersect with assume_unique
    # whenever both operands come from paths that guarantee unique tids —
    # every current path does (see AccessPath.produces_unique_tids), which
    # skips intersect1d's internal per-operand np.unique sorts.
    tids = plan.paths[0].execute(breakdown)
    unique = plan.paths[0].produces_unique_tids
    for path in plan.paths[1:]:
        if tids.size == 0:
            break
        tids = np.intersect1d(tids, path.execute(breakdown),
                              assume_unique=unique
                              and path.produces_unique_tids)
        unique = True

    if plan.paths[0].produces_locations:
        # Full scans emit row locations that already satisfy every predicate
        # over live rows only — no pointer resolution, no re-validation; the
        # mask scan yields ascending unique slots, so the result needs no
        # final sort either.
        locations = np.asarray(tids, dtype=np.int64)
        breakdown.candidates += int(locations.size)
        breakdown.results += int(locations.size)
        _observe_lookup(plan, breakdown)
        return PlannedQueryResult(locations, breakdown, plan)

    locations = resolve_tids_array(np.asarray(tids), pointer_scheme,
                                   primary_index, breakdown)
    breakdown.candidates += int(locations.size)

    started = time.perf_counter()
    for column, key_range in plan.merged.items():
        if locations.size == 0:
            break
        locations = entry.table.filter_in_range(
            locations, column, key_range.low, key_range.high
        )
    breakdown.base_table_seconds += time.perf_counter() - started

    breakdown.results += int(locations.size)
    locations = locations.astype(np.int64, copy=False)
    if unique and pointer_scheme is PointerScheme.PHYSICAL:
        # Physical tids are the locations, so uniqueness survives
        # resolution and a plain sort replaces the np.unique dedup.
        locations = np.sort(locations)
    else:
        locations = np.unique(locations)
    _observe_lookup(plan, breakdown)
    return PlannedQueryResult(locations, breakdown, plan)


def execute_plan_many(plan: Plan, merged_list: list[dict[str, KeyRange]],
                      entry: TableEntry, pointer_scheme: PointerScheme,
                      primary_index: Index | None = None,
                      ) -> tuple[list[np.ndarray], LookupBreakdown]:
    """Run one plan template over a whole query batch in segmented passes.

    The batched counterpart of :func:`execute_plan` for a
    :class:`~repro.engine.planner.PlanGroup`: every per-query intermediate
    lives in one ``(values, offsets)`` segmented array (``repro.segments``),
    so a batch of B same-shape queries costs a constant number of
    Python-level array passes — one ``execute_many`` per path, one
    segmented intersection per extra path, one segmented pointer
    resolution, one segmented validation mask per predicate column and one
    final segmented sort — instead of B full pipelines.

    Returns the per-query location arrays (input order) plus the one
    breakdown accumulated across the batch.
    """
    breakdown = LookupBreakdown(lookups=len(merged_list))
    if plan.unsatisfiable or not plan.paths:
        empty = np.empty(0, dtype=np.int64)
        return [empty] * len(merged_list), breakdown

    tids, offsets = plan.paths[0].execute_many(merged_list, breakdown)
    unique = plan.paths[0].produces_unique_tids
    for path in plan.paths[1:]:
        if tids.size == 0:
            break
        other, other_offsets = path.execute_many(merged_list, breakdown)
        tids, offsets = segmented_intersect(
            tids, offsets, other, other_offsets,
            assume_unique=unique and path.produces_unique_tids,
        )
        unique = True

    if plan.paths[0].produces_locations:
        locations = tids.astype(np.int64, copy=False)
        breakdown.candidates += int(locations.size)
    else:
        locations, offsets = resolve_tids_segmented(
            tids, offsets, pointer_scheme, primary_index, breakdown
        )
        breakdown.candidates += int(locations.size)

        started = time.perf_counter()
        if locations.size:
            sizes = np.diff(offsets)
            mask: np.ndarray | None = None
            for column in plan.merged:
                lows, highs = column_bounds(merged_list, column)
                column_mask = entry.table.in_range_mask(
                    locations, column,
                    np.repeat(lows, sizes), np.repeat(highs, sizes),
                )
                mask = (column_mask if mask is None
                        else mask & column_mask)
            if mask is not None:
                locations, offsets = segmented_filter(locations, offsets,
                                                      mask)
        breakdown.base_table_seconds += time.perf_counter() - started

    breakdown.results += int(locations.size)
    locations = locations.astype(np.int64, copy=False)
    if unique and (plan.paths[0].produces_locations
                   or pointer_scheme is PointerScheme.PHYSICAL):
        locations, offsets = segmented_sort(locations, offsets)
    else:
        # Logical pointers: duplicate primary keys would survive resolution
        # as duplicate locations, so dedup exactly like the scalar path.
        locations, offsets = segmented_unique(locations, offsets)
    _observe_lookup(plan, breakdown)
    return split_segments(locations, offsets), breakdown


def _observe_lookup(plan: Plan, breakdown: LookupBreakdown) -> None:
    """Feed a single-mechanism plan's outcome back into the mechanism.

    Mechanisms keep a cumulative breakdown whose observed false-positive
    ratio drives their planner cost estimates (``estimate_candidates``);
    the legacy ``lookup_range`` path records it itself, so planned queries
    must too or the planner would price e.g. a leaky Hermit index at the
    default ratio forever.  Only unambiguous plans observe: exactly one
    mechanism path covering *every* predicate column — with a validate-only
    predicate in the plan, rows it rejects would otherwise be booked as the
    mechanism's false positives and corrupt the ratio.
    """
    if len(plan.paths) != 1:
        return
    path = plan.paths[0]
    if set(path.columns) != set(plan.merged):
        return
    entry = getattr(path, "entry", None)
    if entry is None:
        return
    cumulative = getattr(entry.mechanism, "cumulative", None)
    if cumulative is not None:
        cumulative.merge(breakdown)


def full_scan(table: Table, predicate: RangePredicate) -> QueryResult:
    """Answer a predicate by scanning the whole table (the no-index fallback)."""
    slots, values = table.project([predicate.column])
    mask = (values >= predicate.low) & (values <= predicate.high)
    locations = [int(slot) for slot in np.asarray(slots)[mask]]
    breakdown = LookupBreakdown(lookups=1, candidates=len(locations),
                                results=len(locations))
    return QueryResult(locations=sorted(locations), breakdown=breakdown,
                       used_index=None)


def execute_with_index(entry: IndexEntry, predicate: RangePredicate) -> QueryResult:
    """Execute a predicate through a catalogued index mechanism."""
    result = entry.mechanism.lookup_range(predicate.low, predicate.high)
    # Mechanisms return either an int64 array (vectorized path) or a list
    # (scalar reference path); normalise to a sorted list of Python ints.
    locations = np.sort(np.asarray(result.locations, dtype=np.int64)).tolist()
    return QueryResult(
        locations=locations,
        breakdown=result.breakdown,
        used_index=entry.name,
    )


# Default-statistics ranking of the mechanisms, cheapest first.  This is the
# cost model collapsed to the no-information case: a sorted-column probe is a
# zero-copy slice, a B+-tree is exact but pays Python-level leaf walks, and
# the correlation mechanisms add false positives on top (Hermit fewer than
# CM's bucket expansion).  An exact-column host index therefore always beats
# a Hermit mechanism for point lookups, fixing the old tie-breaking that
# ranked unknown methods arbitrarily.
_DEFAULT_METHOD_RANK = {
    IndexMethod.SORTED_COLUMN: 0,
    IndexMethod.BTREE: 1,
    IndexMethod.HERMIT: 2,
    IndexMethod.CORRELATION_MAP: 3,
}


def choose_index(entries: list[IndexEntry]) -> IndexEntry | None:
    """Pick the index used to serve a single-column predicate.

    This is the planner's default-statistics preference order (see
    ``_DEFAULT_METHOD_RANK``); the planner proper refines it with per-column
    statistics and per-mechanism candidate estimates.  Methods outside the
    ranking (e.g. COMPOSITE, which cannot serve a single predicate alone)
    are never chosen ahead of a ranked one.
    """
    ranked = [entry for entry in entries
              if entry.method in _DEFAULT_METHOD_RANK]
    if not ranked:
        return None
    return min(ranked, key=lambda entry: _DEFAULT_METHOD_RANK[entry.method])
