"""Query execution: plan pipelines and the legacy single-predicate helpers.

The executor half of the planner subsystem runs a
:class:`~repro.engine.planner.Plan` with the array-native pipeline the
mechanisms already use internally: every access path returns one candidate
tid ndarray, the arrays are intersected with ``np.intersect1d``, pointer
resolution happens once on the intersection (batched primary-index probe
under logical pointers), and a single vectorized base-table validation pass
enforces *every* predicate of the query — including the ones no path was
executed for — and drops dead rows and mechanism false positives.

The pre-planner helpers (:func:`full_scan`, :func:`execute_with_index`,
:func:`choose_index`) are kept: the first two serve ``query_with`` and the
correctness tests' reference semantics, and :func:`choose_index` is the cost
model's default-statistics ranking in miniature.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.hermit import LookupBreakdown, resolve_tids_array
from repro.engine.catalog import IndexEntry, IndexMethod, TableEntry
from repro.engine.planner import Plan, PlannedQueryResult
from repro.engine.query import QueryResult, RangePredicate
from repro.index.base import Index
from repro.storage.identifiers import PointerScheme
from repro.storage.table import Table


def execute_plan(plan: Plan, entry: TableEntry,
                 pointer_scheme: PointerScheme,
                 primary_index: Index | None = None) -> PlannedQueryResult:
    """Run a plan: execute paths, intersect, resolve once, validate once."""
    breakdown = LookupBreakdown(lookups=1)
    if plan.unsatisfiable or not plan.paths:
        return PlannedQueryResult(np.empty(0, dtype=np.int64), breakdown, plan)

    tids = plan.paths[0].execute(breakdown)
    for path in plan.paths[1:]:
        if tids.size == 0:
            break
        tids = np.intersect1d(tids, path.execute(breakdown))

    if plan.paths[0].produces_locations:
        # Full scans emit row locations that already satisfy every predicate
        # over live rows only — no pointer resolution, no re-validation.
        locations = np.asarray(tids, dtype=np.int64)
        breakdown.candidates += int(locations.size)
    else:
        locations = resolve_tids_array(np.asarray(tids), pointer_scheme,
                                       primary_index, breakdown)
        breakdown.candidates += int(locations.size)

        started = time.perf_counter()
        for column, key_range in plan.merged.items():
            if locations.size == 0:
                break
            locations = entry.table.filter_in_range(
                locations, column, key_range.low, key_range.high
            )
        breakdown.base_table_seconds += time.perf_counter() - started

    breakdown.results += int(locations.size)
    locations = np.unique(locations.astype(np.int64, copy=False))
    _observe_lookup(plan, breakdown)
    return PlannedQueryResult(locations, breakdown, plan)


def _observe_lookup(plan: Plan, breakdown: LookupBreakdown) -> None:
    """Feed a single-mechanism plan's outcome back into the mechanism.

    Mechanisms keep a cumulative breakdown whose observed false-positive
    ratio drives their planner cost estimates (``estimate_candidates``);
    the legacy ``lookup_range`` path records it itself, so planned queries
    must too or the planner would price e.g. a leaky Hermit index at the
    default ratio forever.  Only unambiguous plans observe: exactly one
    mechanism path covering *every* predicate column — with a validate-only
    predicate in the plan, rows it rejects would otherwise be booked as the
    mechanism's false positives and corrupt the ratio.
    """
    if len(plan.paths) != 1:
        return
    path = plan.paths[0]
    if set(path.columns) != set(plan.merged):
        return
    entry = getattr(path, "entry", None)
    if entry is None:
        return
    cumulative = getattr(entry.mechanism, "cumulative", None)
    if cumulative is not None:
        cumulative.merge(breakdown)


def full_scan(table: Table, predicate: RangePredicate) -> QueryResult:
    """Answer a predicate by scanning the whole table (the no-index fallback)."""
    slots, values = table.project([predicate.column])
    mask = (values >= predicate.low) & (values <= predicate.high)
    locations = [int(slot) for slot in np.asarray(slots)[mask]]
    breakdown = LookupBreakdown(lookups=1, candidates=len(locations),
                                results=len(locations))
    return QueryResult(locations=sorted(locations), breakdown=breakdown,
                       used_index=None)


def execute_with_index(entry: IndexEntry, predicate: RangePredicate) -> QueryResult:
    """Execute a predicate through a catalogued index mechanism."""
    result = entry.mechanism.lookup_range(predicate.low, predicate.high)
    # Mechanisms return either an int64 array (vectorized path) or a list
    # (scalar reference path); normalise to a sorted list of Python ints.
    locations = np.sort(np.asarray(result.locations, dtype=np.int64)).tolist()
    return QueryResult(
        locations=locations,
        breakdown=result.breakdown,
        used_index=entry.name,
    )


# Default-statistics ranking of the mechanisms, cheapest first.  This is the
# cost model collapsed to the no-information case: a sorted-column probe is a
# zero-copy slice, a B+-tree is exact but pays Python-level leaf walks, and
# the correlation mechanisms add false positives on top (Hermit fewer than
# CM's bucket expansion).  An exact-column host index therefore always beats
# a Hermit mechanism for point lookups, fixing the old tie-breaking that
# ranked unknown methods arbitrarily.
_DEFAULT_METHOD_RANK = {
    IndexMethod.SORTED_COLUMN: 0,
    IndexMethod.BTREE: 1,
    IndexMethod.HERMIT: 2,
    IndexMethod.CORRELATION_MAP: 3,
}


def choose_index(entries: list[IndexEntry]) -> IndexEntry | None:
    """Pick the index used to serve a single-column predicate.

    This is the planner's default-statistics preference order (see
    ``_DEFAULT_METHOD_RANK``); the planner proper refines it with per-column
    statistics and per-mechanism candidate estimates.  Methods outside the
    ranking (e.g. COMPOSITE, which cannot serve a single predicate alone)
    are never chosen ahead of a ranked one.
    """
    ranked = [entry for entry in entries
              if entry.method in _DEFAULT_METHOD_RANK]
    if not ranked:
        return None
    return min(ranked, key=lambda entry: _DEFAULT_METHOD_RANK[entry.method])
