"""The in-memory RDBMS substrate: catalog, query model, executor, facade."""

from repro.engine.catalog import Catalog, IndexEntry, IndexMethod, TableEntry
from repro.engine.database import Database
from repro.engine.executor import choose_index, execute_with_index, full_scan
from repro.engine.query import QueryResult, RangePredicate, point_predicate

__all__ = [
    "Catalog",
    "Database",
    "IndexEntry",
    "IndexMethod",
    "QueryResult",
    "RangePredicate",
    "TableEntry",
    "choose_index",
    "execute_with_index",
    "full_scan",
    "point_predicate",
]
