"""The in-memory RDBMS substrate: catalog, query model, planner, executor."""

from repro.engine.access_path import (
    DEFAULT_COST_MODEL,
    AccessPath,
    CompositePath,
    CostModel,
    FullScanPath,
    MechanismPath,
)
from repro.engine.catalog import (
    Catalog,
    ColumnStats,
    IndexEntry,
    IndexMethod,
    TableEntry,
)
from repro.engine.database import Database
from repro.engine.executor import (
    choose_index,
    execute_plan,
    execute_with_index,
    full_scan,
)
from repro.engine.planner import Plan, PlannedQueryResult, Planner
from repro.engine.query import (
    ConjunctiveQuery,
    QueryResult,
    RangePredicate,
    conjunction,
    point_predicate,
)

__all__ = [
    "AccessPath",
    "Catalog",
    "ColumnStats",
    "CompositePath",
    "ConjunctiveQuery",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Database",
    "FullScanPath",
    "IndexEntry",
    "IndexMethod",
    "MechanismPath",
    "Plan",
    "PlannedQueryResult",
    "Planner",
    "QueryResult",
    "RangePredicate",
    "TableEntry",
    "choose_index",
    "conjunction",
    "execute_plan",
    "execute_with_index",
    "full_scan",
    "point_predicate",
]
