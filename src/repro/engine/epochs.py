"""Mutation epochs: the engine's reader-writer protocol.

Until the serving layer existed the engine was single-threaded by
assumption — nothing stopped a mutation from interleaving with a read
half-way through index maintenance, because nothing ever did.  The serving
front end (``repro.serving``) breaks that assumption: coalesced read
batches execute on worker threads while writers keep calling
``insert_many`` / ``update`` / ``delete``.  :class:`EpochManager` makes the
assumption explicit instead of implicit:

* **Reads share, writes exclude.**  Any number of reads may run
  concurrently; a write waits for in-flight reads to drain and blocks new
  ones until it commits.  A read therefore always observes the engine
  *between* mutations — never a half-applied one (the "torn read" a
  concurrent insert could otherwise produce while the table is updated but
  a secondary index is not yet).
* **Every committed write is one epoch.**  The manager keeps a monotonic
  counter bumped when the outermost write releases.  Reads are handed the
  epoch they executed under, so results can be ordered against mutations,
  and the epoch feeds the catalog's statistics cache and the planner's
  plan-cache invalidation (a cached plan is replanned after a bounded
  number of write epochs, so mutation-driven statistics drift cannot go
  unnoticed forever).
* **Writer preference.**  New readers queue behind a waiting writer so a
  steady read load cannot starve mutations — the serving benchmark's
  open-loop read stream would otherwise lock writers out indefinitely.
* **Reentrant per thread.**  ``Database.query`` calls
  ``query_conjunctive`` internally and the writer occasionally reads its
  own tables mid-mutation; both sides count per-thread depth so nested
  acquisitions are free.  The one illegal move is upgrading — asking for
  the write side while holding the read side — which would deadlock
  against the thread's own read and raises
  :class:`~repro.errors.ConcurrencyError` instead.

The locking is deliberately coarse (one manager per database, not per
table): under the GIL the engine's array passes serialise anyway, so the
win of finer locks would be noise while the risk — lock-order deadlocks
between table and catalog mutations — is real.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ConcurrencyError


class EpochManager:
    """Reentrant reader-writer lock with a monotonic write-epoch counter.

    Attributes:
        current: The number of committed write epochs so far.  Reading it
            without holding either side is intentionally allowed — it is a
            single int assignment away from consistent, and every consumer
            that needs exactness (the planner's freshness check, a read's
            reported epoch) reads it under the lock via :meth:`read` /
            :meth:`write`.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._waiting_writers = 0
        self._writer: int | None = None
        self._writer_depth = 0
        self._epoch = 0
        self._local = threading.local()

    @property
    def current(self) -> int:
        """Number of committed write epochs."""
        return self._epoch

    def _read_depth(self) -> int:
        return getattr(self._local, "read_depth", 0)

    @contextmanager
    def read(self) -> Iterator[int]:
        """Acquire the shared side; yields the epoch the read executes under.

        Reentrant: nested reads on the same thread, and reads inside the
        thread's own write, are free.  A fresh read queues behind any
        active or waiting writer (writer preference).
        """
        me = threading.get_ident()
        depth = self._read_depth()
        with self._cond:
            if depth == 0 and self._writer != me:
                while self._writer is not None or self._waiting_writers:
                    self._cond.wait()
                self._active_readers += 1
            self._local.read_depth = depth + 1
            epoch = self._epoch
        try:
            yield epoch
        finally:
            with self._cond:
                self._local.read_depth = depth
                if depth == 0 and self._writer != me:
                    self._active_readers -= 1
                    if self._active_readers == 0:
                        self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[int]:
        """Acquire the exclusive side; yields the epoch this write commits as.

        Reentrant on the same thread; only the outermost release bumps the
        epoch (one logical mutation = one epoch).  Raises
        :class:`~repro.errors.ConcurrencyError` when the calling thread
        holds the read side — the upgrade would deadlock against itself.
        """
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
            else:
                if self._read_depth():
                    raise ConcurrencyError(
                        "cannot acquire the write side while holding the "
                        "read side (read-to-write upgrade would deadlock)"
                    )
                self._waiting_writers += 1
                try:
                    while self._writer is not None or self._active_readers:
                        self._cond.wait()
                finally:
                    self._waiting_writers -= 1
                self._writer = me
                self._writer_depth = 1
            epoch = self._epoch + 1
        try:
            yield epoch
        finally:
            with self._cond:
                self._writer_depth -= 1
                if self._writer_depth == 0:
                    self._writer = None
                    self._epoch += 1
                    self._cond.notify_all()
