"""Mutation epochs: the engine's reader-writer protocol.

Until the serving layer existed the engine was single-threaded by
assumption — nothing stopped a mutation from interleaving with a read
half-way through index maintenance, because nothing ever did.  The serving
front end (``repro.serving``) breaks that assumption: coalesced read
batches execute on worker threads while writers keep calling
``insert_many`` / ``update`` / ``delete``.  :class:`EpochManager` makes the
assumption explicit instead of implicit:

* **Reads share, writes exclude.**  Any number of reads may run
  concurrently; a write waits for in-flight reads to drain and blocks new
  ones until it commits.  A read therefore always observes the engine
  *between* mutations — never a half-applied one (the "torn read" a
  concurrent insert could otherwise produce while the table is updated but
  a secondary index is not yet).
* **Every committed write is one epoch.**  The manager keeps a monotonic
  counter bumped when the outermost write releases.  Reads are handed the
  epoch they executed under, so results can be ordered against mutations,
  and the epoch feeds the catalog's statistics cache and the planner's
  plan-cache invalidation (a cached plan is replanned after a bounded
  number of write epochs, so mutation-driven statistics drift cannot go
  unnoticed forever).
* **Writer preference.**  New readers queue behind a waiting writer so a
  steady read load cannot starve mutations — the serving benchmark's
  open-loop read stream would otherwise lock writers out indefinitely.
* **Reentrant per thread.**  ``Database.query`` calls
  ``query_conjunctive`` internally and the writer occasionally reads its
  own tables mid-mutation; both sides count per-thread depth so nested
  acquisitions are free.  The one illegal move is upgrading — asking for
  the write side while holding the read side — which would deadlock
  against the thread's own read and raises
  :class:`~repro.errors.ConcurrencyError` instead.

The locking is deliberately coarse (one manager per database, not per
table): under the GIL the engine's array passes serialise anyway, so the
win of finer locks would be noise while the risk — lock-order deadlocks
between table and catalog mutations — is real.
"""

from __future__ import annotations

import itertools
import threading
import traceback
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ConcurrencyError, EpochDisciplineError

# Managers (in acquisition order) the current thread holds a side of.
# Module-level because lock-order inversions are by definition a property
# of *several* managers; maintained only in debug mode.
_held = threading.local()


def _held_managers() -> "list[EpochManager]":
    managers = getattr(_held, "managers", None)
    if managers is None:
        managers = []
        _held.managers = managers
    return managers


def _acquisition_stack() -> str:
    """The caller's stack, trimmed of the checker's own frames."""
    return "".join(traceback.format_stack()[:-3]).rstrip()


class EpochManager:
    """Reentrant reader-writer lock with a monotonic write-epoch counter.

    Args:
        debug: Switch on the epoch-lock discipline checker.  In debug mode
            the manager records the acquisition stack of every outermost
            read/write, :meth:`note_mutation` raises
            :class:`~repro.errors.EpochDisciplineError` on mutations
            reachable from the shared side (or from no side at all),
            upgrade attempts report the stack that took the read side, and
            outermost acquisitions are checked for lock-order inversions
            against every other debug manager the thread already holds.
            Costs a few dict operations per outermost acquisition; the
            default (``False``) stays on the lean path.
        name: Optional label used in discipline reports; defaults to a
            per-process sequence number.

    Attributes:
        current: The number of committed write epochs so far.  Reading it
            without holding either side is intentionally allowed — it is a
            single int assignment away from consistent, and every consumer
            that needs exactness (the planner's freshness check, a read's
            reported epoch) reads it under the lock via :meth:`read` /
            :meth:`write`.
    """

    _sequence = itertools.count(1)
    # Directed acquired-before edges between debug managers, shared
    # process-wide: (id(first), id(second)) -> human-readable evidence.
    _order_lock = threading.Lock()
    _order_edges: "dict[tuple[int, int], str]" = {}

    def __init__(self, debug: bool = False, name: str | None = None) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._waiting_writers = 0
        self._writer: int | None = None
        self._writer_depth = 0
        self._epoch = 0
        self._local = threading.local()
        self._debug = debug
        self.name = name or f"epochs-{next(self._sequence)}"

    @property
    def debug(self) -> bool:
        """Whether the discipline checker is on."""
        return self._debug

    @property
    def current(self) -> int:
        """Number of committed write epochs."""
        return self._epoch

    def _read_depth(self) -> int:
        return getattr(self._local, "read_depth", 0)

    @contextmanager
    def read(self) -> Iterator[int]:
        """Acquire the shared side; yields the epoch the read executes under.

        Reentrant: nested reads on the same thread, and reads inside the
        thread's own write, are free.  A fresh read queues behind any
        active or waiting writer (writer preference).
        """
        me = threading.get_ident()
        depth = self._read_depth()
        fresh = depth == 0 and self._writer != me
        if self._debug and fresh:
            self._debug_check_order()
        with self._cond:
            if fresh:
                while self._writer is not None or self._waiting_writers:
                    self._cond.wait()
                self._active_readers += 1
            self._local.read_depth = depth + 1
            epoch = self._epoch
        if self._debug and fresh:
            self._debug_acquired("read")
        try:
            yield epoch
        finally:
            if self._debug and fresh:
                self._debug_released()
            with self._cond:
                self._local.read_depth = depth
                if fresh:
                    self._active_readers -= 1
                    if self._active_readers == 0:
                        self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[int]:
        """Acquire the exclusive side; yields the epoch this write commits as.

        Reentrant on the same thread; only the outermost release bumps the
        epoch (one logical mutation = one epoch).  Raises
        :class:`~repro.errors.ConcurrencyError` when the calling thread
        holds the read side — the upgrade would deadlock against itself.
        """
        me = threading.get_ident()
        fresh = False
        if self._writer != me:
            if self._read_depth():
                message = ("cannot acquire the write side while holding "
                           "the read side (read-to-write upgrade would "
                           "deadlock)")
                if self._debug:
                    held_at = getattr(self._local, "read_stack",
                                      "<stack not recorded>")
                    raise EpochDisciplineError(
                        f"[{self.name}] {message}\n"
                        f"read side acquired at:\n{held_at}"
                    )
                raise ConcurrencyError(message)
            fresh = True
            if self._debug:
                self._debug_check_order()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
            else:
                self._waiting_writers += 1
                try:
                    while self._writer is not None or self._active_readers:
                        self._cond.wait()
                finally:
                    self._waiting_writers -= 1
                self._writer = me
                self._writer_depth = 1
            epoch = self._epoch + 1
        if self._debug and fresh:
            self._debug_acquired("write")
        try:
            yield epoch
        finally:
            if self._debug and fresh:
                self._debug_released()
            with self._cond:
                self._writer_depth -= 1
                if self._writer_depth == 0:
                    self._writer = None
                    self._epoch += 1
                    self._cond.notify_all()

    # --------------------------------------------- discipline checker (debug)

    def note_mutation(self, label: str) -> None:
        """Assert the calling thread may mutate engine state *right now*.

        The engine's mutation points (the catalog's ``epoch_guard`` hook,
        wired by ``Database``) call this with a short label.  A no-op
        unless the manager is in debug mode; in debug mode it raises
        :class:`~repro.errors.EpochDisciplineError` when the thread holds
        the shared side but not the exclusive side (a shared-side write —
        concurrent readers may be observing the half-applied mutation) or
        holds nothing at all (an unlocked mutation).
        """
        if not self._debug:
            return
        if self._writer == threading.get_ident():
            return
        if self._read_depth():
            held_at = getattr(self._local, "read_stack",
                              "<stack not recorded>")
            raise EpochDisciplineError(
                f"[{self.name}] mutation {label!r} under the shared (read) "
                f"side — concurrent readers may observe it half-applied\n"
                f"read side acquired at:\n{held_at}"
            )
        raise EpochDisciplineError(
            f"[{self.name}] mutation {label!r} without holding the write "
            f"side of the epoch protocol"
        )

    def _debug_check_order(self) -> None:
        """Record acquired-before edges; raise on an inversion.

        Called before an outermost acquisition while already holding other
        debug managers.  Two managers taken in both orders by different
        code paths is a deadlock waiting for the right interleaving, so
        the *potential* is reported even when this particular run would
        have survived.
        """
        holding = _held_managers()
        if not holding:
            return
        with EpochManager._order_lock:
            for other in holding:
                if other is self:
                    continue
                reverse = (id(self), id(other))
                if reverse in EpochManager._order_edges:
                    raise EpochDisciplineError(
                        f"lock-order inversion: acquiring [{self.name}] "
                        f"while holding [{other.name}], but the opposite "
                        f"order was taken at:\n"
                        f"{EpochManager._order_edges[reverse]}"
                    )
                edge = (id(other), id(self))
                if edge not in EpochManager._order_edges:
                    EpochManager._order_edges[edge] = (
                        f"[{other.name}] then [{self.name}] via:\n"
                        + _acquisition_stack()
                    )

    def _debug_acquired(self, side: str) -> None:
        stack = _acquisition_stack()
        if side == "read":
            self._local.read_stack = stack
        else:
            self._local.write_stack = stack
        _held_managers().append(self)

    def _debug_released(self) -> None:
        managers = _held_managers()
        for position in range(len(managers) - 1, -1, -1):
            if managers[position] is self:
                del managers[position]
                break

    @classmethod
    def reset_order_tracking(cls) -> None:
        """Forget recorded acquired-before edges (test isolation)."""
        with cls._order_lock:
            cls._order_edges.clear()
