"""Query predicates, requests and results.

The query model covers what the evaluation and the planner need: single-column
point and range predicates, and their conjunction over several columns (the
multi-column case of Section 3).  A :class:`ConjunctiveQuery` is what the
planner consumes; :meth:`ConjunctiveQuery.merged` normalises it to at most one
:class:`~repro.index.base.KeyRange` per column so duplicate predicates on the
same column collapse (and contradictory ones mark the query unsatisfiable).

On top of the predicates sit the engine's *transport* objects:
:class:`QueryRequest` is the one client-facing request shape — point, range
and conjunctive queries unified, each naming its table — consumed by
``Database.execute`` / ``Database.execute_many`` and by the serving front end
(``repro.serving``); :class:`QueryResult` is the matching result shape every
``Database.query*`` wrapper and the server hand back.  New front ends are
meant to be prototyped against these two objects without touching the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.hermit import LookupBreakdown
from repro.errors import QueryError
from repro.index.base import KeyRange


@dataclass(frozen=True)
class RangePredicate:
    """``low <= column <= high``."""

    column: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise QueryError(
                f"range predicate on {self.column!r} has low > high"
            )

    @property
    def key_range(self) -> KeyRange:
        """The predicate as a :class:`KeyRange`."""
        return KeyRange(self.low, self.high)

    @property
    def is_point(self) -> bool:
        """Whether this predicate matches a single value."""
        return self.low == self.high

    def matches(self, value: float) -> bool:
        """Whether ``value`` satisfies the predicate."""
        return self.low <= value <= self.high


def point_predicate(column: str, value: float) -> RangePredicate:
    """Convenience constructor for ``column == value``."""
    return RangePredicate(column, value, value)


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunction (AND) of range predicates, the planner's input.

    Attributes:
        predicates: The conjuncts, in the order the caller supplied them.
            Several predicates may name the same column; :meth:`merged`
            intersects them.
    """

    predicates: tuple[RangePredicate, ...]

    def __init__(self, predicates: Iterable[RangePredicate]) -> None:
        conjuncts = tuple(predicates)
        if not conjuncts:
            raise QueryError("a conjunctive query needs at least one predicate")
        for predicate in conjuncts:
            if not isinstance(predicate, RangePredicate):
                raise QueryError(
                    f"conjuncts must be RangePredicate, got {predicate!r}"
                )
        object.__setattr__(self, "predicates", conjuncts)

    def __iter__(self) -> Iterator[RangePredicate]:
        return iter(self.predicates)

    def __len__(self) -> int:
        return len(self.predicates)

    @property
    def columns(self) -> list[str]:
        """Distinct predicate columns, in first-appearance order."""
        seen: dict[str, None] = {}
        for predicate in self.predicates:
            seen.setdefault(predicate.column, None)
        return list(seen)

    def merged(self) -> dict[str, KeyRange] | None:
        """One intersected :class:`KeyRange` per column, or ``None``.

        ``None`` means the conjunction is unsatisfiable: two predicates on
        the same column have disjoint ranges, so no row can match.
        """
        if len(self.predicates) == 1:
            predicate = self.predicates[0]
            return {predicate.column: predicate.key_range}
        ranges: dict[str, KeyRange] = {}
        for predicate in self.predicates:
            key_range = predicate.key_range
            existing = ranges.get(predicate.column)
            if existing is not None:
                intersection = existing.intersect(key_range)
                if intersection is None:
                    return None
                ranges[predicate.column] = intersection
            else:
                ranges[predicate.column] = key_range
        return ranges


def conjunction(*predicates: RangePredicate) -> ConjunctiveQuery:
    """Convenience constructor: ``conjunction(p1, p2, ...)``."""
    return ConjunctiveQuery(predicates)


@dataclass(frozen=True)
class QueryRequest:
    """One client-facing read request: a table plus a conjunctive query.

    The unified request object of the engine's API redesign: point probes,
    range queries and multi-column conjunctions are all the same shape (a
    point is a range with ``low == high``; a single predicate is a
    conjunction of one).  ``Database.execute`` answers one,
    ``Database.execute_many`` answers a batch — grouping by table and plan
    shape internally — and the serving front end coalesces concurrently
    arriving requests into exactly those batches.

    Attributes:
        table: Name of the table the request reads.
        query: The conjunctive predicate set.
    """

    table: str
    query: ConjunctiveQuery

    @classmethod
    def point(cls, table: str, column: str, value: float) -> "QueryRequest":
        """``column == value`` on ``table``."""
        return cls(table, ConjunctiveQuery([point_predicate(column, value)]))

    @classmethod
    def range(cls, table: str, column: str, low: float,
              high: float) -> "QueryRequest":
        """``low <= column <= high`` on ``table``."""
        return cls(table, ConjunctiveQuery([RangePredicate(column, low, high)]))

    @classmethod
    def conjunctive(cls, table: str,
                    predicates: Iterable[RangePredicate]) -> "QueryRequest":
        """A conjunction of range predicates on ``table``."""
        return cls(table, ConjunctiveQuery(predicates))

    @classmethod
    def of(cls, table: str,
           query: "ConjunctiveQuery | Iterable[RangePredicate] | RangePredicate",
           ) -> "QueryRequest":
        """Coerce any accepted query shape into a request on ``table``."""
        if isinstance(query, ConjunctiveQuery):
            return cls(table, query)
        if isinstance(query, RangePredicate):
            return cls(table, ConjunctiveQuery([query]))
        return cls(table, ConjunctiveQuery(query))

    @property
    def predicates(self) -> tuple[RangePredicate, ...]:
        """The request's conjuncts."""
        return self.query.predicates

    @property
    def is_point(self) -> bool:
        """Whether the request is a single-column point probe."""
        predicates = self.query.predicates
        return len(predicates) == 1 and predicates[0].is_point


@dataclass
class QueryResult:
    """Result of executing one query through the engine.

    The unified result shape shared by every ``Database.query*`` wrapper,
    ``Database.execute`` / ``execute_many`` and the serving front end — a
    transport-friendly object (plain-list locations) that still carries the
    planner's explanation for callers that want it.

    Attributes:
        locations: Row locations of the matching tuples (sorted ascending).
        breakdown: Per-phase time breakdown accumulated by the mechanism that
            served the query (empty for full scans).  Requests answered by
            one coalesced batch share the batch's accumulated breakdown.
        used_index: Name of the index that served the query, or ``None`` when
            the engine fell back to a full table scan.
        plan: The plan that produced the result (``None`` for pre-planner
            helpers such as ``full_scan``).
        group_size: Number of queries that shared this result's plan template
            in one batched execution (1 for the per-query API).
        epoch: Write epoch the read executed under (``None`` for pre-planner
            helpers) — two results with the same epoch observed the same
            committed database state.
    """

    locations: list[int] = field(default_factory=list)
    breakdown: LookupBreakdown = field(default_factory=LookupBreakdown)
    used_index: str | None = None
    plan: object | None = None
    group_size: int = 1
    epoch: int | None = None

    def __len__(self) -> int:
        return len(self.locations)

    @classmethod
    def from_planned(cls, planned, epoch: int | None = None) -> "QueryResult":
        """Convert a planner result to the transport shape.

        Shared by ``Database.query`` and ``Database.query_many`` so the
        scalar and batched entry points cannot drift: the planner's sorted
        int64 location array becomes a plain list and the driver path's
        index name is surfaced as ``used_index``.
        """
        return cls(locations=planned.locations.tolist(),
                   breakdown=planned.breakdown,
                   used_index=planned.plan.used_index,
                   plan=planned.plan,
                   group_size=planned.group_size,
                   epoch=planned.epoch if epoch is None else epoch)
