"""Query predicates and results.

The evaluation only ever needs single-column point and range predicates plus
their conjunction with a leading column (the multi-column case of Section 3),
so the query model is deliberately small.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hermit import LookupBreakdown
from repro.errors import QueryError
from repro.index.base import KeyRange


@dataclass(frozen=True)
class RangePredicate:
    """``low <= column <= high``."""

    column: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise QueryError(
                f"range predicate on {self.column!r} has low > high"
            )

    @property
    def key_range(self) -> KeyRange:
        """The predicate as a :class:`KeyRange`."""
        return KeyRange(self.low, self.high)

    @property
    def is_point(self) -> bool:
        """Whether this predicate matches a single value."""
        return self.low == self.high

    def matches(self, value: float) -> bool:
        """Whether ``value`` satisfies the predicate."""
        return self.low <= value <= self.high


def point_predicate(column: str, value: float) -> RangePredicate:
    """Convenience constructor for ``column == value``."""
    return RangePredicate(column, value, value)


@dataclass
class QueryResult:
    """Result of executing one query through the engine.

    Attributes:
        locations: Row locations of the matching tuples (sorted ascending).
        breakdown: Per-phase time breakdown accumulated by the mechanism that
            served the query (empty for full scans).
        used_index: Name of the index that served the query, or ``None`` when
            the engine fell back to a full table scan.
    """

    locations: list[int] = field(default_factory=list)
    breakdown: LookupBreakdown = field(default_factory=LookupBreakdown)
    used_index: str | None = None

    def __len__(self) -> int:
        return len(self.locations)
