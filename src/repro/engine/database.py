"""The database facade.

``Database`` glues the substrates together the way the paper's host RDBMS
does: tables with primary indexes, conventional B+-tree secondary indexes,
and — when a usable correlation exists — Hermit indexes that piggyback on a
host index instead of storing every key.  It is the public API the examples
and benchmarks are written against.

Typical usage::

    db = Database(pointer_scheme=PointerScheme.PHYSICAL)
    table = db.create_table(schema)
    db.insert_many("stock_history", columns)
    db.create_index("idx_dj", "stock_history", "dj")            # complete B+-tree
    db.create_index("idx_sp", "stock_history", "sp",
                    method=IndexMethod.AUTO)                     # becomes a Hermit index
    result = db.query("stock_history", RangePredicate("sp", 900, 950))
    planned = db.query_conjunctive("stock_history", [
        RangePredicate("sp", 900, 950), RangePredicate("dj", 8_000, 9_000),
    ])                                # cost-based plan, array-native result

Reads route through the cost-based planner (``engine/planner.py``): the
catalog's per-column statistics pick the cheapest access path per
predicate, candidate tid sets are intersected vectorized, and one batched
base-table pass validates every predicate.  ``explain()`` returns the plan
without executing it.

The canonical read entry points are :meth:`Database.execute` (one
:class:`~repro.engine.query.QueryRequest` in, one
:class:`~repro.engine.query.QueryResult` out) and
:meth:`Database.execute_many` (a request batch, grouped by table and plan
shape internally).  ``query`` / ``query_many`` / ``query_conjunctive`` /
``query_conjunctive_many`` are thin wrappers kept for their ergonomic
signatures.  Every read runs under the shared side of the database's
:class:`~repro.engine.epochs.EpochManager` and every mutation under the
exclusive side, so concurrent front ends (``repro.serving``) get
epoch-consistent results — a read never observes a half-applied mutation.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict
from typing import Sequence

import numpy as np

from repro.baselines.correlation_maps import CorrelationMap
from repro.baselines.secondary import BaselineSecondaryIndex
from repro.cache.result_cache import (
    ResultCache,
    ResultCacheConfig,
    ResultCacheStats,
    canonical_key,
)
from repro.core.hermit import LookupBreakdown
from repro.core.config import DEFAULT_CONFIG, TRSTreeConfig
from repro.core.hermit import HermitIndex
from repro.correlation.advisor import HostColumnAdvisor
from repro.engine.access_path import DEFAULT_COST_MODEL, CostModel
from repro.engine.catalog import (
    HOST_METHODS,
    Catalog,
    IndexEntry,
    IndexMethod,
    TableEntry,
)
from repro.engine.executor import (
    execute_plan,
    execute_plan_many,
    execute_with_index,
)
from repro.durability.config import DurabilityConfig, DurabilityStats
from repro.durability.manager import DurabilityManager
from repro.engine.epochs import EpochManager
from repro.engine.planner import (
    Plan,
    PlannedQueryResult,
    Planner,
    PlannerCacheStats,
)
from repro.engine.query import (
    ConjunctiveQuery,
    QueryRequest,
    QueryResult,
    RangePredicate,
)
from repro.errors import CatalogError, DurabilityError, QueryError
from repro.index.bptree import BPlusTree
from repro.index.composite import CompositeSecondaryIndex
from repro.index.sorted_column import SortedColumnIndex
from repro.storage.identifiers import PointerScheme
from repro.storage.memory import DEFAULT_SIZE_MODEL, MemoryReport, SizeModel
from repro.storage.schema import DataType, TableSchema
from repro.storage.table import Table


class Database:
    """An in-memory RDBMS substrate hosting Hermit and its baselines.

    Args:
        pointer_scheme: Tuple-identifier scheme used by all secondary indexes.
        trs_config: Default TRS-Tree parameters for Hermit indexes.
        size_model: Analytic memory model shared by every structure.
        advisor: Host-column advisor consulted by ``IndexMethod.AUTO``.
        cost_model: Cost-model constants driving the query planner.
        durability: When given, every DDL/DML operation is write-ahead
            logged to ``durability.directory`` before it is applied, and
            :meth:`checkpoint` / auto-checkpointing become available.  The
            directory must be empty of prior state — use
            :func:`repro.durability.recovery.recover` to reopen one.  The
            default (``None``) keeps the engine purely in memory at zero
            added cost.
        result_cache: When given, an epoch-keyed result cache
            (``repro.cache``) with this memory budget serves repeated
            queries from their stored post-validation location arrays:
            ``execute`` / ``execute_many`` probe it under the shared epoch
            side before planning, fill it on miss, and entries whose
            stamped ``data_epoch`` fell behind the table's are evicted on
            probe (plus a sweep on :meth:`checkpoint`).  The default
            (``None``) keeps the read path exactly as before — opt-in
            like durability, because caching repeated requests changes
            what throughput benchmarks measure.
        epoch_debug: Switch on the epoch-lock discipline checker
            (``EpochManager(debug=True)``): catalog mutations outside the
            exclusive side, upgrade attempts and lock-order inversions
            raise :class:`~repro.errors.EpochDisciplineError` with the
            acquisition stacks involved.  For tests and debugging; the
            default keeps the lean production path.
    """

    def __init__(self, pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
                 trs_config: TRSTreeConfig = DEFAULT_CONFIG,
                 size_model: SizeModel = DEFAULT_SIZE_MODEL,
                 advisor: HostColumnAdvisor | None = None,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 durability: DurabilityConfig | None = None,
                 result_cache: ResultCacheConfig | None = None,
                 epoch_debug: bool = False) -> None:
        self.pointer_scheme = pointer_scheme
        self.trs_config = trs_config
        self.size_model = size_model
        self.advisor = advisor or HostColumnAdvisor()
        # Reader-writer epoch protocol: reads share, DDL/DML excludes.  One
        # manager per database (see repro.engine.epochs for why coarse).
        # The catalog reports its mutations to the manager's discipline
        # checker (a no-op unless epoch_debug is on).
        self.epochs = EpochManager(debug=epoch_debug)
        self.catalog = Catalog(epoch_guard=self.epochs.note_mutation)
        self.planner = Planner(self.catalog, pointer_scheme, cost_model)
        self._durability: DurabilityManager | None = (
            DurabilityManager(durability) if durability is not None else None
        )
        self._result_cache: ResultCache | None = (
            ResultCache(result_cache) if result_cache is not None else None
        )

    # ------------------------------------------------------------------ DDL

    def create_table(self, schema: TableSchema) -> Table:
        """Create a table along with its primary index."""
        with self.epochs.write():
            if schema.name in self.catalog:
                raise CatalogError(f"table {schema.name!r} already exists")
            if self._durability is not None:
                self._durability.log_create_table(schema)
            table = Table(schema, size_model=self.size_model)
            primary_index = BPlusTree(size_model=self.size_model)
            self.catalog.add_table(schema.name, table, primary_index)
            return table

    def create_index(self, name: str, table_name: str, column: str,
                     method: IndexMethod = IndexMethod.BTREE,
                     host_column: str | None = None,
                     trs_config: TRSTreeConfig | None = None,
                     cm_target_bucket_width: float | None = None,
                     cm_host_bucket_width: float | None = None,
                     preexisting: bool = False,
                     parallelism: int = 1) -> IndexEntry:
        """Create a secondary index on ``column``.

        Args:
            name: Index name (unique per table).
            table_name: Table to index.
            column: Target column.
            method: Physical mechanism; ``AUTO`` asks the correlation advisor
                whether a Hermit index is viable and falls back to a B+-tree.
            host_column: Host column for HERMIT/CORRELATION_MAP; discovered
                automatically when omitted.
            trs_config: Per-index TRS-Tree parameter override.
            cm_target_bucket_width: Target bucket width for CORRELATION_MAP.
            cm_host_bucket_width: Host bucket width for CORRELATION_MAP.
            preexisting: Mark the index as pre-existing for the space
                breakdown accounting ("Existing Indexes" vs "New Indexes").
            parallelism: Construction threads for the TRS-Tree.

        Returns:
            The catalog entry of the new index.
        """
        with self.epochs.write():
            return self._create_index(
                name, table_name, column, method, host_column, trs_config,
                cm_target_bucket_width, cm_host_bucket_width, preexisting,
                parallelism,
            )

    def _create_index(self, name: str, table_name: str, column: str,
                      method: IndexMethod, host_column: str | None,
                      trs_config: TRSTreeConfig | None,
                      cm_target_bucket_width: float | None,
                      cm_host_bucket_width: float | None,
                      preexisting: bool, parallelism: int) -> IndexEntry:
        """:meth:`create_index` body, called under the write side."""
        entry = self.catalog.table_entry(table_name)
        table = entry.table
        table.schema.position_of(column)
        if name in entry.indexes:
            raise CatalogError(
                f"index {name!r} already exists on table {table_name!r}"
            )

        if method is IndexMethod.AUTO:
            method, host_column = self._advise(entry, column, host_column)

        # Resolve everything that can fail *before* the WAL record is
        # written: the log must only ever hold operations that succeed.
        host_index = None
        if method is IndexMethod.HERMIT:
            host_column = host_column or self._advise(entry, column, None)[1]
            host_index = self._host_index_for(entry, column, host_column)
        elif method is IndexMethod.CORRELATION_MAP:
            if host_column is None:
                raise QueryError("CORRELATION_MAP requires an explicit host column")
            if cm_target_bucket_width is None or cm_host_bucket_width is None:
                raise QueryError("CORRELATION_MAP requires both bucket widths")
            host_index = self._host_index_for(entry, column, host_column)
        elif method not in (IndexMethod.BTREE, IndexMethod.SORTED_COLUMN):
            raise QueryError(f"unsupported index method {method!r}")

        definition = {
            "name": name, "table": table_name, "column": column,
            "method": method.value, "host_column": host_column,
            "trs_config": asdict(trs_config) if trs_config is not None else None,
            "cm_target_bucket_width": cm_target_bucket_width,
            "cm_host_bucket_width": cm_host_bucket_width,
            "preexisting": preexisting,
        }
        if self._durability is not None:
            self._durability.log_create_index(definition)

        if method in (IndexMethod.BTREE, IndexMethod.SORTED_COLUMN):
            backing = (SortedColumnIndex(size_model=self.size_model)
                       if method is IndexMethod.SORTED_COLUMN else None)
            mechanism: object = BaselineSecondaryIndex(
                table, column, primary_index=entry.primary_index,
                pointer_scheme=self.pointer_scheme, size_model=self.size_model,
                index=backing,
            )
            mechanism.build()
        elif method is IndexMethod.HERMIT:
            mechanism = HermitIndex(
                table, column, host_column, host_index,
                primary_index=entry.primary_index,
                pointer_scheme=self.pointer_scheme,
                config=trs_config or self.trs_config,
                size_model=self.size_model,
            )
            mechanism.build(parallelism=parallelism)
        else:
            mechanism = CorrelationMap(
                table, column, host_column, host_index,
                target_bucket_width=cm_target_bucket_width,
                host_bucket_width=cm_host_bucket_width,
                primary_index=entry.primary_index,
                pointer_scheme=self.pointer_scheme,
                size_model=self.size_model,
            )
            mechanism.build()

        index_entry = IndexEntry(
            name=name, table_name=table_name, column=column, method=method,
            mechanism=mechanism, host_column=host_column,
            is_preexisting=preexisting, definition=definition,
        )
        self.catalog.add_index(index_entry)
        return index_entry

    def create_composite_index(self, name: str, table_name: str,
                               leading_column: str, second_column: str,
                               preexisting: bool = False) -> IndexEntry:
        """Create a composite (two-column) secondary index.

        The planner uses it as a single access path covering a conjunctive
        predicate on both key columns (Section 3's multi-column setting).

        Args:
            name: Index name (unique per table).
            table_name: Table to index.
            leading_column: Leading key column.
            second_column: Second key column.
            preexisting: Space-breakdown label, as for :meth:`create_index`.
        """
        with self.epochs.write():
            return self._create_composite_index(
                name, table_name, leading_column, second_column, preexisting,
            )

    def _create_composite_index(self, name: str, table_name: str,
                                leading_column: str, second_column: str,
                                preexisting: bool) -> IndexEntry:
        """:meth:`create_composite_index` body, under the write side."""
        entry = self.catalog.table_entry(table_name)
        entry.table.schema.position_of(leading_column)
        entry.table.schema.position_of(second_column)
        if leading_column == second_column:
            raise QueryError("composite index needs two distinct columns")
        if name in entry.indexes:
            raise CatalogError(
                f"index {name!r} already exists on table {table_name!r}"
            )
        definition = {
            "name": name, "table": table_name,
            "leading_column": leading_column, "second_column": second_column,
            "preexisting": preexisting,
        }
        if self._durability is not None:
            self._durability.log_create_composite_index(definition)
        mechanism = CompositeSecondaryIndex(
            entry.table, leading_column, second_column,
            primary_index=entry.primary_index,
            pointer_scheme=self.pointer_scheme, size_model=self.size_model,
        )
        mechanism.build()
        index_entry = IndexEntry(
            name=name, table_name=table_name, column=leading_column,
            method=IndexMethod.COMPOSITE, mechanism=mechanism,
            second_column=second_column, is_preexisting=preexisting,
            definition=definition,
        )
        self.catalog.add_index(index_entry)
        return index_entry

    def drop_index(self, table_name: str, index_name: str) -> None:
        """Drop a secondary index."""
        with self.epochs.write():
            entry = self.catalog.table_entry(table_name)
            if index_name not in entry.indexes:
                raise CatalogError(
                    f"index {index_name!r} does not exist on table "
                    f"{table_name!r}"
                )
            if self._durability is not None:
                self._durability.log_drop_index(table_name, index_name)
            self.catalog.drop_index(table_name, index_name)

    def _advise(self, entry: TableEntry, column: str,
                host_column: str | None) -> tuple[IndexMethod, str | None]:
        """Ask the advisor whether a Hermit index is viable for ``column``."""
        candidates = [host_column] if host_column else self.catalog.indexed_columns(
            entry.name
        )
        if not candidates:
            return IndexMethod.BTREE, None
        recommendation = self.advisor.recommend(entry.table, column, candidates)
        if recommendation.candidate is not None:
            self.catalog.record_correlation(entry.name, recommendation.candidate)
        if recommendation.use_hermit:
            return IndexMethod.HERMIT, recommendation.host_column
        return IndexMethod.BTREE, None

    def _host_index_for(self, entry: TableEntry, target_column: str,
                        host_column: str | None):
        """Resolve the complete index backing ``host_column``."""
        if host_column is None:
            raise QueryError(
                f"no host column available for a correlation-based index on "
                f"{target_column!r}"
            )
        if host_column == entry.table.schema.primary_key:
            return entry.primary_index
        host_entries = [
            e for e in self.catalog.indexes_on_column(entry.name, host_column)
            if e.method in HOST_METHODS
        ]
        if not host_entries:
            raise CatalogError(
                f"column {host_column!r} has no complete index to serve as host"
            )
        return host_entries[0].mechanism.index

    # ------------------------------------------------------------------ DML

    def insert(self, table_name: str, row: dict) -> int:
        """Insert a row, maintaining the primary and all secondary indexes.

        Delegates to :meth:`insert_many` with a batch of one so the scalar
        and batched write paths cannot drift apart.
        """
        # The pre-validation reads the catalog, so it needs the shared
        # side; the write side is taken by insert_many *after* the read
        # releases (holding it across the call would be an upgrade).
        with self.epochs.read():
            entry = self.catalog.table_entry(table_name)
            entry.table.schema.validate_row(row)
        return self.insert_many(
            table_name, {name: [value] for name, value in row.items()}
        )[0]

    def insert_many(self, table_name: str, columns: dict[str, Sequence]) -> list[int]:
        """Bulk-insert column-oriented data, maintaining all indexes in bulk.

        The batch write path mirrors the vectorized lookup path: one
        :meth:`Table.insert_many` append, one batched primary-index
        maintenance step (a bulk load while the primary index is still
        empty, a sorted merge afterwards) and one column-oriented
        ``insert_many`` notification per secondary mechanism — no per-row
        ``fetch`` and no per-row index descent anywhere.

        Returns:
            The locations of the inserted rows, in insertion order.
        """
        with self.epochs.write():
            entry = self.catalog.table_entry(table_name)
            table = entry.table
            if self._durability is not None:
                # Full dry-run validation first: the WAL may only contain
                # operations that the table is guaranteed to accept on replay.
                if table.validate_insert_many(columns) > 0:
                    self._durability.log_insert_many(table_name, columns)
            locations = [int(loc) for loc in table.insert_many(columns)]
            if not locations:
                return locations
            location_array = np.asarray(locations, dtype=np.int64)
            primary = table.schema.primary_key
            primary_values = np.asarray(columns[primary], dtype=np.float64)
            if entry.primary_index.num_entries == 0:
                entry.primary_index.bulk_load(
                    zip(primary_values.tolist(), locations)
                )
            else:
                entry.primary_index.insert_many(primary_values, location_array)
            if entry.indexes:
                column_data = self._batch_columns(table, columns,
                                                  location_array)
                for index_entry in entry.indexes.values():
                    index_entry.mechanism.insert_many(column_data,
                                                      location_array)
            self.catalog.bump_data_epoch(table_name)
            if self._durability is not None:
                self._durability.maybe_auto_checkpoint(self)
            return locations

    @staticmethod
    def _batch_columns(table: Table, columns: dict[str, Sequence],
                       locations: np.ndarray) -> dict[str, Sequence]:
        """Complete the supplied columns to the full schema for mechanisms.

        Mechanisms must observe the *stored* rows, exactly like the per-row
        ``fetch`` notification they replace: supplied values are coerced to
        the column dtype (storing ``2.7`` into an INT64 column keeps ``2``,
        and the index must key ``2``, not ``2.7``), and columns the caller
        omitted (null-filled by the table) are gathered back.  The coercion
        is a no-copy ``asarray`` whenever the caller already passed the
        stored dtype.
        """
        data: dict[str, Sequence] = {}
        for column in table.schema:
            if column.name not in columns:
                data[column.name] = table.values(locations, column.name)
            elif column.dtype is DataType.STRING:
                data[column.name] = columns[column.name]
            else:
                data[column.name] = np.asarray(
                    columns[column.name], dtype=column.dtype.numpy_dtype
                )
        return data

    def delete(self, table_name: str, location: int) -> None:
        """Delete the row at ``location``, maintaining all indexes."""
        with self.epochs.write():
            entry = self.catalog.table_entry(table_name)
            row = entry.table.fetch(location)
            if self._durability is not None:
                self._durability.log_delete(table_name, int(location))
            for index_entry in entry.indexes.values():
                index_entry.mechanism.delete(row, location)
            entry.primary_index.delete(
                float(row[entry.table.schema.primary_key]), location
            )
            entry.table.delete(location)
            self.catalog.bump_data_epoch(table_name)
            if self._durability is not None:
                self._durability.maybe_auto_checkpoint(self)

    def update(self, table_name: str, location: int, changes: dict) -> None:
        """Update a row in place, maintaining all indexes.

        Primary-key changes are supported and maintained delete/insert-style
        (mirroring :meth:`delete`): the old key's entry is removed from the
        primary index and the new key is inserted pointing at the same row
        location.  Without this, the primary index stays keyed on the stale
        value — under logical pointers every secondary-index hit on the row
        then fails to resolve (the row silently vanishes from query
        results), and a later :meth:`delete` misses the index entry.
        """
        with self.epochs.write():
            entry = self.catalog.table_entry(table_name)
            old_row = entry.table.fetch(location)
            # Validate (and coerce) every change before logging or touching
            # any state: a rejected update must leave the table, the WAL and
            # every index exactly as they were.
            entry.table.validate_changes(changes)
            if self._durability is not None:
                self._durability.log_update(table_name, int(location), changes)
            entry.table.update(location, changes)
            new_row = entry.table.fetch(location)
            primary = entry.table.schema.primary_key
            old_key = float(old_row[primary])
            new_key = float(new_row[primary])
            if old_key != new_key:
                entry.primary_index.delete(old_key, location)
                entry.primary_index.insert(new_key, location)
            for index_entry in entry.indexes.values():
                index_entry.mechanism.update(old_row, new_row, location)
            self.catalog.bump_data_epoch(table_name)
            if self._durability is not None:
                self._durability.maybe_auto_checkpoint(self)

    # ------------------------------------------------------------- durability

    @property
    def durability(self) -> DurabilityManager | None:
        """The attached durability manager, or ``None`` when disabled."""
        return self._durability

    def attach_durability(self, manager: DurabilityManager) -> None:
        """Attach a resumed durability manager (used by recovery)."""
        if self._durability is not None:
            raise DurabilityError("durability is already attached")
        self._durability = manager

    def checkpoint(self) -> int:
        """Snapshot all tables and truncate the WAL; returns the covered LSN.

        Raises:
            DurabilityError: If durability is not enabled.
        """
        if self._durability is None:
            raise DurabilityError("durability is not enabled on this database")
        # The snapshot must observe the engine between mutations: the
        # shared side excludes writers without blocking other reads (and
        # is reentrant under the write side for auto-checkpoints).
        with self.epochs.read():
            lsn = self._durability.checkpoint(self)
            if self._result_cache is not None:
                # Piggyback the result cache's stale sweep on the
                # checkpoint's full walk: lazily-invalidated entries that
                # no probe revisits stop squatting in the byte budget.
                self._result_cache.sweep({
                    entry.name: entry.data_epoch
                    for entry in self.catalog.tables()
                })
            return lsn

    def flush_wal(self) -> None:
        """Force the WAL to stable storage (no-op when durability is off)."""
        if self._durability is not None:
            self._durability.flush()

    def durability_stats(self) -> DurabilityStats:
        """WAL/checkpoint/recovery counters; ``enabled=False`` when off."""
        if self._durability is None:
            return DurabilityStats(enabled=False)
        return self._durability.stats()

    def close(self) -> None:
        """Flush and close the WAL, if any.  The database stays queryable."""
        if self._durability is not None:
            self._durability.close()

    # ---------------------------------------------------------------- queries

    def execute(self, request: QueryRequest) -> QueryResult:
        """Answer one :class:`QueryRequest` — the canonical read entry point.

        Point, range and conjunctive requests all take this path: the
        request's conjunction goes through the planner (point probes hit its
        single-column fast path), the chosen plan executes under the read
        side of the epoch protocol, and the result records the write epoch
        it observed.
        """
        planned = self.query_conjunctive(request.table, request.query)
        return QueryResult.from_planned(planned)

    def execute_many(self,
                     requests: Sequence[QueryRequest]) -> list[QueryResult]:
        """Answer a request batch, batched end to end — the serving path.

        Requests are grouped by table, then by plan shape
        (:meth:`Planner.plan_many`), and every group runs through the
        segmented batch executor under one shared read acquisition — so a
        coalesced batch observes exactly one committed epoch, which every
        returned result records.  Results come back aligned with the input
        (mixed-table batches are fine; order within the batch is
        preserved).

        With a result cache enabled, each table's requests are first
        probed in one batch (:meth:`ResultCache.get_many`) against the
        ``data_epoch`` read under the held shared side; only the misses
        are planned and executed, and their final arrays are installed in
        one batch fill afterwards.  Cache-hit results carry the stored
        *read-only* int64 array as ``locations`` (misses keep returning
        fresh lists) — hits must stay allocation-free to be worth taking.
        """
        requests = list(requests)
        results: list[QueryResult | None] = [None] * len(requests)
        by_table: dict[str, list[int]] = {}
        for position, request in enumerate(requests):
            by_table.setdefault(request.table, []).append(position)
        cache = self._result_cache
        probing = cache is not None and cache.enabled
        with self.epochs.read() as epoch:
            for table_name, positions in by_table.items():
                entry = self.catalog.table_entry(table_name)
                # Partition the table's requests into cache hits (answered
                # from their stored arrays) and misses; only the misses go
                # through plan_many + the segmented executor, and the hits
                # are spliced back in input order via the shared results
                # list.  data_epoch cannot move while the shared side is
                # held, so one read before the loop covers every probe.
                misses = positions
                miss_keys: list = []
                fills: list = []
                if probing:
                    misses = []
                    data_epoch = entry.data_epoch
                    keys = [canonical_key(requests[p].query)
                            for p in positions]
                    entries = cache.get_many(table_name, keys, data_epoch)
                    # All hits in the batch share one breakdown object,
                    # exactly like the members of a plan group share
                    # theirs: one cache probe pass answered them all.
                    hit_count = sum(e is not None for e in entries)
                    if hit_count == 0:
                        # All-miss batch (cold cache, uniform traffic):
                        # skip the splice loop and reuse the probe lists
                        # as-is — this keeps the pure miss path nearly
                        # allocation-free on top of the uncached path.
                        misses = positions
                        miss_keys = keys
                    else:
                        hit_breakdown = LookupBreakdown(lookups=hit_count)
                        for position, key, hit in zip(positions, keys,
                                                      entries):
                            if hit is None:
                                misses.append(position)
                                miss_keys.append(key)
                                continue
                            count = int(hit.locations.size)
                            hit_breakdown.candidates += count
                            hit_breakdown.results += count
                            results[position] = QueryResult(
                                locations=hit.locations,
                                breakdown=hit_breakdown,
                                used_index=hit.used_index, plan=None,
                                group_size=hit_count, epoch=epoch,
                            )
                        if not misses:
                            continue
                conjunctives = [requests[p].query for p in misses]
                for group in self.planner.plan_many(table_name, conjunctives):
                    locations_per_query, breakdown = execute_plan_many(
                        group.plan, group.merged_list, entry,
                        self.pointer_scheme, entry.primary_index,
                    )
                    used_index = group.plan.used_index
                    group_size = len(group.indices)
                    for member, locations in zip(group.indices,
                                                 locations_per_query):
                        position = misses[member]
                        results[position] = QueryResult(
                            locations=locations.tolist(), breakdown=breakdown,
                            used_index=used_index, plan=group.plan,
                            group_size=group_size, epoch=epoch,
                        )
                        if miss_keys:
                            key = miss_keys[member]
                            if key is not None:
                                fills.append((key, locations, used_index))
                if fills:
                    cache.put_many(table_name, fills, entry.data_epoch)
        return results

    def query(self, table_name: str, predicate: RangePredicate) -> QueryResult:
        """Execute a single-column predicate through the planner.

        Thin wrapper over :meth:`execute` kept API-compatible with the
        pre-planner engine: the result carries a sorted list of row
        locations and the name of the index that served the predicate
        (``None`` for a full scan).
        """
        return self.execute(QueryRequest.of(table_name, predicate))

    def query_many(self, table_name: str,
                   predicates: Sequence[RangePredicate]) -> list[QueryResult]:
        """Execute a batch of single-column predicates, batched end to end.

        Thin wrapper over :meth:`execute_many`: result-set-equivalent to
        ``[self.query(table_name, p) for p in predicates]`` but planned
        once per (column, selectivity-bucket) group and executed by the
        segmented batch executor — B queries cost O(1) Python-level array
        passes per plan group instead of B full planner/executor
        pipelines.  Results come back in input order.
        """
        return self.execute_many(
            [QueryRequest.of(table_name, predicate)
             for predicate in predicates]
        )

    def query_conjunctive(
        self, table_name: str,
        query: "ConjunctiveQuery | Sequence[RangePredicate] | RangePredicate",
    ) -> PlannedQueryResult:
        """Execute a conjunction of range predicates through the planner.

        The array-native read API: the planner picks the cheapest access
        path per predicate from the catalog statistics, the executor
        intersects the candidate tid sets (``np.intersect1d``), resolves
        pointers once and validates every predicate in one batched
        base-table pass.

        Args:
            table_name: Table to query.
            query: A :class:`ConjunctiveQuery`, a sequence of
                :class:`RangePredicate` conjuncts, or a single predicate.

        Returns:
            A :class:`PlannedQueryResult` whose ``locations`` is a sorted
            int64 array and whose ``plan`` explains the chosen paths.
        """
        query = self._as_conjunctive(query)
        cache = self._result_cache
        with self.epochs.read() as epoch:
            entry = self.catalog.table_entry(table_name)
            key = (canonical_key(query)
                   if cache is not None and cache.enabled else None)
            if key is not None:
                hit = cache.get(table_name, key, entry.data_epoch)
                if hit is not None:
                    count = int(hit.locations.size)
                    return PlannedQueryResult(
                        locations=hit.locations,
                        breakdown=LookupBreakdown(
                            lookups=1, candidates=count, results=count),
                        plan=self._cached_marker_plan(table_name, query,
                                                      hit.used_index),
                        epoch=epoch,
                    )
            plan = self.planner.plan(table_name, query)
            result = execute_plan(plan, entry, self.pointer_scheme,
                                  entry.primary_index)
            if key is not None:
                cache.put(table_name, key, result.locations,
                          entry.data_epoch, plan.used_index)
        result.epoch = epoch
        return result

    def query_conjunctive_many(
        self, table_name: str,
        queries: Sequence["ConjunctiveQuery | Sequence[RangePredicate] | RangePredicate"],
    ) -> list[PlannedQueryResult]:
        """Execute a batch of conjunctive queries, batched end to end.

        The batch is grouped by plan shape (:meth:`Planner.plan_many`:
        same predicate columns, same per-column selectivity bucket — one
        batch may span several groups and each group plans once), and every
        group runs through the segmented batch executor: one candidate
        probe per access path, one pointer-resolution pass and one
        validation pass per predicate column over the *concatenated*
        candidates of the whole group.

        Result-set-equivalent to calling :meth:`query_conjunctive` per
        query.  Each returned result carries its own location array (input
        order) but shares the group's plan template — bound to the group
        representative's ranges — its ``group_size`` and one breakdown
        accumulated across the group (per-phase time for B queries is only
        meaningful in aggregate once the phases are batched).
        """
        conjunctives = [self._as_conjunctive(query) for query in queries]
        results: list[PlannedQueryResult | None] = [None] * len(conjunctives)
        with self.epochs.read() as epoch:
            entry = self.catalog.table_entry(table_name)
            for group in self.planner.plan_many(table_name, conjunctives):
                locations_per_query, breakdown = execute_plan_many(
                    group.plan, group.merged_list, entry, self.pointer_scheme,
                    entry.primary_index,
                )
                for position, locations in zip(group.indices,
                                               locations_per_query):
                    results[position] = PlannedQueryResult(
                        locations=locations, breakdown=breakdown,
                        plan=group.plan, group_size=len(group.indices),
                        epoch=epoch,
                    )
        return results

    def explain(self, table_name: str,
                query: "ConjunctiveQuery | Sequence[RangePredicate] | RangePredicate",
    ) -> Plan:
        """Plan a query without executing it (the ``EXPLAIN`` entry point).

        When the query would currently be answered from the result cache,
        the returned plan is the plan-free ``cached`` marker instead of a
        freshly planned pipeline (``Plan.cached`` is ``True`` and
        ``describe()`` says so); the peek is non-destructive, so explain
        never perturbs hit/miss counters or the LRU order.
        """
        query = self._as_conjunctive(query)
        cache = self._result_cache
        with self.epochs.read():
            if cache is not None and cache.enabled:
                key = canonical_key(query)
                if key is not None:
                    entry = self.catalog.table_entry(table_name)
                    hit = cache.peek(table_name, key, entry.data_epoch)
                    if hit is not None:
                        return self._cached_marker_plan(table_name, query,
                                                        hit.used_index)
            return self.planner.plan(table_name, query)

    @staticmethod
    def _cached_marker_plan(table_name: str, query: ConjunctiveQuery,
                            used_index: str | None) -> Plan:
        """The plan-free marker attached to cache-served results."""
        return Plan(table_name=table_name, query=query,
                    merged=query.merged() or {}, cached=True,
                    cached_used_index=used_index)

    # ------------------------------------------------------- result cache

    @property
    def result_cache(self) -> ResultCache | None:
        """The attached result cache, or ``None`` when disabled."""
        return self._result_cache

    def result_cache_info(self) -> ResultCacheStats:
        """Result-cache counters; ``enabled=False`` when none is attached."""
        if self._result_cache is None:
            return ResultCacheStats(enabled=False)
        return self._result_cache.info()

    def result_cache_clear(self) -> None:
        """Drop all cached results (mirrors :meth:`planner_cache_clear`).

        A no-op without an attached cache.  Counters survive, so tests and
        benchmarks can clear between phases while keeping cumulative
        hit/miss accounting.
        """
        if self._result_cache is not None:
            self._result_cache.clear()

    def planner_cache_info(self) -> "dict[str, PlannerCacheStats]":
        """Per-table plan-cache counters (see :meth:`Planner.table_cache_info`)."""
        return self.planner.table_cache_info()

    def planner_cache_stats(self) -> PlannerCacheStats:
        """Cumulative plan-cache counters (see :meth:`Planner.cache_info`)."""
        return self.planner.cache_info()

    def planner_cache_clear(self) -> None:
        """Drop all cached plan templates (see :meth:`Planner.cache_clear`)."""
        self.planner.cache_clear()

    @staticmethod
    def _as_conjunctive(
        query: "ConjunctiveQuery | Sequence[RangePredicate] | RangePredicate",
    ) -> ConjunctiveQuery:
        """Coerce any accepted query shape to a ConjunctiveQuery."""
        if isinstance(query, ConjunctiveQuery):
            return query
        if isinstance(query, RangePredicate):
            return ConjunctiveQuery([query])
        return ConjunctiveQuery(query)

    def query_with(self, table_name: str, index_name: str,
                   predicate: RangePredicate) -> QueryResult:
        """Execute a predicate through a specific named index.

        .. deprecated::
            Route reads through :meth:`execute` / :meth:`query` instead —
            the planner picks the index, and :meth:`explain` shows which
            one it would pick.  ``query_with`` bypasses the planner (no
            plan caching, no cost comparison) and survives only for the
            mechanism-vs-mechanism benchmarks that need to force a
            specific index; those call the internal helper directly.
        """
        warnings.warn(
            "Database.query_with is deprecated: route reads through "
            "Database.execute / Database.query (the planner picks the "
            "index; explain() shows which one)",
            DeprecationWarning, stacklevel=2,
        )
        return self._query_with(table_name, index_name, predicate)

    def _query_with(self, table_name: str, index_name: str,
                    predicate: RangePredicate) -> QueryResult:
        """:meth:`query_with` body without the deprecation warning."""
        with self.epochs.read() as epoch:
            entry = self.catalog.table_entry(table_name)
            index_entry = entry.indexes.get(index_name)
            if index_entry is None:
                raise CatalogError(
                    f"index {index_name!r} does not exist on table "
                    f"{table_name!r}"
                )
            if index_entry.method is IndexMethod.COMPOSITE:
                raise QueryError(
                    f"composite index {index_name!r} cannot serve a single "
                    f"predicate; use query_conjunctive with predicates on "
                    f"{index_entry.column!r} and {index_entry.second_column!r}"
                )
            if index_entry.column != predicate.column:
                raise QueryError(
                    f"index {index_name!r} is on column "
                    f"{index_entry.column!r}, not {predicate.column!r}"
                )
            result = execute_with_index(index_entry, predicate)
        result.epoch = epoch
        return result

    # ------------------------------------------------------------- accounting

    def memory_report(self, table_name: str | None = None) -> MemoryReport:
        """Memory breakdown: table, primary index, existing and new indexes."""
        report = MemoryReport()
        with self.epochs.read():
            for entry in self.catalog.tables():
                if table_name is not None and entry.name != table_name:
                    continue
                report.add("table", entry.table.memory_bytes())
                report.add("primary_index", entry.primary_index.memory_bytes())
                for index_entry in entry.indexes.values():
                    label = ("existing_indexes" if index_entry.is_preexisting
                             else "new_indexes")
                    report.add(label, index_entry.mechanism.memory_bytes())
        return report

    def table(self, table_name: str) -> Table:
        """Return the table object registered under ``table_name``."""
        with self.epochs.read():
            return self.catalog.table_entry(table_name).table
