"""Plain-text rendering of reproduced tables and figures.

The paper presents its results as plots; in a terminal-only reproduction we
print the underlying series as aligned text tables so the rows can be compared
directly against the paper's reported numbers and against EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.bench.harness import FigureData
from repro.storage.memory import BYTES_PER_MB, MemoryReport


def format_table(headers: list[str], rows: list[list]) -> str:
    """Render an aligned text table."""
    columns = [
        [str(header)] + [_format_cell(row[i]) for row in rows]
        for i, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(
            _format_cell(value).ljust(width) for value, width in zip(row, widths)
        ))
    return "\n".join(lines)


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_figure(figure: FigureData) -> str:
    """Render a :class:`FigureData` as a text table with one column per series."""
    labels = list(figure.series)
    headers = [figure.x_label] + [f"{label} ({figure.y_label})" for label in labels]
    if not labels:
        return f"== {figure.name} ==\n(no data)"
    xs = figure.series[labels[0]].xs
    rows = []
    for position, x in enumerate(xs):
        row = [x]
        for label in labels:
            series = figure.series[label]
            row.append(series.ys[position] if position < len(series.ys) else "")
        rows.append(row)
    body = format_table(headers, rows)
    notes = "\n".join(f"note: {note}" for note in figure.notes)
    title = f"== {figure.name} =="
    return "\n".join(part for part in (title, body, notes) if part)


def format_memory_report(report: MemoryReport, title: str = "memory") -> str:
    """Render a memory breakdown as a text table with MB values and fractions."""
    rows = []
    for label, num_bytes in sorted(report.components.items()):
        rows.append([label, num_bytes / BYTES_PER_MB, report.fraction(label)])
    rows.append(["total", report.total_mb, 1.0])
    return f"== {title} ==\n" + format_table(["component", "MB", "fraction"], rows)
