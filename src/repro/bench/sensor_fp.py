"""Sensor-workload false-positive benchmark: Hermit vs. the baseline index.

The power-law sensor response is the hardest workload for the TRS-Tree's
confidence bands: before the adaptive leaf models, fixed linear bands
admitted so many false positives that Hermit trailed the complete secondary
index by ~8x on range queries (ROADMAP "Sensor-workload false positives").
This suite measures that gap directly — same queries, both mechanisms, best
of several interleaved rounds — and reports the throughput ratio plus
Hermit's observed false-positive ratio, so the adaptive-leaf-model fix
(candidate-count-aware splits, per-leaf model selection, noise-floor band
widening, outlier-only demotion) stays pinned by CI.

Shared between the standalone ``benchmarks/bench_sensor_fp.py`` script and
its small-scale pytest smoke test, mirroring ``repro.bench.hotpath``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.hotpath import HotpathSetup, build_hotpath_setup
from repro.storage.identifiers import PointerScheme
from repro.workloads.queries import range_queries

DEFAULT_ROUNDS = 5


@dataclass
class SensorFpMeasurement:
    """Hermit-vs-baseline gap on one sensor-workload configuration."""

    workload: str
    mechanism: str
    pointer_scheme: str
    host_index: str
    num_tuples: int
    selectivity: float
    num_queries: int
    total_results: int
    hermit_seconds: float
    baseline_seconds: float
    hermit_fp_ratio: float
    hermit_candidates: int
    trs_leaves: int
    results_agree: bool

    @property
    def hermit_kops(self) -> float:
        """Hermit batch-lookup throughput in K queries per second."""
        return self._kops(self.hermit_seconds)

    @property
    def baseline_kops(self) -> float:
        """Baseline batch-lookup throughput in K queries per second."""
        return self._kops(self.baseline_seconds)

    @property
    def hermit_vs_baseline(self) -> float:
        """Hermit throughput as a fraction of the baseline's (gated).

        The CI floor is 1/3 — i.e. the sensor-workload gap must stay <= 3x,
        down from the ~8x the fixed linear bands measured.  A degenerate
        zero baseline time yields 0 (the gate then fails loudly) rather
        than inf (which would silently pass a broken measurement).
        """
        if self.hermit_seconds <= 0:
            return float("inf")
        return self.baseline_seconds / self.hermit_seconds

    @property
    def gap(self) -> float:
        """The baseline-over-Hermit slowdown factor (the "gap")."""
        if self.baseline_seconds <= 0:
            return float("inf")
        return self.hermit_seconds / self.baseline_seconds

    def _kops(self, seconds: float) -> float:
        if seconds <= 0:
            return 0.0
        return self.num_queries / seconds / 1e3

    def as_dict(self) -> dict:
        """JSON-ready representation for the perf-regression gate."""
        return {
            "workload": self.workload,
            "mechanism": self.mechanism,
            "pointer_scheme": self.pointer_scheme,
            "host_index": self.host_index,
            "num_tuples": self.num_tuples,
            "selectivity": self.selectivity,
            "num_queries": self.num_queries,
            "total_results": self.total_results,
            "hermit_kops": self.hermit_kops,
            "baseline_kops": self.baseline_kops,
            "hermit_vs_baseline": self.hermit_vs_baseline,
            "gap": self.gap,
            "hermit_fp_ratio": self.hermit_fp_ratio,
            "hermit_candidates": self.hermit_candidates,
            "trs_leaves": self.trs_leaves,
            "results_agree": self.results_agree,
        }


def measure_sensor_fp(setup: HotpathSetup, selectivity: float,
                      num_queries: int, rounds: int,
                      pointer_scheme: PointerScheme,
                      host_index_kind: str,
                      seed: int = 42) -> SensorFpMeasurement:
    """Race both mechanisms over identical queries, best of ``rounds``.

    The rounds interleave the two mechanisms so background jitter (CI
    runners) hits both sides equally rather than biasing whichever ran
    second.
    """
    queries = range_queries(setup.domain, selectivity, count=num_queries,
                            seed=seed)
    predicates = [(q.low, q.high) for q in queries]

    hermit_best = float("inf")
    baseline_best = float("inf")
    hermit_batch = baseline_batch = None
    for _ in range(max(1, rounds)):
        setup.hermit.reset_breakdown()
        started = time.perf_counter()
        hermit_batch = setup.hermit.lookup_range_many(predicates)
        hermit_best = min(hermit_best, time.perf_counter() - started)

        started = time.perf_counter()
        baseline_batch = setup.baseline.lookup_range_many(predicates)
        baseline_best = min(baseline_best, time.perf_counter() - started)

    agree = all(
        set(h.tolist()) == set(b.tolist())
        for h, b in zip(hermit_batch.locations_per_query,
                        baseline_batch.locations_per_query)
    )
    breakdown = hermit_batch.breakdown
    return SensorFpMeasurement(
        workload="sensor",
        mechanism="HERMIT",
        pointer_scheme=pointer_scheme.value,
        host_index=host_index_kind,
        num_tuples=setup.num_tuples,
        selectivity=selectivity,
        num_queries=num_queries,
        total_results=hermit_batch.total_results,
        hermit_seconds=hermit_best,
        baseline_seconds=baseline_best,
        hermit_fp_ratio=breakdown.false_positive_ratio,
        hermit_candidates=breakdown.candidates,
        trs_leaves=setup.hermit.trs_tree.num_leaves,
        results_agree=agree,
    )


def run_sensor_fp_suite(num_tuples: int = 120_000, selectivity: float = 1e-3,
                        num_queries: int = 12, rounds: int = DEFAULT_ROUNDS,
                        pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
                        host_index_kind: str = "btree",
                        seed: int = 42) -> list[SensorFpMeasurement]:
    """Build the sensor workload and measure the Hermit-vs-baseline gap."""
    setup = build_hotpath_setup("sensor", num_tuples,
                                pointer_scheme=pointer_scheme,
                                host_index_kind=host_index_kind, seed=seed)
    return [measure_sensor_fp(setup, selectivity, num_queries, rounds,
                              pointer_scheme, host_index_kind, seed=seed)]
