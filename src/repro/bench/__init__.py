"""Benchmark harness: timing, experiment runners, text reporting."""

from repro.bench.harness import (
    FigureData,
    QueryBatchResult,
    SweepSeries,
    construction_time,
    insertion_throughput,
    run_point_batch,
    run_query_batch,
)
from repro.bench.report import format_figure, format_memory_report, format_table
from repro.bench.timing import (
    SimulatedClock,
    ThroughputResult,
    scale_factor,
    scaled,
    stopwatch,
)

__all__ = [
    "FigureData",
    "QueryBatchResult",
    "SimulatedClock",
    "SweepSeries",
    "ThroughputResult",
    "construction_time",
    "format_figure",
    "format_memory_report",
    "format_table",
    "insertion_throughput",
    "run_point_batch",
    "run_query_batch",
    "scale_factor",
    "scaled",
    "stopwatch",
]
