"""Planner benchmark: planner-chosen plans raced against manual plans.

The planner's contract is that routing a query through it costs (almost)
nothing relative to hand-picking the best index: for every query class the
planner-chosen plan must stay within a small factor of the *best* manual
single-index plan, while beating the *worst* one by whatever margin the
mechanisms differ.  This module builds the Synthetic workload inside a full
:class:`~repro.engine.database.Database` (host B+-tree on colB, Hermit and
baseline B+-tree on colC, sorted-column on colD), then measures three query
classes:

* ``single`` — range predicates on colC, where manual plans are each
  catalogued index on colC via ``query_with``;
* ``point`` — point lookups on colC (same manual plans; the planner must
  prefer the complete index over Hermit);
* ``conjunctive`` — two-predicate queries on (colC, colB), where a manual
  plan is one single-index probe plus a vectorized post-filter of the other
  predicate.

Every plan's result set is compared against every other, so a planner
correctness bug shows up as ``results_agree=False`` rather than a wrong
speedup.  The module also measures the paged read path: the leaf-run gather
of :meth:`~repro.index.paged_bptree.PagedBPlusTree.range_search_array`
against the scalar ``Index`` fallback it replaced.

It lives in ``repro.bench`` so the standalone benchmark script
(``benchmarks/bench_planner.py``) and the tier-1 bench-smoke parity test
share one implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.engine.query import ConjunctiveQuery, RangePredicate
from repro.index.base import Index, KeyRange
from repro.index.paged_bptree import PagedBPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.identifiers import PointerScheme
from repro.workloads.queries import range_queries
from repro.workloads.synthetic import generate_synthetic, load_synthetic

QUERY_CLASSES = ("single", "point", "conjunctive")


@dataclass
class PlannerSetup:
    """The Synthetic workload wired into a database with rival indexes."""

    database: Database
    table_name: str
    target_domain: tuple[float, float]
    host_domain: tuple[float, float]
    num_tuples: int
    # Index names on the target column, for the manual plans.
    target_indexes: tuple[str, ...] = ("idx_colC_btree", "idx_colC_hermit")
    host_index: str = "idx_colB"


def build_planner_setup(num_tuples: int,
                        pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
                        seed: int = 42) -> PlannerSetup:
    """Load Synthetic-Linear and create the rival access paths."""
    dataset = generate_synthetic(num_tuples, "linear", noise_fraction=0.01,
                                 seed=seed)
    database = Database(pointer_scheme=pointer_scheme)
    table_name = load_synthetic(database, dataset)
    database.create_index("idx_colC_hermit", table_name, "colC",
                          method=IndexMethod.HERMIT, host_column="colB")
    database.create_index("idx_colC_btree", table_name, "colC",
                          method=IndexMethod.BTREE)
    database.create_index("idx_colD_sorted", table_name, "colD",
                          method=IndexMethod.SORTED_COLUMN)
    targets = dataset.columns["colC"]
    hosts = dataset.columns["colB"]
    return PlannerSetup(
        database=database, table_name=table_name,
        target_domain=(float(targets.min()), float(targets.max())),
        host_domain=(float(hosts.min()), float(hosts.max())),
        num_tuples=num_tuples,
    )


@dataclass
class PlannerMeasurement:
    """Planner throughput vs. the best and worst manual plans."""

    workload: str
    query_class: str
    pointer_scheme: str
    num_tuples: int
    selectivity: float
    num_queries: int
    total_results: int
    planner_seconds: float
    manual_seconds: dict[str, float]
    chosen: str
    results_agree: bool

    @property
    def best_manual(self) -> str:
        """Name of the fastest manual plan."""
        return min(self.manual_seconds, key=self.manual_seconds.get)

    @property
    def worst_manual(self) -> str:
        """Name of the slowest manual plan."""
        return max(self.manual_seconds, key=self.manual_seconds.get)

    @property
    def speedup_vs_best(self) -> float:
        """Planner throughput relative to the best manual plan (>= ~1)."""
        if self.planner_seconds <= 0:
            return float("inf")
        return self.manual_seconds[self.best_manual] / self.planner_seconds

    @property
    def speedup_vs_worst(self) -> float:
        """Planner throughput relative to the worst manual plan."""
        if self.planner_seconds <= 0:
            return float("inf")
        return self.manual_seconds[self.worst_manual] / self.planner_seconds

    def as_dict(self) -> dict:
        """JSON-ready representation (gated by ``check_regression.py``)."""
        return {
            "workload": self.workload,
            "mechanism": f"planner:{self.query_class}",
            "pointer_scheme": self.pointer_scheme,
            "num_tuples": self.num_tuples,
            "selectivity": self.selectivity,
            "num_queries": self.num_queries,
            "total_results": self.total_results,
            "planner_kops": _kops(self.num_queries, self.planner_seconds),
            "manual_kops": {name: _kops(self.num_queries, seconds)
                            for name, seconds in self.manual_seconds.items()},
            "best_manual": self.best_manual,
            "worst_manual": self.worst_manual,
            "chosen": self.chosen,
            "speedup_vs_best": self.speedup_vs_best,
            "speedup_vs_worst": self.speedup_vs_worst,
            "results_agree": self.results_agree,
        }


def _kops(queries: int, seconds: float) -> float:
    if seconds <= 0:
        return 0.0
    return queries / seconds / 1e3


def _manual_single_index(database: Database, table_name: str, index_name: str,
                         predicate: RangePredicate,
                         post_filter: RangePredicate | None = None) -> np.ndarray:
    """A hand-written plan: one named index probe (+ vectorized post-filter).

    Calls the internal ``_query_with`` so the deprecation warning machinery
    does not sit inside the timed loop and distort the race.
    """
    result = database._query_with(table_name, index_name, predicate)
    locations = np.asarray(result.locations, dtype=np.int64)
    if post_filter is not None and locations.size:
        locations = database.table(table_name).filter_in_range(
            locations, post_filter.column, post_filter.low, post_filter.high
        )
    return np.unique(locations)


def _race(setup: PlannerSetup, query_class: str,
          planner_queries: list[ConjunctiveQuery],
          manual_plans: dict[str, list], selectivity: float,
          pointer_scheme: PointerScheme,
          rounds: int = 7) -> PlannerMeasurement:
    """Time the planner against every manual plan on identical queries.

    Every contender replays the whole query list ``rounds`` times and is
    scored by its best round: one query pass is a few milliseconds, well
    inside scheduler noise, and best-of-rounds also measures the planner's
    steady state (plan cache warm) rather than its first-call cost.
    """
    database, table_name = setup.database, setup.table_name

    # Rounds are interleaved across contenders (planner, manual A, manual
    # B, ... per round) so frequency scaling or background load during any
    # temporal window hits every contender equally instead of biasing
    # whichever happened to run its block there.
    planner_seconds = float("inf")
    planner_results: list = []
    manual_seconds: dict[str, float] = dict.fromkeys(manual_plans,
                                                     float("inf"))
    manual_results: dict[str, list[np.ndarray]] = {}
    for _ in range(rounds):
        started = time.perf_counter()
        results = [database.query_conjunctive(table_name, query)
                   for query in planner_queries]
        planner_seconds = min(planner_seconds,
                              time.perf_counter() - started)
        planner_results = results

        for name, thunks in manual_plans.items():
            started = time.perf_counter()
            manual_results[name] = [thunk() for thunk in thunks]
            manual_seconds[name] = min(manual_seconds[name],
                                       time.perf_counter() - started)

    planner_sets = [result.locations for result in planner_results]
    agree = all(
        all(np.array_equal(planner_sets[position], results[position])
            for position in range(len(planner_sets)))
        for results in manual_results.values()
    )
    chosen_names = [result.plan.used_index or "full-scan"
                    for result in planner_results]
    chosen = max(set(chosen_names), key=chosen_names.count)
    return PlannerMeasurement(
        workload="synthetic",
        query_class=query_class,
        pointer_scheme=pointer_scheme.value,
        num_tuples=setup.num_tuples,
        selectivity=selectivity,
        num_queries=len(planner_queries),
        total_results=int(sum(len(locs) for locs in planner_sets)),
        planner_seconds=planner_seconds,
        manual_seconds=manual_seconds,
        chosen=chosen,
        results_agree=agree,
    )


def run_planner_suite(num_tuples: int = 200_000, selectivity: float = 1e-2,
                      num_queries: int = 20,
                      pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
                      seed: int = 42) -> list[PlannerMeasurement]:
    """Race the planner against manual plans on all three query classes."""
    setup = build_planner_setup(num_tuples, pointer_scheme=pointer_scheme,
                                seed=seed)
    database, table_name = setup.database, setup.table_name
    measurements: list[PlannerMeasurement] = []

    # -- single-column ranges on colC -----------------------------------
    ranges = range_queries(setup.target_domain, selectivity,
                           count=num_queries, seed=seed)
    predicates = [RangePredicate("colC", q.low, q.high) for q in ranges]
    measurements.append(_race(
        setup, "single",
        [ConjunctiveQuery([predicate]) for predicate in predicates],
        {
            name: [
                (lambda n=name, p=predicate:
                 _manual_single_index(database, table_name, n, p))
                for predicate in predicates
            ]
            for name in setup.target_indexes
        },
        selectivity, pointer_scheme,
    ))

    # -- point lookups on colC ------------------------------------------
    # Sample *stored* values so every probe returns rows: the race must
    # exercise resolution and validation, not just empty-probe dispatch.
    rng = np.random.default_rng(seed + 1)
    stored = database.table(table_name).column_array("colC")
    values = rng.choice(stored, size=num_queries, replace=False)
    points = [RangePredicate("colC", float(v), float(v)) for v in values]
    measurements.append(_race(
        setup, "point",
        [ConjunctiveQuery([predicate]) for predicate in points],
        {
            name: [
                (lambda n=name, p=predicate:
                 _manual_single_index(database, table_name, n, p))
                for predicate in points
            ]
            for name in setup.target_indexes
        },
        selectivity, pointer_scheme,
    ))

    # -- conjunctive (colC AND colB) ------------------------------------
    # colB = 2*colC + 10, so a host window anchored on the upper half of
    # the target window's correlated image keeps the conjunction non-empty
    # (roughly half the target matches).  The host window is several times
    # wider than the image, making the colC predicate the clearly more
    # selective side: the race then checks the planner *finds* the best
    # manual plan rather than gating a coin flip between equal-cost plans.
    conjunctions = []
    for target in ranges:
        image_low = 2.0 * target.low + 10.0
        image_high = 2.0 * target.high + 10.0
        host_low = (image_low + image_high) / 2.0
        host_high = host_low + 8.0 * (image_high - image_low)
        conjunctions.append((RangePredicate("colC", target.low, target.high),
                             RangePredicate("colB", host_low, host_high)))
    manual_plans: dict[str, list] = {}
    for name in setup.target_indexes:
        manual_plans[f"{name}+filter"] = [
            (lambda n=name, t=target, h=host:
             _manual_single_index(database, table_name, n, t, post_filter=h))
            for target, host in conjunctions
        ]
    manual_plans[f"{setup.host_index}+filter"] = [
        (lambda t=target, h=host:
         _manual_single_index(database, table_name, setup.host_index, h,
                              post_filter=t))
        for target, host in conjunctions
    ]
    measurements.append(_race(
        setup, "conjunctive",
        [ConjunctiveQuery(pair) for pair in conjunctions],
        manual_plans,
        selectivity, pointer_scheme,
    ))
    return measurements


# ------------------------------------------------------------- paged read path


@dataclass
class PagedReadMeasurement:
    """Leaf-run gather vs. the scalar ``Index`` fallback it replaced."""

    num_tuples: int
    selectivity: float
    num_queries: int
    total_results: int
    scalar_seconds: float
    gather_seconds: float
    results_agree: bool

    @property
    def speedup_gather(self) -> float:
        """Leaf-run gather speedup over the scalar fallback."""
        if self.gather_seconds <= 0:
            return float("inf")
        return self.scalar_seconds / self.gather_seconds

    def as_dict(self) -> dict:
        """JSON-ready representation (gated by ``check_regression.py``)."""
        return {
            "workload": "paged_bptree",
            "mechanism": "range_search_array",
            "num_tuples": self.num_tuples,
            "selectivity": self.selectivity,
            "num_queries": self.num_queries,
            "total_results": self.total_results,
            "scalar_kops": _kops(self.num_queries, self.scalar_seconds),
            "gather_kops": _kops(self.num_queries, self.gather_seconds),
            "speedup_gather": self.speedup_gather,
            "results_agree": self.results_agree,
        }


def run_paged_read_suite(num_tuples: int = 200_000,
                         selectivity: float = 1e-2, num_queries: int = 30,
                         node_capacity: int = 64, pool_capacity: int = 4096,
                         seed: int = 42) -> PagedReadMeasurement:
    """Race the paged leaf-run gather against the scalar fallback."""
    rng = np.random.default_rng(seed)
    keys = rng.uniform(0.0, 1.0, size=num_tuples)
    tree = PagedBPlusTree(BufferPool(DiskManager(), capacity=pool_capacity),
                          node_capacity=node_capacity)
    tree.insert_many(keys, np.arange(num_tuples, dtype=np.int64))

    queries = range_queries((0.0, 1.0), selectivity, count=num_queries,
                            seed=seed + 1)
    ranges = [KeyRange(q.low, q.high) for q in queries]

    scalar_seconds = float("inf")
    gather_seconds = float("inf")
    scalar_results: list = []
    gather_results: list = []
    for _ in range(7):
        started = time.perf_counter()
        scalar_results = [Index.range_search_array(tree, key_range)
                          for key_range in ranges]
        scalar_seconds = min(scalar_seconds, time.perf_counter() - started)

        started = time.perf_counter()
        gather_results = [tree.range_search_array(key_range)
                          for key_range in ranges]
        gather_seconds = min(gather_seconds, time.perf_counter() - started)

    agree = all(
        np.array_equal(np.sort(scalar), np.sort(gathered))
        for scalar, gathered in zip(scalar_results, gather_results)
    )
    return PagedReadMeasurement(
        num_tuples=num_tuples,
        selectivity=selectivity,
        num_queries=num_queries,
        total_results=int(sum(len(found) for found in gather_results)),
        scalar_seconds=scalar_seconds,
        gather_seconds=gather_seconds,
        results_agree=agree,
    )
