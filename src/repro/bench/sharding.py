"""Sharded scatter/gather throughput: N shards raced against one shard.

Builds the Synthetic-Linear workload twice behind the sharded facade —
once with ``num_shards`` worker processes, once with a single worker — and
races identical ``execute_many`` range batches through both.  Both
contenders pay the same transport (pickled command batches over a pipe),
so the ratio isolates what sharding actually buys: concurrent per-shard
engine execution plus N-times-smaller per-shard indexes.

The speedup is core-count-bound by construction — on a single-CPU machine
the N worker processes time-slice one core and the ratio sits *below* 1
(same total engine work plus N-way merge overhead).  The standalone
benchmark therefore emits two records: a ``sharding_sanity`` record on
every machine (results must agree, ratio must clear a
transport-overhead floor) and the gated ≥ 2x ``sharding_parallel`` record
only where ``os.cpu_count()`` can seat every shard.

Correctness inside the race: per-query result counts are checked against
a brute-force numpy scan of the generating dataset, on both contenders —
a wrong merge (lost shard segment, duplicated outlier) shows up as
``results_agree=False``, not as a fast wrong answer.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.engine.catalog import IndexMethod
from repro.engine.query import QueryRequest, RangePredicate
from repro.sharding import ShardedDatabase, uniform_boundaries
from repro.storage.identifiers import PointerScheme
from repro.storage.schema import numeric_schema
from repro.workloads.queries import range_queries
from repro.workloads.synthetic import TABLE_NAME, generate_synthetic


def build_sharded_synthetic(num_shards: int, num_tuples: int,
                            mode: str = "process",
                            pointer_scheme: PointerScheme =
                            PointerScheme.PHYSICAL,
                            seed: int = 42) -> ShardedDatabase:
    """Synthetic-Linear behind a sharded facade, Hermit-indexed on colC.

    Mirrors :func:`repro.workloads.synthetic.load_synthetic` (primary on
    ``colA``, pre-existing B+-tree on ``colB``, Hermit on ``colC``) with
    the rows partitioned uniformly on the ``colA`` key space.
    """
    dataset = generate_synthetic(num_tuples, "linear", noise_fraction=0.01,
                                 seed=seed)
    database = ShardedDatabase(num_shards=num_shards, mode=mode,
                               pointer_scheme=pointer_scheme)
    schema = numeric_schema(TABLE_NAME, ["colA", "colB", "colC", "colD"],
                            primary_key="colA")
    boundaries = (uniform_boundaries(0.0, float(num_tuples), num_shards)
                  if num_shards > 1 else None)
    database.create_table(schema, boundaries)
    database.insert_many(TABLE_NAME, dict(dataset.columns))
    database.create_index("idx_colB", TABLE_NAME, "colB",
                          method=IndexMethod.BTREE, preexisting=True)
    database.create_index("idx_colC", TABLE_NAME, "colC",
                          method=IndexMethod.HERMIT, host_column="colB")
    return database


@dataclass
class ShardingMeasurement:
    """N-shard vs single-shard throughput on one range-batch workload."""

    workload: str
    mechanism: str
    pointer_scheme: str
    num_shards: int
    cpu_count: int
    num_tuples: int
    num_queries: int
    total_results: int
    single_seconds: float
    sharded_seconds: float
    results_agree: bool

    @property
    def sharded_vs_single(self) -> float:
        """N-shard speedup over the single-shard worker (the gated ratio)."""
        if self.sharded_seconds <= 0:
            return float("inf")
        return self.single_seconds / self.sharded_seconds

    def as_dict(self) -> dict:
        """JSON-ready representation (gated by ``check_regression.py``)."""
        return {
            "workload": self.workload,
            "mechanism": self.mechanism,
            "pointer_scheme": self.pointer_scheme,
            "num_shards": self.num_shards,
            "cpu_count": self.cpu_count,
            "num_tuples": self.num_tuples,
            "num_queries": self.num_queries,
            "total_results": self.total_results,
            "single_seconds": self.single_seconds,
            "sharded_seconds": self.sharded_seconds,
            "sharded_vs_single": self.sharded_vs_single,
            "results_agree": self.results_agree,
        }


def run_sharding_benchmark(num_shards: int = 4, num_tuples: int = 60_000,
                           selectivity: float = 1e-3, batch_size: int = 192,
                           rounds: int = 3, mode: str = "process",
                           pointer_scheme: PointerScheme =
                           PointerScheme.PHYSICAL,
                           seed: int = 42) -> ShardingMeasurement:
    """Race ``num_shards`` workers against one on identical range batches.

    Rounds are interleaved (single, then sharded, per round) and each side
    is scored by its best round.  Per-query counts are validated against a
    brute-force scan of the generating dataset on both sides.
    """
    dataset = generate_synthetic(num_tuples, "linear", noise_fraction=0.01,
                                 seed=seed)
    targets = dataset.columns["colC"]
    domain = (float(targets.min()), float(targets.max()))
    requests = [
        QueryRequest.of(TABLE_NAME,
                        RangePredicate("colC", query.low, query.high))
        for query in range_queries(domain, selectivity, count=batch_size,
                                   seed=seed)
    ]
    expected_counts = [
        int(np.count_nonzero((targets >= request.predicates[0].low)
                             & (targets <= request.predicates[0].high)))
        for request in requests
    ]

    single = build_sharded_synthetic(1, num_tuples, mode=mode,
                                     pointer_scheme=pointer_scheme,
                                     seed=seed)
    sharded = build_sharded_synthetic(num_shards, num_tuples, mode=mode,
                                      pointer_scheme=pointer_scheme,
                                      seed=seed)
    try:
        single_seconds = float("inf")
        sharded_seconds = float("inf")
        single_results: list = []
        sharded_results: list = []
        for _ in range(rounds):
            started = time.perf_counter()
            single_results = single.execute_many(requests)
            single_seconds = min(single_seconds,
                                 time.perf_counter() - started)

            started = time.perf_counter()
            sharded_results = sharded.execute_many(requests)
            sharded_seconds = min(sharded_seconds,
                                  time.perf_counter() - started)
        agree = all(
            len(one.locations) == len(many.locations) == expected
            for one, many, expected in zip(single_results, sharded_results,
                                           expected_counts)
        )
        total_results = sum(len(r.locations) for r in sharded_results)
    finally:
        single.close()
        sharded.close()
    return ShardingMeasurement(
        workload="synthetic",
        mechanism="HERMIT:range",
        pointer_scheme=pointer_scheme.value,
        num_shards=num_shards,
        cpu_count=os.cpu_count() or 1,
        num_tuples=num_tuples,
        num_queries=len(requests),
        total_results=total_results,
        single_seconds=single_seconds,
        sharded_seconds=sharded_seconds,
        results_agree=agree,
    )
