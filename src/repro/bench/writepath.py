"""Write-path microbenchmark: per-row scalar inserts vs. batched ``insert_many``.

The batched write path (one table append, one sorted merge into the primary
index, one column-oriented ``insert_many`` notification per secondary
mechanism) and the per-row path (``Database.insert``, which delegates to the
batch machinery with a batch of one) maintain exactly the same structures, so
their throughput ratio isolates the per-row interpreter overhead the batch
APIs remove — the write-side mirror of :mod:`repro.bench.hotpath`.

Every measurement builds *two* identical databases (base table + pre-existing
complete host index + one secondary mechanism), inserts the same rows through
each path, and then verifies the outcome is indistinguishable: identical
primary-index contents and identical query answers on ranges spread over the
full target domain.  A batched-write correctness bug therefore shows up as
``results_agree=False`` rather than as a silently wrong speedup.

It lives in ``repro.bench`` so the full-scale benchmark script
(``benchmarks/bench_writepath_vectorized.py``) and the tier-1 bench-smoke
test share one implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.bench.hotpath import WORKLOADS, _workload_columns
from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.engine.query import RangePredicate
from repro.storage.identifiers import PointerScheme
from repro.storage.schema import numeric_schema

MECHANISMS = ("HERMIT", "Baseline")
_VERIFY_RANGES = 5


@dataclass
class WritepathMeasurement:
    """Scalar vs. batched insert throughput of one mechanism on one workload."""

    workload: str
    mechanism: str
    pointer_scheme: str
    base_rows: int
    insert_rows: int
    scalar_seconds: float
    batched_seconds: float
    total_results: int
    results_agree: bool

    @property
    def scalar_kops(self) -> float:
        """Per-row insert throughput in thousands of rows per second."""
        return self._kops(self.scalar_seconds)

    @property
    def batched_kops(self) -> float:
        """Batched insert throughput in thousands of rows per second."""
        return self._kops(self.batched_seconds)

    @property
    def speedup_batched(self) -> float:
        """Batched-path speedup over the per-row scalar loop."""
        if self.batched_seconds <= 0:
            return float("inf")
        return self.scalar_seconds / self.batched_seconds

    def _kops(self, seconds: float) -> float:
        if seconds <= 0:
            return 0.0
        return self.insert_rows / seconds / 1e3

    def as_dict(self) -> dict:
        """JSON-ready representation (used for the perf trajectory)."""
        return {
            "workload": self.workload,
            "mechanism": self.mechanism,
            "pointer_scheme": self.pointer_scheme,
            "base_rows": self.base_rows,
            "insert_rows": self.insert_rows,
            "scalar_kops": self.scalar_kops,
            "batched_kops": self.batched_kops,
            "speedup_batched": self.speedup_batched,
            "total_results": self.total_results,
            "results_agree": self.results_agree,
        }


def build_write_database(workload: str, mechanism: str, base_columns: dict,
                         pointer_scheme: PointerScheme) -> tuple[Database, str]:
    """One database primed for the insert race.

    The database holds the workload's base rows, a pre-existing complete
    B+-tree index on the host column, and the mechanism under test on the
    target column — the paper's Figure 22 starting state reduced to a single
    new index.
    """
    table_name = f"writepath_{workload}"
    database = Database(pointer_scheme=pointer_scheme)
    database.create_table(numeric_schema(table_name,
                                         ["pk", "host", "target"],
                                         primary_key="pk"))
    database.insert_many(table_name, base_columns)
    database.create_index("idx_host", table_name, "host",
                          method=IndexMethod.BTREE, preexisting=True)
    if mechanism == "HERMIT":
        database.create_index("idx_target", table_name, "target",
                              method=IndexMethod.HERMIT, host_column="host")
    elif mechanism == "Baseline":
        database.create_index("idx_target", table_name, "target",
                              method=IndexMethod.BTREE)
    else:
        raise ValueError(
            f"unknown mechanism {mechanism!r}; use one of {MECHANISMS}"
        )
    return database, table_name


def _split_columns(workload: str, base_rows: int, insert_rows: int,
                   seed: int) -> tuple[dict, dict]:
    """(base columns, insert columns) drawn from one workload generation."""
    total = base_rows + insert_rows
    targets, hosts = _workload_columns(workload, total, seed)
    pks = np.arange(total, dtype=np.float64)
    base = {
        "pk": pks[:base_rows],
        "host": np.asarray(hosts[:base_rows], dtype=np.float64),
        "target": np.asarray(targets[:base_rows], dtype=np.float64),
    }
    tail = {
        "pk": pks[base_rows:],
        "host": np.asarray(hosts[base_rows:], dtype=np.float64),
        "target": np.asarray(targets[base_rows:], dtype=np.float64),
    }
    return base, tail


def _verify_predicates(targets: np.ndarray) -> list[tuple[float, float]]:
    """Range predicates spread across the target domain (plus a point probe)."""
    low, high = float(np.min(targets)), float(np.max(targets))
    span = max(high - low, 1.0)
    edges = np.linspace(low, high, _VERIFY_RANGES + 1)
    predicates = [(float(edges[i]), float(edges[i] + 0.1 * span))
                  for i in range(_VERIFY_RANGES)]
    middle = float(targets[len(targets) // 2])
    predicates.append((middle, middle))
    return predicates


def measure_write_path(workload: str, mechanism: str, base_rows: int,
                       insert_rows: int,
                       pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
                       seed: int = 42) -> WritepathMeasurement:
    """Race the per-row loop against one batched ``insert_many``.

    Both sides start from identical databases and insert identical rows; the
    scalar side's row dictionaries are materialised before the clock starts
    so the race times the write paths, not dict construction.
    """
    base_columns, insert_columns = _split_columns(workload, base_rows,
                                                  insert_rows, seed)
    scalar_db, table_name = build_write_database(workload, mechanism,
                                                 base_columns, pointer_scheme)
    batched_db, _ = build_write_database(workload, mechanism, base_columns,
                                         pointer_scheme)

    names = list(insert_columns)
    value_lists = [insert_columns[name].tolist() for name in names]
    rows = [dict(zip(names, values)) for values in zip(*value_lists)]

    started = time.perf_counter()
    for row in rows:
        scalar_db.insert(table_name, row)
    scalar_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batched_db.insert_many(table_name, insert_columns)
    batched_seconds = time.perf_counter() - started

    scalar_entry = scalar_db.catalog.table_entry(table_name)
    batched_entry = batched_db.catalog.table_entry(table_name)
    agree = (scalar_entry.primary_index.num_entries
             == batched_entry.primary_index.num_entries
             == base_rows + insert_rows)
    total_results = 0
    all_targets = np.concatenate([base_columns["target"],
                                  insert_columns["target"]])
    for low, high in _verify_predicates(all_targets):
        predicate = RangePredicate("target", low, high)
        scalar_locations = {
            int(loc) for loc in scalar_db.query(table_name, predicate).locations
        }
        batched_locations = {
            int(loc) for loc in batched_db.query(table_name, predicate).locations
        }
        agree = agree and scalar_locations == batched_locations
        total_results += len(batched_locations)

    return WritepathMeasurement(
        workload=workload,
        mechanism=mechanism,
        pointer_scheme=pointer_scheme.value,
        base_rows=base_rows,
        insert_rows=insert_rows,
        scalar_seconds=scalar_seconds,
        batched_seconds=batched_seconds,
        total_results=total_results,
        results_agree=agree,
    )


def run_writepath_suite(workloads=WORKLOADS, insert_rows: int = 20_000,
                        base_rows: int | None = None,
                        pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
                        seed: int = 42) -> list[WritepathMeasurement]:
    """Measure every workload × mechanism combination.

    Args:
        workloads: Workload names (see :data:`repro.bench.hotpath.WORKLOADS`).
        insert_rows: Number of rows raced through both write paths.
        base_rows: Rows pre-loaded before the indexes are built; defaults to
            ``insert_rows // 4`` (a quarter-full table, so the race measures
            mid-life maintenance rather than first-touch bulk loading).
        pointer_scheme: Tuple-identifier scheme for all indexes.
        seed: Data-generation seed.
    """
    if base_rows is None:
        base_rows = max(1_000, insert_rows // 4)
    measurements: list[WritepathMeasurement] = []
    for workload in workloads:
        for mechanism in MECHANISMS:
            measurements.append(measure_write_path(
                workload, mechanism, base_rows, insert_rows,
                pointer_scheme=pointer_scheme, seed=seed,
            ))
    return measurements
