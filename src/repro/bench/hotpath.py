"""Hot-path microbenchmark: scalar seed path vs. vectorized lookup path.

The vectorized Hermit/Baseline lookup pipeline (array host probes,
``np.unique`` dedup, batched primary resolution, fancy-index validation) and
the original object-at-a-time seed path (``lookup_range_scalar``) answer the
same queries, so their throughput ratio isolates exactly the interpreter
overhead the vectorization removed.  This module builds the three paper
workloads (Stock, Sensor, Synthetic-Linear) as bare tables + mechanisms,
measures all three paths (scalar per-query, vectorized per-query, vectorized
batch) and checks that every path returns the identical result set.

It lives in ``repro.bench`` rather than ``benchmarks/`` so that both the
full-scale benchmark script (``benchmarks/bench_hotpath_vectorized.py``) and
the tier-1 bench-smoke test can share one implementation — the smoke test is
what keeps the vectorized path from silently regressing to the scalar
fallback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.secondary import BaselineSecondaryIndex
from repro.core.config import TRSTreeConfig
from repro.core.hermit import HermitIndex
from repro.index.base import Index
from repro.index.bptree import BPlusTree
from repro.index.sorted_column import SortedColumnIndex
from repro.storage.identifiers import PointerScheme
from repro.storage.schema import numeric_schema
from repro.storage.table import Table
from repro.workloads.queries import RangeQuery, range_queries
from repro.workloads.sensor import generate_sensor, sensor_column
from repro.workloads.stock import generate_stock, high_column, low_column
from repro.workloads.synthetic import generate_synthetic

WORKLOADS = ("stock", "sensor", "synthetic")
HOST_INDEX_KINDS = ("btree", "sorted")


@dataclass
class HotpathSetup:
    """One built workload: base table plus both mechanisms."""

    workload: str
    table: Table
    hermit: HermitIndex
    baseline: BaselineSecondaryIndex
    domain: tuple[float, float]
    num_tuples: int

    @property
    def mechanisms(self) -> dict[str, object]:
        """Label → mechanism, as the figure helpers expose them."""
        return {"HERMIT": self.hermit, "Baseline": self.baseline}


@dataclass
class HotpathMeasurement:
    """Scalar vs. vectorized throughput of one mechanism on one workload."""

    workload: str
    mechanism: str
    pointer_scheme: str
    host_index: str
    num_tuples: int
    selectivity: float
    num_queries: int
    total_results: int
    scalar_seconds: float
    vectorized_seconds: float
    batched_seconds: float
    results_agree: bool

    @property
    def scalar_kops(self) -> float:
        """Scalar-path throughput in thousands of queries per second."""
        return self._kops(self.scalar_seconds)

    @property
    def vectorized_kops(self) -> float:
        """Vectorized per-query throughput in K queries per second."""
        return self._kops(self.vectorized_seconds)

    @property
    def batched_kops(self) -> float:
        """Batch-API throughput in K queries per second."""
        return self._kops(self.batched_seconds)

    @property
    def speedup_vectorized(self) -> float:
        """Per-query vectorized speedup over the scalar seed path."""
        if self.vectorized_seconds <= 0:
            return float("inf")
        return self.scalar_seconds / self.vectorized_seconds

    @property
    def speedup_batched(self) -> float:
        """Batch-API speedup over the scalar seed path."""
        if self.batched_seconds <= 0:
            return float("inf")
        return self.scalar_seconds / self.batched_seconds

    def _kops(self, seconds: float) -> float:
        if seconds <= 0:
            return 0.0
        return self.num_queries / seconds / 1e3

    def as_dict(self) -> dict:
        """JSON-ready representation (used for the perf trajectory)."""
        return {
            "workload": self.workload,
            "mechanism": self.mechanism,
            "pointer_scheme": self.pointer_scheme,
            "host_index": self.host_index,
            "num_tuples": self.num_tuples,
            "selectivity": self.selectivity,
            "num_queries": self.num_queries,
            "total_results": self.total_results,
            "scalar_kops": self.scalar_kops,
            "vectorized_kops": self.vectorized_kops,
            "batched_kops": self.batched_kops,
            "speedup_vectorized": self.speedup_vectorized,
            "speedup_batched": self.speedup_batched,
            "results_agree": self.results_agree,
        }


def _workload_columns(workload: str, num_tuples: int,
                      seed: int) -> tuple[np.ndarray, np.ndarray]:
    """(target, host) column pair for one paper workload."""
    if workload == "stock":
        dataset = generate_stock(num_stocks=1, num_days=num_tuples, seed=seed)
        return dataset.columns[high_column(0)], dataset.columns[low_column(0)]
    if workload == "sensor":
        dataset = generate_sensor(num_tuples=num_tuples, num_sensors=4,
                                  seed=seed)
        return dataset.columns[sensor_column(0)], dataset.columns["average"]
    if workload == "synthetic":
        dataset = generate_synthetic(num_tuples, "linear",
                                     noise_fraction=0.01, seed=seed)
        return dataset.columns["colC"], dataset.columns["colB"]
    raise ValueError(f"unknown workload {workload!r}; use one of {WORKLOADS}")


def build_hotpath_setup(workload: str, num_tuples: int,
                        pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
                        host_index_kind: str = "btree",
                        trs_config: TRSTreeConfig | None = None,
                        seed: int = 42) -> HotpathSetup:
    """Build one workload table with Hermit and Baseline mechanisms.

    Args:
        workload: ``"stock"``, ``"sensor"`` or ``"synthetic"``.
        num_tuples: Number of rows.
        pointer_scheme: Tuple-identifier scheme for both mechanisms.
        host_index_kind: ``"btree"`` (in-memory B+-tree) or ``"sorted"``
            (the searchsorted-backed :class:`SortedColumnIndex`).
        trs_config: TRS-Tree parameter override.
        seed: Data-generation seed.
    """
    targets, hosts = _workload_columns(workload, num_tuples, seed)
    table = Table(numeric_schema(f"hotpath_{workload}",
                                 ["pk", "host", "target"], primary_key="pk"))
    table.insert_many({
        "pk": np.arange(num_tuples, dtype=np.float64),
        "host": np.asarray(hosts, dtype=np.float64),
        "target": np.asarray(targets, dtype=np.float64),
    })
    slots, pks, host_values = table.project(["pk", "host"])
    tids = slots if pointer_scheme is PointerScheme.PHYSICAL else pks

    host_index: Index
    if host_index_kind == "sorted":
        host_index = SortedColumnIndex()
        host_index.load_arrays(host_values, tids)
    elif host_index_kind == "btree":
        host_index = BPlusTree()
        host_index.bulk_load(
            (float(h), t) for h, t in zip(host_values.tolist(), tids.tolist())
        )
    else:
        raise ValueError(
            f"unknown host index kind {host_index_kind!r}; "
            f"use one of {HOST_INDEX_KINDS}"
        )

    primary = None
    if pointer_scheme.needs_primary_lookup:
        primary = BPlusTree()
        primary.bulk_load(
            (float(pk), int(s)) for pk, s in zip(pks.tolist(), slots.tolist())
        )

    hermit = HermitIndex(table, "target", "host", host_index,
                         primary_index=primary, pointer_scheme=pointer_scheme,
                         config=trs_config or TRSTreeConfig())
    hermit.build()
    baseline = BaselineSecondaryIndex(table, "target", primary_index=primary,
                                      pointer_scheme=pointer_scheme)
    baseline.build()
    return HotpathSetup(
        workload=workload, table=table, hermit=hermit, baseline=baseline,
        domain=(float(targets.min()), float(targets.max())),
        num_tuples=num_tuples,
    )


def measure_mechanism(setup: HotpathSetup, label: str,
                      queries: list[RangeQuery], selectivity: float,
                      pointer_scheme: PointerScheme,
                      host_index_kind: str) -> HotpathMeasurement:
    """Time the scalar, vectorized and batch paths of one mechanism.

    All three paths run the identical query list; their result sets are
    compared query by query, so a vectorized-path correctness bug shows up
    as ``results_agree=False`` rather than as a silently wrong speedup.
    """
    mechanism = setup.mechanisms[label]

    started = time.perf_counter()
    scalar_results = [mechanism.lookup_range_scalar(q.low, q.high)
                      for q in queries]
    scalar_seconds = time.perf_counter() - started

    started = time.perf_counter()
    vectorized_results = [mechanism.lookup_range(q.low, q.high)
                          for q in queries]
    vectorized_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batch = mechanism.lookup_range_many([(q.low, q.high) for q in queries])
    batched_seconds = time.perf_counter() - started

    agree = all(
        set(scalar.locations) == set(vectorized.locations) == set(batched)
        for scalar, vectorized, batched in zip(
            scalar_results, vectorized_results, batch.locations_per_query
        )
    )
    return HotpathMeasurement(
        workload=setup.workload,
        mechanism=label,
        pointer_scheme=pointer_scheme.value,
        host_index=host_index_kind,
        num_tuples=setup.num_tuples,
        selectivity=selectivity,
        num_queries=len(queries),
        total_results=batch.total_results,
        scalar_seconds=scalar_seconds,
        vectorized_seconds=vectorized_seconds,
        batched_seconds=batched_seconds,
        results_agree=agree,
    )


def run_hotpath_suite(workloads=WORKLOADS, num_tuples: int = 20_000,
                      selectivity: float = 1e-3, num_queries: int = 30,
                      pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
                      host_index_kind: str = "btree",
                      seed: int = 42) -> list[HotpathMeasurement]:
    """Measure every workload × mechanism combination.

    Returns one :class:`HotpathMeasurement` per (workload, mechanism) pair.
    """
    measurements: list[HotpathMeasurement] = []
    for workload in workloads:
        setup = build_hotpath_setup(workload, num_tuples,
                                    pointer_scheme=pointer_scheme,
                                    host_index_kind=host_index_kind, seed=seed)
        queries = range_queries(setup.domain, selectivity,
                                count=num_queries, seed=seed)
        for label in ("HERMIT", "Baseline"):
            measurements.append(measure_mechanism(
                setup, label, queries, selectivity, pointer_scheme,
                host_index_kind,
            ))
    return measurements
