"""Batched query throughput: ``query_many`` raced against a per-query loop.

The batched read API's contract is that a batch of B queries through
``Database.query_many`` / ``query_conjunctive_many`` returns exactly the
rows of B per-query ``Database.query`` / ``query_conjunctive`` calls while
amortising everything above the mechanisms — planning (one planner visit
per plan group), candidate probes (one segmented host-index pass), pointer
resolution (one primary pass), validation (one mask pass per predicate
column) and result assembly.  This module builds the Synthetic workload
inside a full :class:`~repro.engine.database.Database` three times — the
target column served by a HERMIT index, a Baseline B+-tree, or a
Correlation Map — and races both APIs on four batch classes:

* ``range``  — selective range predicates on colC (the gated ≥ 3x class);
* ``point``  — point probes on stored colC values;
* ``conjunctive`` — two-column (colC AND colB) conjunctions through
  ``query_conjunctive_many``;
* ``mixed``  — interleaved point and range predicates on colC, which spans
  two plan groups (different selectivity buckets) in one batch.

Every race replays its query list over several interleaved rounds and is
scored by the best round; batch and loop results are compared query by
query, so a batched-executor correctness bug shows up as
``results_agree=False`` rather than a wrong speedup.

It lives in ``repro.bench`` so the standalone benchmark
(``benchmarks/bench_query_throughput.py``) and the tier-1 bench-smoke race
share one implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.engine.query import RangePredicate
from repro.storage.identifiers import PointerScheme
from repro.workloads.queries import range_queries
from repro.workloads.synthetic import generate_synthetic, load_synthetic

BATCH_CLASSES = ("range", "point", "conjunctive", "mixed")
MECHANISM_LABELS = ("HERMIT", "Baseline", "Sorted", "CM")

# CM bucketisation on the Synthetic target domain, matching the appendix
# benchmark's finest setting (bench_fig27_30: CM-2^12 target buckets) — the
# coarser settings over-fetch so heavily that the race spends its whole
# budget validating CM false positives instead of measuring batching.
_CM_TARGET_BUCKET = float(2 ** 12)
_CM_HOST_BUCKET = float(2 ** 12)


@dataclass
class QueryThroughputSetup:
    """One Synthetic database whose target column one mechanism serves."""

    database: Database
    table_name: str
    mechanism: str
    target_domain: tuple[float, float]
    stored_targets: np.ndarray
    num_tuples: int


def build_query_throughput_setup(
    mechanism: str, num_tuples: int,
    pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
    seed: int = 42,
) -> QueryThroughputSetup:
    """Load Synthetic-Linear and index colC with exactly one mechanism.

    The planner then has no rival index on the target column, so the race
    measures the batch amortisation of *that* mechanism's pipeline (the
    pre-existing colB host index still serves the conjunctive class's
    second predicate).
    """
    dataset = generate_synthetic(num_tuples, "linear", noise_fraction=0.01,
                                 seed=seed)
    database = Database(pointer_scheme=pointer_scheme)
    table_name = load_synthetic(database, dataset)
    if mechanism == "HERMIT":
        database.create_index("idx_colC", table_name, "colC",
                              method=IndexMethod.HERMIT, host_column="colB")
    elif mechanism == "Baseline":
        database.create_index("idx_colC", table_name, "colC",
                              method=IndexMethod.BTREE)
    elif mechanism == "Sorted":
        database.create_index("idx_colC", table_name, "colC",
                              method=IndexMethod.SORTED_COLUMN)
    elif mechanism == "CM":
        database.create_index("idx_colC", table_name, "colC",
                              method=IndexMethod.CORRELATION_MAP,
                              host_column="colB",
                              cm_target_bucket_width=_CM_TARGET_BUCKET,
                              cm_host_bucket_width=_CM_HOST_BUCKET)
    else:
        raise ValueError(f"unknown mechanism {mechanism!r}; "
                         f"use one of {MECHANISM_LABELS}")
    targets = dataset.columns["colC"]
    return QueryThroughputSetup(
        database=database, table_name=table_name, mechanism=mechanism,
        target_domain=(float(targets.min()), float(targets.max())),
        stored_targets=targets, num_tuples=num_tuples,
    )


@dataclass
class QueryThroughputMeasurement:
    """Batched-vs-loop throughput of one (mechanism, batch class) pair."""

    batch_class: str
    mechanism: str
    pointer_scheme: str
    num_tuples: int
    selectivity: float
    num_queries: int
    total_results: int
    loop_seconds: float
    batched_seconds: float
    results_agree: bool

    @property
    def loop_kops(self) -> float:
        """Per-query-loop throughput in K queries per second."""
        return self._kops(self.loop_seconds)

    @property
    def batched_kops(self) -> float:
        """Batch-API throughput in K queries per second."""
        return self._kops(self.batched_seconds)

    @property
    def batched_vs_loop(self) -> float:
        """Batch-API speedup over the per-query loop (the gated ratio)."""
        if self.batched_seconds <= 0:
            return float("inf")
        return self.loop_seconds / self.batched_seconds

    def _kops(self, seconds: float) -> float:
        if seconds <= 0:
            return 0.0
        return self.num_queries / seconds / 1e3

    def as_dict(self) -> dict:
        """JSON-ready representation (gated by ``check_regression.py``)."""
        return {
            "workload": "synthetic",
            "mechanism": f"{self.mechanism}:{self.batch_class}",
            "pointer_scheme": self.pointer_scheme,
            "num_tuples": self.num_tuples,
            "selectivity": self.selectivity,
            "num_queries": self.num_queries,
            "total_results": self.total_results,
            "loop_kops": self.loop_kops,
            "batched_kops": self.batched_kops,
            "batched_vs_loop": self.batched_vs_loop,
            "results_agree": self.results_agree,
        }


def _batch_queries(setup: QueryThroughputSetup, batch_class: str,
                   selectivity: float, batch_size: int, seed: int):
    """Build one batch of the requested class, plus its execution mode."""
    ranges = range_queries(setup.target_domain, selectivity,
                           count=batch_size, seed=seed)
    if batch_class == "range":
        return [RangePredicate("colC", q.low, q.high) for q in ranges], False
    if batch_class == "point":
        rng = np.random.default_rng(seed + 1)
        values = rng.choice(setup.stored_targets, size=batch_size,
                            replace=False)
        return [RangePredicate("colC", float(v), float(v))
                for v in values], False
    if batch_class == "conjunctive":
        # colB = 2*colC + 10; anchor the host window on the upper half of
        # the image so the conjunction stays non-empty and the colC side
        # stays the selective one (the planner bench's shape).  The host
        # window is kept at 2x the image — wide enough that the window
        # never collapses to a point, narrow enough that a plan driving
        # through the host index is not dominated by the probe itself
        # (this race measures batch amortisation, not wide-scan walks).
        conjunctions = []
        for target in ranges:
            image_low = 2.0 * target.low + 10.0
            image_high = 2.0 * target.high + 10.0
            host_low = (image_low + image_high) / 2.0
            host_high = host_low + 2.0 * (image_high - image_low)
            conjunctions.append([
                RangePredicate("colC", target.low, target.high),
                RangePredicate("colB", host_low, host_high),
            ])
        return conjunctions, True
    if batch_class == "mixed":
        rng = np.random.default_rng(seed + 2)
        values = rng.choice(setup.stored_targets, size=batch_size // 2,
                            replace=False)
        predicates = [RangePredicate("colC", q.low, q.high)
                      for q in ranges[: batch_size - values.size]]
        predicates.extend(RangePredicate("colC", float(v), float(v))
                          for v in values)
        rng.shuffle(predicates)
        return predicates, False
    raise ValueError(f"unknown batch class {batch_class!r}; "
                     f"use one of {BATCH_CLASSES}")


def measure_batch_class(setup: QueryThroughputSetup, batch_class: str,
                        selectivity: float, batch_size: int,
                        pointer_scheme: PointerScheme, rounds: int = 5,
                        seed: int = 42) -> QueryThroughputMeasurement:
    """Race ``query_many`` against the per-query loop on one batch class.

    Rounds are interleaved (loop, then batch, per round) and each side is
    scored by its best round, so background load hits both contenders
    equally and the plan cache is warm on both sides after round one.
    """
    database, table_name = setup.database, setup.table_name
    queries, conjunctive = _batch_queries(setup, batch_class, selectivity,
                                          batch_size, seed)

    loop_seconds = float("inf")
    batched_seconds = float("inf")
    loop_results: list = []
    batch_results: list = []
    for _ in range(rounds):
        started = time.perf_counter()
        if conjunctive:
            loop_results = [database.query_conjunctive(table_name, query)
                            for query in queries]
        else:
            loop_results = [database.query(table_name, predicate)
                            for predicate in queries]
        loop_seconds = min(loop_seconds, time.perf_counter() - started)

        started = time.perf_counter()
        if conjunctive:
            batch_results = database.query_conjunctive_many(table_name,
                                                            queries)
        else:
            batch_results = database.query_many(table_name, queries)
        batched_seconds = min(batched_seconds,
                              time.perf_counter() - started)

    if conjunctive:
        agree = all(np.array_equal(batched.locations, looped.locations)
                    for batched, looped in zip(batch_results, loop_results))
        total_results = int(sum(len(r.locations) for r in batch_results))
    else:
        agree = all(batched.locations == looped.locations
                    for batched, looped in zip(batch_results, loop_results))
        total_results = sum(len(r.locations) for r in batch_results)
    return QueryThroughputMeasurement(
        batch_class=batch_class,
        mechanism=setup.mechanism,
        pointer_scheme=pointer_scheme.value,
        num_tuples=setup.num_tuples,
        selectivity=selectivity,
        num_queries=len(queries),
        total_results=total_results,
        loop_seconds=loop_seconds,
        batched_seconds=batched_seconds,
        results_agree=agree,
    )


def run_query_throughput_suite(
    num_tuples: int = 60_000, selectivity: float = 1e-3,
    batch_size: int = 256, rounds: int = 5,
    pointer_schemes: tuple[PointerScheme, ...] = (PointerScheme.PHYSICAL,
                                                  PointerScheme.LOGICAL),
    mechanisms: tuple[str, ...] = MECHANISM_LABELS,
    batch_classes: tuple[str, ...] = BATCH_CLASSES,
    seed: int = 42,
) -> list[QueryThroughputMeasurement]:
    """Race every (pointer scheme × mechanism × batch class) combination."""
    measurements: list[QueryThroughputMeasurement] = []
    for pointer_scheme in pointer_schemes:
        for mechanism in mechanisms:
            setup = build_query_throughput_setup(
                mechanism, num_tuples, pointer_scheme=pointer_scheme,
                seed=seed,
            )
            for batch_class in batch_classes:
                measurements.append(measure_batch_class(
                    setup, batch_class, selectivity, batch_size,
                    pointer_scheme, rounds=rounds, seed=seed,
                ))
    return measurements
