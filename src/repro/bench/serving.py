"""Open-loop serving benchmark: the coalescing server vs. per-call threads.

The serving front end's contract is that N independent clients get *more*
sustained throughput by funnelling their requests through one coalescing
:class:`~repro.serving.Server` than by each calling the engine directly —
the window trades a bounded sliver of latency for the batch API's
amortisation (one planner visit and O(1) array passes per plan group
instead of full per-call dispatch).

The benchmark is **open loop**: a merged arrival schedule is fixed up
front from ``num_clients`` simulated client streams at an offered rate
deliberately above the engine's calibrated per-call capacity (``overload``
times it), and both contenders face the *same* schedule, driven by the
same bounded pool of issuing threads (``issuing_threads``, each
multiplexing several client streams in arrival order — simulated clients
are streams in the schedule, not OS threads, so the client count scales
without drowning the measurement in GIL churn):

* **per-call** — an issuing thread blocks on ``Database.execute`` for
  each arrival (falling behind schedule when the engine saturates, exactly
  like a sync worker pool fronting the clients);
* **coalesced** — an issuing thread hands the arrival to the server and
  moves on; a dedicated collector thread consumes the futures in issue
  order and timestamps each completion (the analogue of a real async
  client's completion loop, kept off the issue path so completion
  bookkeeping is not billed to the server's worker).

Sustained QPS is completions over the span from the schedule's start to
the last completion; latency is completion minus *scheduled* arrival (so
queueing delay counts, which is what makes an open-loop p99 honest).
Rounds are interleaved and each side is scored by its best round; the two
sides' per-request results are compared location list by location list, so
a coalescing correctness bug shows up as ``results_agree=False`` rather
than as a throughput win.

Lives in ``repro.bench`` so the standalone benchmark
(``benchmarks/bench_serving.py``) and the tier-1 smoke share one
implementation.
"""

from __future__ import annotations

import statistics
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.cache.result_cache import ResultCacheConfig
from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.engine.query import QueryRequest
from repro.errors import ConfigurationError
from repro.serving import Server, ServerConfig, ServerStats
from repro.workloads.queries import range_queries
from repro.workloads.synthetic import generate_synthetic, load_synthetic


@dataclass
class ServingSetup:
    """One Synthetic database served by a sorted-column index on colC."""

    database: Database
    table_name: str
    stored_targets: np.ndarray
    target_domain: tuple[float, float]
    num_tuples: int


def build_serving_setup(num_tuples: int, seed: int = 42,
                        result_cache: ResultCacheConfig | None = None,
                        ) -> ServingSetup:
    """Load Synthetic-Linear and index colC with the sorted-column mechanism.

    The array-native access path keeps per-query mechanism cost low, which
    is the regime where serving dispatch (planning, locking, result
    assembly) dominates per-call cost — i.e. where coalescing has real
    work to amortise.

    ``result_cache`` attaches an epoch-keyed result cache to the database
    for :func:`measure_result_cache`; it arrives *disabled* so the plain
    coalesced-vs-per-call race stays a measurement of coalescing, not of
    result reuse — the cache race enables it per round.
    """
    dataset = generate_synthetic(num_tuples, "linear", noise_fraction=0.01,
                                 seed=seed)
    database = Database(result_cache=result_cache)
    if database.result_cache is not None:
        database.result_cache.enabled = False
    table_name = load_synthetic(database, dataset)
    database.create_index("idx_colC", table_name, "colC",
                          method=IndexMethod.SORTED_COLUMN)
    targets = dataset.columns["colC"]
    return ServingSetup(
        database=database, table_name=table_name, stored_targets=targets,
        target_domain=(float(targets.min()), float(targets.max())),
        num_tuples=num_tuples,
    )


@dataclass
class ServingMeasurement:
    """Coalesced-vs-per-call outcome of one open-loop run."""

    num_tuples: int
    num_clients: int
    num_requests: int
    offered_qps: float
    percall_qps: float
    coalesced_qps: float
    percall_p99_ms: float
    coalesced_p99_ms: float
    percall_p50_ms: float
    coalesced_p50_ms: float
    mean_batch: float
    max_batch: int
    results_agree: bool
    # Request-mix parameters, recorded so emitted records are
    # self-describing across trajectory runs.
    point_fraction: float = 0.5
    selectivity: float = 2e-3
    mix: str = "uniform"

    @property
    def coalesced_vs_percall(self) -> float:
        """Sustained-QPS ratio of the server over per-call (the gated one)."""
        if self.percall_qps <= 0:
            return float("inf")
        return self.coalesced_qps / self.percall_qps

    def as_dict(self) -> dict:
        """JSON-ready representation (gated by ``check_regression.py``)."""
        return {
            "workload": "synthetic",
            "mechanism": "Sorted:serving",
            "pointer_scheme": "physical",
            "num_tuples": self.num_tuples,
            "num_clients": self.num_clients,
            "num_requests": self.num_requests,
            "mix": self.mix,
            "point_fraction": self.point_fraction,
            "selectivity": self.selectivity,
            "offered_qps": self.offered_qps,
            "percall_qps": self.percall_qps,
            "coalesced_qps": self.coalesced_qps,
            "percall_p99_ms": self.percall_p99_ms,
            "coalesced_p99_ms": self.coalesced_p99_ms,
            "percall_p50_ms": self.percall_p50_ms,
            "coalesced_p50_ms": self.coalesced_p50_ms,
            "mean_batch": self.mean_batch,
            "max_batch": self.max_batch,
            "coalesced_vs_percall": self.coalesced_vs_percall,
            "results_agree": self.results_agree,
        }


def _build_requests(setup: ServingSetup, num_requests: int,
                    point_fraction: float, selectivity: float,
                    seed: int, mix: str = "uniform", zipf_s: float = 1.1,
                    distinct: int | None = None) -> list[QueryRequest]:
    """An interleaved point/range request mix on the served column.

    ``mix="uniform"`` draws every request independently (the original
    behaviour: virtually no repeats at CI scale).  ``mix="zipfian"``
    builds a pool of ``distinct`` unique requests and draws
    ``num_requests`` of them with Zipf(``zipf_s``) rank weights — the
    skewed hot-query traffic the result cache exists for.
    """
    if mix == "zipfian":
        pool_size = distinct if distinct is not None else 192
        pool = _build_requests(setup, pool_size, point_fraction, selectivity,
                               seed, mix="uniform")
        ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
        weights = ranks ** -zipf_s
        rng = np.random.default_rng(seed + 7)
        draws = rng.choice(len(pool), size=num_requests,
                           p=weights / weights.sum())
        return [pool[index] for index in draws]
    if mix != "uniform":
        raise ConfigurationError(f"unknown request mix {mix!r}")
    rng = np.random.default_rng(seed)
    num_points = int(num_requests * point_fraction)
    values = rng.choice(setup.stored_targets, size=num_points, replace=True)
    ranges = range_queries(setup.target_domain, selectivity,
                           count=num_requests - num_points, seed=seed + 1)
    requests = [QueryRequest.point(setup.table_name, "colC", float(v))
                for v in values]
    requests.extend(QueryRequest.range(setup.table_name, "colC", q.low, q.high)
                    for q in ranges)
    rng.shuffle(requests)  # type: ignore[arg-type]
    return requests


def _client_schedules(num_clients: int, num_requests: int,
                      offered_qps: float,
                      issuing_threads: int) -> list[list[tuple[int, float]]]:
    """Stagger per-client streams and multiplex them onto issuing threads.

    Client ``k`` issues every ``num_clients / offered_qps`` seconds with a
    ``k/num_clients`` phase offset, so the merged stream is a uniform
    arrival process at ``offered_qps``.  Streams are then dealt round-robin
    to ``issuing_threads`` driver threads, each of which replays its
    streams' arrivals in time order.
    """
    interval = num_clients / offered_qps
    streams: list[list[tuple[int, float]]] = [[] for _ in range(num_clients)]
    for index in range(num_requests):
        client = index % num_clients
        position = index // num_clients
        offset = (position + client / num_clients) * interval
        streams[client].append((index, offset))
    merged: list[list[tuple[int, float]]] = [[] for _ in
                                             range(issuing_threads)]
    for client, stream in enumerate(streams):
        merged[client % issuing_threads].extend(stream)
    for schedule in merged:
        schedule.sort(key=lambda item: item[1])
    return merged


def _run_open_loop(schedules: list[list[tuple[int, float]]],
                   num_requests: int, issue, drain) -> tuple[float, np.ndarray]:
    """Drive one open-loop round; returns (sustained QPS, latency array).

    ``issue(index, scheduled_time)`` is called on the owning client thread
    at (or after) each scheduled arrival and must arrange for
    ``done_times[index]`` / ``results`` to be filled; ``drain()`` blocks
    until every completion has landed.
    """
    start_holder = [0.0]
    barrier = threading.Barrier(len(schedules) + 1)

    def client(schedule: list[tuple[int, float]]) -> None:
        barrier.wait()
        start = start_holder[0]
        for index, offset in schedule:
            target = start + offset
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            issue(index, target)

    threads = [threading.Thread(target=client, args=(schedule,), daemon=True)
               for schedule in schedules if schedule]
    for thread in threads:
        thread.start()
    # A small lead so every client sees the same t=0 after the barrier.
    start_holder[0] = time.perf_counter() + 0.005
    barrier.wait()
    for thread in threads:
        thread.join()
    done_times, latencies = drain()
    elapsed = max(float(done_times.max()) - start_holder[0], 1e-9)
    return num_requests / elapsed, latencies


def _coalesced_round(database, requests: list[QueryRequest],
                     schedules: list[list[tuple[int, float]]],
                     num_requests: int, results_out: list,
                     config: ServerConfig | None,
                     ) -> tuple[float, np.ndarray, ServerStats]:
    """One open-loop round through the coalescing server.

    Issues hand the request to the server and move on; a dedicated
    collector thread consumes the futures in issue order and timestamps
    each completion (see the module docstring for why stamping must stay
    off the issue path).  Returns (sustained QPS, latencies, server
    stats).
    """
    done_times = np.zeros(num_requests)
    latencies = np.zeros(num_requests)
    pending: list = []
    with Server(database, config) as server:

        def issue_coalesced(index: int, target: float) -> None:
            # Deliberately minimal: a real async client hands the
            # request off and services completions elsewhere.  Stamping
            # (or done-callbacks) here would bill completion work to the
            # issue path and to the server's worker thread, distorting
            # both sides of the race.
            pending.append((index, target, server.submit(requests[index])))

        def collect() -> None:
            # Completion loop: consume futures in issue order, blocking
            # only at the head of the line (a resolved batch is then
            # drained on the no-lock fast path).  Stamps are collector
            # observation times, which lag true completion by at most
            # the drain cost of one batch — a conservative skew that
            # inflates coalesced latency, never deflates it.
            position = 0
            while position < num_requests:
                if position == len(pending):
                    time.sleep(0.0002)
                    continue
                index, target, future = pending[position]
                results_out[index] = future.result()
                now = time.perf_counter()
                done_times[index] = now
                latencies[index] = now - target
                position += 1

        collector = threading.Thread(target=collect, daemon=True)
        collector.start()

        def drain_coalesced() -> tuple[np.ndarray, np.ndarray]:
            collector.join()
            return done_times, latencies

        qps, latencies = _run_open_loop(schedules, num_requests,
                                        issue_coalesced, drain_coalesced)
        stats = server.stats()
    return qps, latencies, stats


def measure_serving(setup: ServingSetup, num_clients: int = 64,
                    requests_per_client: int = 40,
                    point_fraction: float = 0.5, selectivity: float = 2e-3,
                    overload: float = 3.0, rounds: int = 5,
                    issuing_threads: int | None = None, seed: int = 42,
                    config: ServerConfig | None = None,
                    ) -> tuple[ServingMeasurement, ServerStats]:
    """Race the coalescing server against per-call threads, open loop.

    The offered rate is ``overload`` times the engine's calibrated serial
    per-call capacity, so both contenders are saturated and the measured
    quantity is *sustained* throughput, not arrival-rate tracking.  Returns
    the measurement plus the server stats of the best coalesced round.
    """
    database = setup.database
    num_requests = num_clients * requests_per_client
    if issuing_threads is None:
        # A small pool is deliberate: each driver thread multiplexes many
        # client streams, so arrival fidelity is preserved while the GIL
        # churn of per-arrival wakeups stays off the measurement (more
        # drivers slow *both* contenders but the coalescing server, whose
        # worker needs long GIL slices for its batch passes, suffers more).
        issuing_threads = min(4, num_clients)
    requests = _build_requests(setup, num_requests, point_fraction,
                               selectivity, seed)

    # Calibrate serial per-call capacity (also warms the plan cache).
    sample = requests[: min(512, num_requests)]
    started = time.perf_counter()
    for request in sample:
        database.execute(request)
    serial_qps = len(sample) / (time.perf_counter() - started)
    offered_qps = overload * serial_qps
    schedules = _client_schedules(num_clients, num_requests, offered_qps,
                                  issuing_threads)

    percall_results: list = [None] * num_requests
    coalesced_results: list = [None] * num_requests
    best_percall = (0.0, None)
    best_coalesced = (0.0, None, None)

    for _ in range(rounds):
        done_times = np.zeros(num_requests)
        latencies = np.zeros(num_requests)

        def issue_percall(index: int, target: float) -> None:
            percall_results[index] = database.execute(requests[index])
            now = time.perf_counter()
            done_times[index] = now
            latencies[index] = now - target

        qps, _ = _run_open_loop(schedules, num_requests, issue_percall,
                                lambda: (done_times, latencies))
        if qps > best_percall[0]:
            best_percall = (qps, latencies.copy())

        qps, latencies, stats = _coalesced_round(
            database, requests, schedules, num_requests, coalesced_results,
            config)
        if qps > best_coalesced[0]:
            best_coalesced = (qps, latencies.copy(), stats)

    agree = all(
        percall is not None and coalesced is not None
        and percall.locations == coalesced.locations
        for percall, coalesced in zip(percall_results, coalesced_results)
    )
    percall_lat = best_percall[1]
    coalesced_lat = best_coalesced[1]
    stats = best_coalesced[2]
    measurement = ServingMeasurement(
        num_tuples=setup.num_tuples, num_clients=num_clients,
        num_requests=num_requests, offered_qps=offered_qps,
        percall_qps=best_percall[0], coalesced_qps=best_coalesced[0],
        percall_p99_ms=float(np.percentile(percall_lat, 99)) * 1e3,
        coalesced_p99_ms=float(np.percentile(coalesced_lat, 99)) * 1e3,
        percall_p50_ms=float(np.percentile(percall_lat, 50)) * 1e3,
        coalesced_p50_ms=float(np.percentile(coalesced_lat, 50)) * 1e3,
        mean_batch=stats.mean_batch, max_batch=stats.max_batch,
        results_agree=agree,
        point_fraction=point_fraction, selectivity=selectivity,
    )
    return measurement, stats


@dataclass
class ResultCacheMeasurement:
    """Cache-on vs cache-off outcome of one coalesced open-loop race."""

    num_tuples: int
    num_clients: int
    num_requests: int
    mix: str
    zipf_s: float
    distinct_requests: int
    point_fraction: float
    selectivity: float
    through_server: bool
    offered_qps: float
    uncached_qps: float
    cached_qps: float
    cached_vs_uncached: float
    hit_ratio: float
    cache_entries: int
    cache_bytes: int
    results_agree: bool

    def as_dict(self) -> dict:
        """JSON-ready representation (gated by ``check_regression.py``)."""
        return {
            "workload": f"synthetic-{self.mix}",
            "mechanism": "Sorted:result-cache",
            "pointer_scheme": "physical",
            "num_tuples": self.num_tuples,
            "num_clients": self.num_clients,
            "num_requests": self.num_requests,
            "mix": self.mix,
            "zipf_s": self.zipf_s,
            "distinct_requests": self.distinct_requests,
            "point_fraction": self.point_fraction,
            "selectivity": self.selectivity,
            "through_server": self.through_server,
            "offered_qps": self.offered_qps,
            "uncached_qps": self.uncached_qps,
            "cached_qps": self.cached_qps,
            "hit_ratio": self.hit_ratio,
            "cache_entries": self.cache_entries,
            "cache_bytes": self.cache_bytes,
            "cached_vs_uncached": self.cached_vs_uncached,
            "results_agree": self.results_agree,
        }


def measure_result_cache(setup: ServingSetup, num_clients: int = 64,
                         requests_per_client: int = 40,
                         mix: str = "zipfian", zipf_s: float = 1.1,
                         distinct_requests: int = 192,
                         point_fraction: float = 0.25,
                         selectivity: float = 8e-3, overload: float = 8.0,
                         rounds: int = 3, issuing_threads: int | None = None,
                         seed: int = 42, config: ServerConfig | None = None,
                         through_server: bool = True,
                         ) -> ResultCacheMeasurement:
    """Race cache-on vs cache-off over the same engine, paired rounds.

    Both contenders are the *same* engine facing the same requests; the
    only difference is whether the epoch-keyed result cache answers
    probes.  Each round runs both sides back to back — alternating
    which goes first round over round, so monotonic load drift cannot
    systematically tax one side — and contributes one paired QPS ratio;
    the gated ``cached_vs_uncached`` is the *median* of those paired
    ratios, which cancels machine-load drift that a best-of-rounds
    score would misattribute to one side.
    Every cached round starts from a cleared cache (doorkeeper
    included), so the reported hit ratio is earned entirely within the
    round — the within-workload reuse the Zipfian mix supplies — never
    carried over.  The two sides' results are compared location by
    location: a staleness bug shows up as ``results_agree=False``
    rather than as a throughput win.

    With ``through_server=True`` both sides run open-loop through the
    coalescing :class:`~repro.serving.Server` against an arrival
    schedule at ``overload`` times the calibrated serial capacity (8x by
    default — at 3x the offered rate itself sits only ~1.3x above the
    uncached sustained QPS and would clamp the measurable win).  With
    ``through_server=False`` the race loops coalescing-sized batches
    straight through ``Database.execute_many`` — no threads, no arrival
    schedule — which is how the uniform-mix *overhead guard* is
    measured: under that mix nearly every request is distinct, the
    doorkeeper holds everything out of the cache, and the ratio pins
    pure miss-path overhead (probe + doorkeeper bookkeeping) without
    the serving machinery's scheduling noise drowning a ~5% effect.

    The workload defaults differ from :func:`measure_serving`
    deliberately: the mix is range-heavier (``point_fraction=0.25``,
    ``selectivity=8e-3``) because result caching earns its keep on
    expensive queries.
    """
    database = setup.database
    cache = database.result_cache
    if cache is None:
        raise ConfigurationError(
            "measure_result_cache needs build_serving_setup(..., "
            "result_cache=ResultCacheConfig(...))")
    num_requests = num_clients * requests_per_client
    if issuing_threads is None:
        issuing_threads = min(4, num_clients)
    requests = _build_requests(setup, num_requests, point_fraction,
                               selectivity, seed, mix=mix, zipf_s=zipf_s,
                               distinct=distinct_requests)

    uncached_results: list = [None] * num_requests
    cached_results: list = [None] * num_requests
    cache.enabled = False

    if through_server:
        # Calibrate serial per-call capacity with the cache off (also
        # warms the plan cache, which both sides share).
        sample = requests[: min(512, num_requests)]
        started = time.perf_counter()
        for request in sample:
            database.execute(request)
        serial_qps = len(sample) / (time.perf_counter() - started)
        offered_qps = overload * serial_qps
        schedules = _client_schedules(num_clients, num_requests, offered_qps,
                                      issuing_threads)

        def run_round(results_out: list) -> float:
            qps, _, _ = _coalesced_round(database, requests, schedules,
                                         num_requests, results_out, config)
            return qps
    else:
        offered_qps = 0.0
        database.execute_many(requests)  # warm the plan cache
        batch_size = 256
        batches = [requests[start:start + batch_size]
                   for start in range(0, num_requests, batch_size)]

        def run_round(results_out: list) -> float:
            started = time.perf_counter()
            position = 0
            for batch in batches:
                for result in database.execute_many(batch):
                    # Keep only a compact int64 array per result: holding
                    # ten thousand QueryResults with plain-list locations
                    # alive would put millions of ints on the GC-tracked
                    # heap, and the resulting collection pauses tax
                    # whichever side happens to allocate more — exactly
                    # the ~5% signal this guard exists to measure.
                    results_out[position] = np.asarray(result.locations,
                                                       dtype=np.int64)
                    position += 1
            return num_requests / (time.perf_counter() - started)

    def run_off() -> float:
        cache.enabled = False
        database.result_cache_clear()
        return run_round(uncached_results)

    def run_on() -> tuple[float, float, int, int]:
        cache.enabled = True
        database.result_cache_clear()
        before = database.result_cache_info()
        on_qps = run_round(cached_results)
        after = database.result_cache_info()
        hits = after.hits - before.hits
        probes = hits + after.misses - before.misses
        hit_ratio = hits / probes if probes else 0.0
        return on_qps, hit_ratio, after.entries, after.bytes

    ratios: list[float] = []
    uncached_qps: list[float] = []
    cached_rounds: list[tuple[float, float, int, int]] = []
    for round_index in range(rounds):
        # Alternate which side runs first: monotonic machine-load drift
        # within a round (frequency scaling, competing tenants) would
        # otherwise tax whichever side always ran second, biasing every
        # paired ratio the same way.
        if round_index % 2 == 0:
            off_qps = run_off()
            cached_round = run_on()
        else:
            cached_round = run_on()
            off_qps = run_off()
        uncached_qps.append(off_qps)
        cached_rounds.append(cached_round)
        ratios.append(cached_round[0] / off_qps)

    # Leave the setup the way build_serving_setup handed it out.
    cache.enabled = False
    # Cache hits carry read-only numpy arrays while misses carry lists
    # (and the engine-direct rounds store bare arrays, see above);
    # np.array_equal compares across all the representations.
    agree = all(
        uncached is not None and cached is not None
        and np.array_equal(getattr(uncached, "locations", uncached),
                           getattr(cached, "locations", cached))
        for uncached, cached in zip(uncached_results, cached_results)
    )
    median_ratio = statistics.median(ratios)
    # Report the cache-side stats of the round closest to the median
    # ratio, so the headline numbers describe one coherent round.
    median_round = min(range(rounds),
                       key=lambda index: abs(ratios[index] - median_ratio))
    on_qps, hit_ratio, entries, nbytes = cached_rounds[median_round]
    return ResultCacheMeasurement(
        num_tuples=setup.num_tuples, num_clients=num_clients,
        num_requests=num_requests, mix=mix, zipf_s=zipf_s,
        distinct_requests=distinct_requests, point_fraction=point_fraction,
        selectivity=selectivity, through_server=through_server,
        offered_qps=offered_qps,
        uncached_qps=statistics.median(uncached_qps), cached_qps=on_qps,
        cached_vs_uncached=median_ratio, hit_ratio=hit_ratio,
        cache_entries=entries, cache_bytes=nbytes, results_agree=agree,
    )
