"""Timing utilities for the benchmark harness."""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass


def scale_factor(default: float = 1.0) -> float:
    """Global benchmark scale factor, read from the ``REPRO_SCALE`` env var.

    The benchmarks default to workload sizes small enough for pure Python;
    setting ``REPRO_SCALE=10`` (for example) multiplies every tuple count by
    ten to move the experiments closer to the paper's scale.
    """
    raw = os.environ.get("REPRO_SCALE")
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


def scaled(count: int, minimum: int = 1) -> int:
    """Apply the global scale factor to a tuple/query count."""
    return max(minimum, int(count * scale_factor()))


@dataclass
class ThroughputResult:
    """Outcome of running a batch of operations against one mechanism."""

    operations: int
    seconds: float

    @property
    def ops_per_second(self) -> float:
        """Operations per second (0 when no time elapsed)."""
        if self.seconds <= 0:
            return 0.0
        return self.operations / self.seconds

    @property
    def kops(self) -> float:
        """Thousands of operations per second, the unit most figures use."""
        return self.ops_per_second / 1e3


@contextmanager
def stopwatch():
    """Context manager yielding a mutable one-element list of elapsed seconds."""
    holder = [0.0]
    started = time.perf_counter()
    try:
        yield holder
    finally:
        holder[0] = time.perf_counter() - started


class SimulatedClock:
    """Combines wall-clock CPU time with charged simulated I/O latency.

    Used by the disk-based experiments (Figure 24): throughput is reported
    over ``cpu_seconds + io_seconds`` so that the relative cost of index
    probes vs. heap fetches matches a machine with a real device, independent
    of the speed of the machine running the reproduction.
    """

    def __init__(self, disk) -> None:
        self._disk = disk
        self._cpu_started: float | None = None
        self._io_baseline = 0.0
        self.cpu_seconds = 0.0
        self.io_seconds = 0.0

    def start(self) -> None:
        """Begin a measurement window."""
        self._cpu_started = time.perf_counter()
        self._io_baseline = self._disk.simulated_io_seconds()

    def stop(self) -> None:
        """End the measurement window and accumulate both time components."""
        if self._cpu_started is None:
            return
        self.cpu_seconds += time.perf_counter() - self._cpu_started
        self.io_seconds += self._disk.simulated_io_seconds() - self._io_baseline
        self._cpu_started = None

    @property
    def total_seconds(self) -> float:
        """CPU plus simulated I/O seconds."""
        return self.cpu_seconds + self.io_seconds
