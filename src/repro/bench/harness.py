"""Experiment harness shared by all benchmark scripts.

Each benchmark under ``benchmarks/`` reproduces one table or figure of the
paper; they all reduce to a handful of primitives implemented here: run a
query batch against a mechanism and measure throughput + breakdown, sweep a
parameter (selectivity, tuple count, error_bound, noise, number of indexes),
and collect memory breakdowns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.bench.timing import ThroughputResult
from repro.core.hermit import LookupBreakdown
from repro.workloads.queries import RangeQuery


@dataclass
class QueryBatchResult:
    """Throughput and accumulated breakdown of one query batch."""

    throughput: ThroughputResult
    breakdown: LookupBreakdown
    total_results: int = 0

    @property
    def false_positive_ratio(self) -> float:
        """Fraction of candidate tuples rejected by validation."""
        return self.breakdown.false_positive_ratio


def run_query_batch(mechanism, queries: list[RangeQuery]) -> QueryBatchResult:
    """Run range queries against a mechanism and collect throughput + breakdown.

    Mechanisms exposing the batch API (``lookup_range_many``) are measured
    through it, which amortises per-call dispatch and clock-read overhead
    over the whole batch; others fall back to one ``lookup_range`` call per
    query.

    Args:
        mechanism: Anything exposing ``lookup_range(low, high)`` returning a
            result with ``locations`` and ``breakdown`` (HermitIndex,
            BaselineSecondaryIndex, CorrelationMap).
        queries: The query batch.
    """
    batch_lookup = getattr(mechanism, "lookup_range_many", None)
    if batch_lookup is not None:
        started = time.perf_counter()
        batch = batch_lookup([(query.low, query.high) for query in queries])
        elapsed = time.perf_counter() - started
        return QueryBatchResult(
            throughput=ThroughputResult(operations=len(queries), seconds=elapsed),
            breakdown=batch.breakdown,
            total_results=batch.total_results,
        )
    breakdown = LookupBreakdown()
    total_results = 0
    started = time.perf_counter()
    for query in queries:
        result = mechanism.lookup_range(query.low, query.high)
        breakdown.merge(result.breakdown)
        total_results += len(result.locations)
    elapsed = time.perf_counter() - started
    return QueryBatchResult(
        throughput=ThroughputResult(operations=len(queries), seconds=elapsed),
        breakdown=breakdown,
        total_results=total_results,
    )


def run_point_batch(mechanism, values: list[float]) -> QueryBatchResult:
    """Run point queries against a mechanism."""
    queries = [RangeQuery(value, value) for value in values]
    return run_query_batch(mechanism, queries)


@dataclass
class SweepSeries:
    """One labelled series of a parameter sweep (one line of a paper figure)."""

    label: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one (x, y) point."""
        self.xs.append(float(x))
        self.ys.append(float(y))

    def as_rows(self) -> list[tuple[float, float]]:
        """Return the series as (x, y) rows."""
        return list(zip(self.xs, self.ys))


@dataclass
class FigureData:
    """All series of one reproduced figure, plus free-form notes."""

    name: str
    x_label: str
    y_label: str
    series: dict[str, SweepSeries] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def series_for(self, label: str) -> SweepSeries:
        """Get or create the series with the given label."""
        if label not in self.series:
            self.series[label] = SweepSeries(label)
        return self.series[label]

    def add_point(self, label: str, x: float, y: float) -> None:
        """Append one point to the labelled series."""
        self.series_for(label).add(x, y)

    def ratio(self, numerator: str, denominator: str) -> list[float]:
        """Point-wise ratio between two series (for who-wins checks)."""
        top = self.series[numerator]
        bottom = self.series[denominator]
        return [
            (a / b if b else float("inf"))
            for a, b in zip(top.ys, bottom.ys)
        ]


def insertion_throughput(database, table_name: str, rows: list[dict]) -> ThroughputResult:
    """Measure end-to-end insertion throughput through the database facade.

    Includes primary-index and base-table maintenance, exactly as the paper's
    Figure 22 does.
    """
    started = time.perf_counter()
    for row in rows:
        database.insert(table_name, row)
    elapsed = time.perf_counter() - started
    return ThroughputResult(operations=len(rows), seconds=elapsed)


def construction_time(build_callable, repetitions: int = 1) -> float:
    """Median wall-clock seconds of ``build_callable()`` over ``repetitions``."""
    samples = []
    for _ in range(max(1, repetitions)):
        started = time.perf_counter()
        build_callable()
        samples.append(time.perf_counter() - started)
    return float(np.median(samples))
