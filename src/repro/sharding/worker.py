"""Shard worker: one :class:`~repro.engine.database.Database` per process.

A shard worker owns a full single-core engine instance and speaks a tiny
command protocol over a ``multiprocessing`` pipe: every message is a
``(command, payload)`` tuple, every reply a ``("ok", value)`` or
``("error", exception)`` tuple.  All shard state is built *through* the
protocol (the worker starts with an empty database and replays the DDL/DML
the router forwards), so the workers are start-method agnostic — fork and
spawn behave identically.

The same :func:`dispatch_command` body also backs the router's inline mode
(no processes, commands dispatched directly against in-process databases),
which is what guarantees the two modes cannot drift apart: the equivalence
tests exercise inline shards, the benchmark exercises process shards, and
both run exactly this code.

Query results cross the pipe *packed*: the per-request location lists of a
whole ``execute_many`` batch are flattened into one segmented int64 array
(``repro.segments`` layout) plus small per-request metadata, and the
engine-side ``Plan`` objects are stripped (they hold live index references
and do not pickle).  Pickled segment batches measured comfortably cheap at
CI scale (~1 ms per 192-request fan-out round-trip against ~20 ms of
engine work per shard), so the shared-memory transport the issue sketches
stays unimplemented until a workload shows the copy on the profile.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.hermit import LookupBreakdown
from repro.engine.database import Database
from repro.segments import concat_segments

# Packed reply of one execute_many command: segmented locations plus the
# per-request metadata the router needs to rebuild QueryResult objects.
# (values, offsets, used_indexes, group_sizes, epoch, merged breakdown)
PackedResults = tuple[np.ndarray, np.ndarray, "list[str | None]", "list[int]",
                      "int | None", LookupBreakdown]


def pack_results(results: list) -> PackedResults:
    """Flatten one batch of ``QueryResult`` objects for the pipe.

    Locations become one segmented int64 array; plans are dropped; the
    batch's distinct breakdown objects (plan groups share one) are merged
    into a single per-shard-batch accounting.
    """
    arrays = [np.asarray(result.locations, dtype=np.int64)
              for result in results]
    values, offsets = concat_segments(arrays)
    merged = LookupBreakdown()
    distinct = {id(result.breakdown): result.breakdown for result in results}
    for breakdown in distinct.values():
        merged.merge(breakdown)
    return (
        values, offsets,
        [result.used_index for result in results],
        [result.group_size for result in results],
        results[0].epoch if results else None,
        merged,
    )


def dispatch_command(database: Database, command: str, payload: Any) -> Any:
    """Apply one protocol command to a shard's database.

    Shared by the process worker loop and the router's inline mode; adding
    a command here makes it available to both.
    """
    if command == "execute_many":
        return pack_results(database.execute_many(payload))
    if command == "insert_many":
        table_name, columns = payload
        return database.insert_many(table_name, columns)
    if command == "delete":
        table_name, location = payload
        database.delete(table_name, location)
        return None
    if command == "update":
        table_name, location, changes = payload
        database.update(table_name, location, changes)
        return None
    if command == "fetch":
        table_name, location = payload
        return database.catalog.table_entry(table_name).table.fetch(location)
    if command == "create_table":
        database.create_table(payload)
        return None
    if command == "create_index":
        database.create_index(**payload)
        return None
    if command == "create_composite_index":
        database.create_composite_index(**payload)
        return None
    if command == "drop_index":
        table_name, index_name = payload
        database.drop_index(table_name, index_name)
        return None
    if command == "num_rows":
        return database.catalog.table_entry(payload).table.num_rows
    if command == "planner_info":
        return (database.planner_cache_stats(), database.planner_cache_info())
    if command == "result_cache_info":
        return database.result_cache_info()
    if command == "result_cache_clear":
        database.result_cache_clear()
        return None
    raise ValueError(f"unknown shard command {command!r}")


def shard_worker_main(connection, pointer_scheme, trs_config,
                      cost_model, result_cache=None) -> None:
    """Process entry point: serve protocol commands until ``close``/EOF."""
    database = Database(pointer_scheme=pointer_scheme, trs_config=trs_config,
                        cost_model=cost_model, result_cache=result_cache)
    while True:
        try:
            command, payload = connection.recv()
        except (EOFError, OSError):
            break
        if command == "close":
            connection.send(("ok", None))
            break
        try:
            connection.send(("ok", dispatch_command(database, command,
                                                    payload)))
        except BaseException as error:  # noqa: BLE001 - ship to the router
            connection.send(("error", error))
    connection.close()
