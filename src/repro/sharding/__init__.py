"""Sharded parallel query execution (scatter/gather over N engines).

See :mod:`repro.sharding.sharded` for the routing/merge semantics and
:mod:`repro.sharding.worker` for the shard command protocol.
"""

from repro.sharding.sharded import (
    LOCATION_STRIDE,
    ShardedDatabase,
    uniform_boundaries,
)

__all__ = ["LOCATION_STRIDE", "ShardedDatabase", "uniform_boundaries"]
