"""Sharded scatter/gather execution: N engine instances behind one facade.

``ShardedDatabase`` partitions every table by primary-key range across
``num_shards`` single-core :class:`~repro.engine.database.Database`
instances and keeps the engine's request/result API
(:class:`~repro.engine.query.QueryRequest` in,
:class:`~repro.engine.query.QueryResult` out), so
:class:`repro.serving.Server` can sit in front of it unchanged.

Routing rules:

* **DDL** (``create_table`` / ``create_index`` / ``create_composite_index``
  / ``drop_index``) broadcasts to every shard — each shard owns a complete
  catalog over its slice of the rows.
* **DML** routes by primary key.  ``insert_many`` splits the column batch
  by the table's shard boundaries with one vectorized ``searchsorted`` and
  ships each shard its slice in one command; ``delete`` / ``update`` /
  ``fetch`` decode the owning shard from the global row location.
* **Reads** fan out to *every* shard: Hermit's whole premise is secondary
  predicates over non-key columns, and those do not align with a
  primary-key partitioning — any shard may hold matching rows.  Per-shard
  results come back as packed segment batches and are merged per request.

Row locations are globalised as ``shard_index * LOCATION_STRIDE + local``
so they survive the round-trip through callers that later delete/update by
location.  Merged results differ from the single-engine ones in exactly
three documented ways: ``plan`` is ``None`` (plans hold live index
references and stay shard-side), ``epoch`` is ``None`` (each shard runs
its own epoch protocol, so a cross-shard read has no single epoch to
report), and ``breakdown`` is the whole batch's accounting summed across
shards rather than a per-plan-group slice.

Two transports share one command dispatcher
(:func:`repro.sharding.worker.dispatch_command`):

* ``mode="process"`` — one worker process per shard over a
  ``multiprocessing`` pipe; a fan-out sends to all shards before receiving
  from any, so shards execute concurrently.  This is the parallel path the
  sharding benchmark measures.
* ``mode="inline"`` — the same shard databases in-process, no pipes.
  Deterministic and cheap; what the equivalence tests use.

Writes are atomic per shard only: a multi-shard ``insert_many`` that fails
validation on one shard may have already applied on another (the fan-out
raises after draining every reply, so the pipes stay in sync).  The serving
tier's single-writer discipline makes this the same contract the WAL
already offers — one logical batch, applied in shard order.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Sequence

import numpy as np

from repro.cache.result_cache import ResultCacheConfig, ResultCacheStats
from repro.core.config import DEFAULT_CONFIG, TRSTreeConfig
from repro.core.hermit import LookupBreakdown
from repro.engine.access_path import DEFAULT_COST_MODEL, CostModel
from repro.engine.database import Database
from repro.engine.planner import PlannerCacheStats
from repro.engine.query import (
    QueryRequest,
    QueryResult,
    RangePredicate,
)
from repro.errors import CatalogError, ConfigurationError
from repro.sharding.worker import dispatch_command, shard_worker_main
from repro.storage.identifiers import PointerScheme
from repro.storage.schema import TableSchema

# Global row location = shard_index * LOCATION_STRIDE + shard-local
# location.  2**32 leaves headroom for ~4e9 rows per shard and keeps the
# encoded value well inside int64 for any sane shard count.
LOCATION_STRIDE = 2 ** 32


def uniform_boundaries(low: float, high: float,
                       num_shards: int) -> list[float]:
    """Equal-width primary-key split points for ``num_shards`` shards."""
    if num_shards < 1:
        raise ConfigurationError("num_shards must be >= 1")
    return np.linspace(low, high, num_shards + 1)[1:-1].tolist()


class _InlineShard:
    """In-process shard: commands dispatch directly, replies are queued.

    Mirrors the process shard's send/receive split so the router's fan-out
    code is transport-agnostic, and runs the identical
    :func:`~repro.sharding.worker.dispatch_command` body.
    """

    def __init__(self, pointer_scheme: PointerScheme,
                 trs_config: TRSTreeConfig, cost_model: CostModel,
                 result_cache: "ResultCacheConfig | None" = None) -> None:
        self.database = Database(pointer_scheme=pointer_scheme,
                                 trs_config=trs_config, cost_model=cost_model,
                                 result_cache=result_cache)
        self._replies: list[tuple[str, Any]] = []

    def send(self, command: str, payload: Any) -> None:
        try:
            self._replies.append(
                ("ok", dispatch_command(self.database, command, payload)))
        except BaseException as error:  # noqa: BLE001 - symmetric transport
            self._replies.append(("error", error))

    def receive(self) -> tuple[str, Any]:
        return self._replies.pop(0)

    def close(self) -> None:
        self.database.close()


class _ProcessShard:
    """One worker process per shard, spoken to over a duplex pipe."""

    def __init__(self, pointer_scheme: PointerScheme,
                 trs_config: TRSTreeConfig, cost_model: CostModel,
                 result_cache: "ResultCacheConfig | None" = None) -> None:
        context = multiprocessing.get_context()
        self._connection, child = context.Pipe()
        self._process = context.Process(
            target=shard_worker_main,
            args=(child, pointer_scheme, trs_config, cost_model,
                  result_cache),
            daemon=True,
        )
        self._process.start()
        child.close()

    def send(self, command: str, payload: Any) -> None:
        self._connection.send((command, payload))

    def receive(self) -> tuple[str, Any]:
        return self._connection.recv()

    def close(self) -> None:
        try:
            self._connection.send(("close", None))
            self._connection.recv()
        except (BrokenPipeError, EOFError, OSError):
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)
        self._connection.close()


class ShardedDatabase:
    """Primary-key-range sharded facade over N engine instances.

    Args:
        num_shards: Number of shard databases.
        mode: ``"process"`` for one worker process per shard (parallel
            execution), ``"inline"`` for in-process shards (deterministic,
            no fork — the equivalence-testing transport).
        pointer_scheme: Forwarded to every shard database.
        trs_config: Forwarded to every shard database.
        cost_model: Forwarded to every shard database.
        result_cache: Forwarded to every shard database — each shard runs
            its own epoch-keyed result cache over its partition (the
            budget is per shard), and :meth:`result_cache_info` reports
            the counters merged across shards, so ``serving.Server``
            observes one composed cache.
    """

    def __init__(self, num_shards: int = 4, mode: str = "process",
                 pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
                 trs_config: TRSTreeConfig = DEFAULT_CONFIG,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 result_cache: "ResultCacheConfig | None" = None) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if mode not in ("process", "inline"):
            raise ConfigurationError(
                f"mode must be 'process' or 'inline', got {mode!r}")
        self.num_shards = num_shards
        self.mode = mode
        self.pointer_scheme = pointer_scheme
        shard_class = _ProcessShard if mode == "process" else _InlineShard
        self._shards = [shard_class(pointer_scheme, trs_config, cost_model,
                                    result_cache)
                        for _ in range(num_shards)]
        self._schemas: dict[str, TableSchema] = {}
        self._boundaries: dict[str, np.ndarray] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Transport plumbing

    def _drain(self, shards: "Sequence[tuple[int, Any]]") -> list[Any]:
        """Receive one reply per listed shard; raise only after draining.

        Raising on the first error would leave later replies unread and
        desynchronise those pipes for every subsequent command, so errors
        are collected and the first one re-raised once all replies are in.
        """
        values: list[Any] = []
        first_error: BaseException | None = None
        for _, shard in shards:
            status, value = shard.receive()
            if status == "error" and first_error is None:
                first_error = value
            values.append(value)
        if first_error is not None:
            raise first_error
        return values

    def _broadcast(self, command: str, payload: Any) -> list[Any]:
        """Send one command to every shard, then gather every reply."""
        for shard in self._shards:
            shard.send(command, payload)
        return self._drain(list(enumerate(self._shards)))

    def _call(self, shard_index: int, command: str, payload: Any) -> Any:
        shard = self._shards[shard_index]
        shard.send(command, payload)
        return self._drain([(shard_index, shard)])[0]

    # ------------------------------------------------------------------
    # Routing helpers

    def _locate(self, location: int) -> tuple[int, int]:
        """Decode a global row location into (shard_index, local location)."""
        shard_index, local = divmod(int(location), LOCATION_STRIDE)
        if not 0 <= shard_index < self.num_shards:
            raise ConfigurationError(
                f"location {location} does not belong to any of "
                f"{self.num_shards} shards")
        return shard_index, local

    def _schema(self, table_name: str) -> TableSchema:
        try:
            return self._schemas[table_name]
        except KeyError:
            raise CatalogError(
                f"table {table_name!r} does not exist") from None

    def _shard_of_key(self, table_name: str, key: float) -> int:
        boundaries = self._boundaries[table_name]
        if boundaries.size == 0:
            return 0
        return int(np.searchsorted(boundaries, key, side="right"))

    # ------------------------------------------------------------------
    # DDL

    def create_table(self, schema: TableSchema,
                     boundaries: "Sequence[float] | None" = None) -> None:
        """Create ``schema`` on every shard, partitioned at ``boundaries``.

        ``boundaries`` is the ``num_shards - 1`` ascending primary-key
        split points (shard ``i`` owns keys in ``(boundaries[i-1],
        boundaries[i]]`` under ``searchsorted(..., side="right")``
        semantics); see :func:`uniform_boundaries` for the equal-width
        helper.  With one shard it may be omitted.
        """
        if boundaries is None:
            if self.num_shards > 1:
                raise ConfigurationError(
                    f"table {schema.name!r} needs {self.num_shards - 1} "
                    "primary-key boundaries for "
                    f"{self.num_shards} shards (see uniform_boundaries)")
            boundaries = []
        edges = np.asarray(list(boundaries), dtype=np.float64)
        if edges.size != self.num_shards - 1:
            raise ConfigurationError(
                f"expected {self.num_shards - 1} boundaries, "
                f"got {edges.size}")
        if edges.size and not np.all(np.diff(edges) > 0):
            raise ConfigurationError("boundaries must be strictly ascending")
        self._broadcast("create_table", schema)
        self._schemas[schema.name] = schema
        self._boundaries[schema.name] = edges

    def create_index(self, name: str, table_name: str, column: str,
                     **kwargs: Any) -> None:
        """Create a secondary index on every shard.

        Accepts the keyword surface of :meth:`Database.create_index`.
        Returns ``None`` rather than an ``IndexEntry`` — the entries live
        shard-side.
        """
        payload = {"name": name, "table_name": table_name, "column": column,
                   **kwargs}
        self._broadcast("create_index", payload)

    def create_composite_index(self, name: str, table_name: str,
                               leading_column: str, second_column: str,
                               **kwargs: Any) -> None:
        """Create a composite secondary index on every shard."""
        payload = {"name": name, "table_name": table_name,
                   "leading_column": leading_column,
                   "second_column": second_column, **kwargs}
        self._broadcast("create_composite_index", payload)

    def drop_index(self, table_name: str, index_name: str) -> None:
        """Drop a secondary index on every shard."""
        self._broadcast("drop_index", (table_name, index_name))

    # ------------------------------------------------------------------
    # DML

    def insert_many(self, table_name: str,
                    columns: "dict[str, Sequence]") -> list[int]:
        """Bulk-insert, split per owning shard, global locations returned.

        The primary-key column is routed with one vectorized
        ``searchsorted`` against the table's boundaries; each involved
        shard receives its whole slice as one column batch (numpy columns
        sliced by fancy index, list columns — strings — by comprehension).
        The returned locations are globalised and in input order.
        """
        schema = self._schema(table_name)
        keys = np.asarray(columns[schema.primary_key], dtype=np.float64)
        boundaries = self._boundaries[table_name]
        if boundaries.size:
            shard_ids = np.searchsorted(boundaries, keys, side="right")
        else:
            shard_ids = np.zeros(keys.size, dtype=np.int64)
        global_locations = np.empty(keys.size, dtype=np.int64)
        involved: list[tuple[int, np.ndarray]] = []
        for shard_index in range(self.num_shards):
            positions = np.flatnonzero(shard_ids == shard_index)
            if positions.size == 0:
                continue
            part = {
                name: (np.asarray(values)[positions]
                       if not isinstance(values, list)
                       else [values[i] for i in positions.tolist()])
                for name, values in columns.items()
            }
            self._shards[shard_index].send("insert_many", (table_name, part))
            involved.append((shard_index, positions))
        replies = self._drain([(i, self._shards[i]) for i, _ in involved])
        for (shard_index, positions), locations in zip(involved, replies):
            global_locations[positions] = (
                np.asarray(locations, dtype=np.int64)
                + shard_index * LOCATION_STRIDE)
        return global_locations.tolist()

    def insert(self, table_name: str, row: dict) -> int:
        """Insert one row, returning its global location."""
        return self.insert_many(
            table_name, {name: [value] for name, value in row.items()})[0]

    def delete(self, table_name: str, location: int) -> None:
        """Delete the row at global ``location`` on its owning shard."""
        shard_index, local = self._locate(location)
        self._call(shard_index, "delete", (table_name, local))

    def update(self, table_name: str, location: int, changes: dict) -> int:
        """Update a row; returns its (possibly new) global location.

        A primary-key change that crosses a shard boundary cannot stay in
        place: the row is fetched, patched, deleted from the old shard and
        inserted into the new owner — so unlike
        :meth:`Database.update` the location can change, and the new one
        is returned (unchanged updates return the old location).
        """
        shard_index, local = self._locate(location)
        pk = self._schema(table_name).primary_key
        if pk in changes:
            target = self._shard_of_key(table_name, float(changes[pk]))
            if target != shard_index:
                row = self._call(shard_index, "fetch", (table_name, local))
                row.update(changes)
                self._call(shard_index, "delete", (table_name, local))
                new_local = self._call(
                    target, "insert_many",
                    (table_name, {k: [v] for k, v in row.items()}))[0]
                return target * LOCATION_STRIDE + int(new_local)
        self._call(shard_index, "update", (table_name, local, changes))
        return int(location)

    def fetch(self, table_name: str, location: int) -> dict:
        """Fetch the row at global ``location`` from its owning shard."""
        shard_index, local = self._locate(location)
        return self._call(shard_index, "fetch", (table_name, local))

    # ------------------------------------------------------------------
    # Reads

    def execute_many(self,
                     requests: Sequence[QueryRequest]) -> list[QueryResult]:
        """Answer a request batch: fan out to every shard, merge per request.

        All shards receive the whole batch before any reply is read, so
        under ``mode="process"`` the shards execute concurrently.  Each
        request's merged result is the sorted concatenation of the
        per-shard location sets (globalised); ``used_index`` and
        ``group_size`` are reported from shard 0 (shards plan
        independently but against identically-partitioned catalogs, so
        they agree in practice), ``breakdown`` is the batch total across
        shards, and ``epoch`` is ``None`` — see the module docstring.
        """
        requests = list(requests)
        if not requests:
            return []
        replies = self._broadcast("execute_many", requests)
        merged_breakdown = LookupBreakdown()
        for reply in replies:
            merged_breakdown.merge(reply[5])
        results: list[QueryResult] = []
        for position in range(len(requests)):
            pieces = []
            for shard_index, reply in enumerate(replies):
                values, offsets = reply[0], reply[1]
                segment = values[offsets[position]:offsets[position + 1]]
                if segment.size:
                    pieces.append(segment + shard_index * LOCATION_STRIDE)
            merged = (np.sort(np.concatenate(pieces)) if pieces
                      else np.empty(0, dtype=np.int64))
            results.append(QueryResult(
                locations=merged.tolist(),
                breakdown=merged_breakdown,
                used_index=replies[0][2][position],
                group_size=replies[0][3][position],
                epoch=None,
            ))
        return results

    def execute(self, request: QueryRequest) -> QueryResult:
        """Answer one request (thin wrapper over :meth:`execute_many`)."""
        return self.execute_many([request])[0]

    def query(self, table_name: str,
              predicate: RangePredicate) -> QueryResult:
        """Single-predicate convenience mirroring :meth:`Database.query`."""
        return self.execute(QueryRequest.of(table_name, predicate))

    def query_many(self, table_name: str,
                   predicates: Sequence[RangePredicate]) -> list[QueryResult]:
        """Predicate-batch convenience mirroring :meth:`Database.query_many`."""
        return self.execute_many(
            [QueryRequest.of(table_name, p) for p in predicates])

    # ------------------------------------------------------------------
    # Observability (the surface repro.serving.Server reads)

    def planner_cache_stats(self) -> PlannerCacheStats:
        """Plan-cache counters summed across every shard's planner."""
        replies = self._broadcast("planner_info", None)
        return PlannerCacheStats(
            hits=sum(reply[0].hits for reply in replies),
            misses=sum(reply[0].misses for reply in replies),
            replays=sum(reply[0].replays for reply in replies),
        )

    def planner_cache_info(self) -> "dict[str, PlannerCacheStats]":
        """Per-table plan-cache counters summed across shards."""
        replies = self._broadcast("planner_info", None)
        totals: dict[str, list[int]] = {}
        for reply in replies:
            for table_name, stats in reply[1].items():
                entry = totals.setdefault(table_name, [0, 0, 0])
                entry[0] += stats.hits
                entry[1] += stats.misses
                entry[2] += stats.replays
        return {
            table_name: PlannerCacheStats(hits=hits, misses=misses,
                                          replays=replays)
            for table_name, (hits, misses, replays) in sorted(totals.items())
        }

    def result_cache_info(self) -> ResultCacheStats:
        """Result-cache counters merged across every shard's cache.

        Counters, entries and bytes sum; ``enabled`` is true when any
        shard probes (all shards share one construction-time config, so
        they agree in practice).  The same surface
        :meth:`Database.result_cache_info` offers, which is what lets
        ``serving.Server`` report result-cache stats for a sharded
        backend unchanged.
        """
        return ResultCacheStats.merge(
            self._broadcast("result_cache_info", None))

    def result_cache_clear(self) -> None:
        """Drop every shard's cached results (counters survive)."""
        self._broadcast("result_cache_clear", None)

    def num_rows(self, table_name: str) -> int:
        """Total live rows across shards."""
        return sum(self.shard_row_counts(table_name))

    def shard_row_counts(self, table_name: str) -> list[int]:
        """Per-shard live row counts (partition-balance observability)."""
        return self._broadcast("num_rows", table_name)

    # ------------------------------------------------------------------
    # Lifecycle

    def close(self) -> None:
        """Shut down every shard (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
