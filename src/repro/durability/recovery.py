"""Crash recovery: checkpoint restore + WAL replay + index rebuild.

:func:`recover` turns a durability directory back into a live
:class:`~repro.engine.database.Database`:

1. **Checkpoint restore** — load the newest *valid* checkpoint (torn or
   corrupt candidates are skipped), recreate each table, restore its raw
   column arrays / liveness bitmap / running statistics, and bulk-load the
   primary index from the live slots.
2. **Index rebuild** — re-run every secondary-index definition recorded in
   the manifest, in creation order, through the ordinary
   ``create_index`` / ``create_composite_index`` machinery.  Mechanism
   content is never logged or checkpointed: TRS-Trees, correlation maps and
   B+-tree secondaries are succinct and rebuilt from data — the paper's
   cheap-to-rebuild property doing real work in the recovery protocol.
3. **WAL replay** — re-apply every record with an LSN above the checkpoint
   through the same ``Database`` methods that produced it.  Replay is
   deterministic: tables append at ``next_slot`` and never reuse dead slots,
   so every replayed operation lands on the same row locations; payloads
   carry raw pre-coercion values, so statistics evolve identically.

The returned database has a resumed :class:`DurabilityManager` attached —
its WAL continues the LSN sequence — and carries the phase timings in
``durability_stats().recovery``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.durability.checkpoint import (
    find_latest_checkpoint,
    restore_table_arrays,
    schema_from_manifest,
)
from repro.durability.config import DurabilityConfig, RecoveryTimings
from repro.durability.manager import DurabilityManager, wal_path
from repro.durability.wal import WalOp, WalRecord, scan_wal
from repro.engine.database import Database
from repro.engine.catalog import IndexMethod
from repro.core.config import TRSTreeConfig
from repro.errors import DurabilityError
from repro.storage.identifiers import PointerScheme


def _apply_index_definition(database: Database, definition: dict) -> None:
    """Re-run one logged/checkpointed index definition.

    Definitions are fully resolved at creation time (``AUTO`` never reaches
    the log), so replay is deterministic and never consults the advisor.
    """
    if "leading_column" in definition:
        database.create_composite_index(
            definition["name"], definition["table"],
            definition["leading_column"], definition["second_column"],
            preexisting=definition["preexisting"],
        )
        return
    trs_config = definition.get("trs_config")
    database.create_index(
        definition["name"], definition["table"], definition["column"],
        method=IndexMethod(definition["method"]),
        host_column=definition["host_column"],
        trs_config=TRSTreeConfig(**trs_config) if trs_config else None,
        cm_target_bucket_width=definition["cm_target_bucket_width"],
        cm_host_bucket_width=definition["cm_host_bucket_width"],
        preexisting=definition["preexisting"],
    )


def _apply_record(database: Database, record: WalRecord) -> None:
    """Redo one WAL record through the ordinary engine paths."""
    payload = record.payload
    if record.op is WalOp.CREATE_TABLE:
        database.create_table(schema_from_manifest(payload["schema"]))
    elif record.op is WalOp.CREATE_INDEX:
        _apply_index_definition(database, payload)
    elif record.op is WalOp.CREATE_COMPOSITE_INDEX:
        _apply_index_definition(database, payload)
    elif record.op is WalOp.DROP_INDEX:
        database.drop_index(payload["table"], payload["name"])
    elif record.op is WalOp.INSERT_MANY:
        database.insert_many(payload["table"], payload["columns"])
    elif record.op is WalOp.UPDATE:
        database.update(payload["table"], payload["location"],
                        payload["changes"])
    elif record.op is WalOp.DELETE:
        database.delete(payload["table"], payload["location"])
    else:  # pragma: no cover - WalOp is closed
        raise DurabilityError(f"unknown WAL op {record.op!r}")


def _restore_checkpoint(database: Database, manifest: dict,
                        arrays: dict) -> None:
    """Recreate tables/primary indexes from a checkpoint payload."""
    for table_manifest in manifest["tables"]:
        schema = schema_from_manifest(table_manifest["schema"])
        table = database.create_table(schema)
        columns = restore_table_arrays(table_manifest, arrays)
        statistics = {
            name: (entry["count"], entry["minimum"], entry["maximum"])
            for name, entry in table_manifest["statistics"].items()
        }
        table.restore_snapshot(
            columns,
            arrays[f"{table_manifest['name']}::__live__"],
            table_manifest["next_slot"],
            statistics=statistics,
        )
        slots = table.live_slots()
        if len(slots):
            # column_array() is already restricted to live slots, aligned
            # with live_slots() — no further indexing by slot number.
            keys = table.column_array(schema.primary_key).astype(np.float64)
            entry = database.catalog.table_entry(table_manifest["name"])
            entry.primary_index.bulk_load(
                zip(keys.tolist(), [int(s) for s in slots])
            )


def recover(config: DurabilityConfig,
            pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
            **database_kwargs) -> Database:
    """Rebuild a database from a durability directory.

    Args:
        config: The durability parameters; ``config.directory`` is the
            directory to recover (WAL and/or checkpoints).  The returned
            database logs to the same directory.
        pointer_scheme: Scheme for a WAL-only recovery; overridden by the
            checkpoint manifest when one exists (the scheme is a physical
            property of the recovered pointers, not a per-session choice).
        **database_kwargs: Forwarded to :class:`Database` (``trs_config``,
            ``size_model``, ``advisor``, ``cost_model``).

    Returns:
        A live database with durability attached and recovery timings in
        ``durability_stats().recovery``.

    Raises:
        DurabilityError: If a checksum-valid WAL record fails to re-apply —
            the write-ahead protocol only logs operations that succeeded,
            so this indicates tampering or a bug, not a torn write.
    """
    start = time.perf_counter()
    found = find_latest_checkpoint(config.directory)
    checkpoint_lsn = 0
    if found is not None:
        manifest, _ = found
        pointer_scheme = PointerScheme(manifest["pointer_scheme"])
        checkpoint_lsn = manifest["lsn"]
    database = Database(pointer_scheme=pointer_scheme, **database_kwargs)

    rebuild_start = time.perf_counter()
    checkpoint_load_s = rebuild_start - start
    if found is not None:
        manifest, arrays = found
        _restore_checkpoint(database, manifest, arrays)
        for definition in manifest["indexes"]:
            _apply_index_definition(database, definition)

    replay_start = time.perf_counter()
    rebuild_s = replay_start - rebuild_start
    records, _valid_bytes = scan_wal(wal_path(config))
    replayed = 0
    for record in records:
        if record.lsn <= checkpoint_lsn:
            continue
        try:
            _apply_record(database, record)
        except DurabilityError:
            raise
        except Exception as error:  # noqa: BLE001 - any engine error here
            # means a checksum-valid record failed to re-apply; every such
            # failure must surface as DurabilityError, whatever its type.
            raise DurabilityError(
                f"WAL record lsn={record.lsn} op={record.op.name} failed to "
                f"replay: {error}"
            ) from error
        replayed += 1
    done = time.perf_counter()

    timings = RecoveryTimings(
        checkpoint_load_s=checkpoint_load_s,
        rebuild_s=rebuild_s,
        wal_replay_s=done - replay_start,
        records_replayed=replayed,
        total_s=done - start,
    )
    manager = DurabilityManager(
        config, resume=True, checkpoint_lsn=checkpoint_lsn,
        records_since_checkpoint=replayed, recovery=timings,
    )
    database.attach_durability(manager)
    return database
