"""Write-ahead log: length-prefixed, CRC32-checksummed redo records.

The log records *logical base-table mutations only* — ``insert_many`` /
``update`` / ``delete`` plus the DDL that defines tables and indexes.  No
index content is ever logged: the paper's mechanisms (TRS-Trees, correlation
maps, B+-trees) are succinct and cheap to rebuild, so recovery reconstructs
them from the recovered base data instead of replaying their internal
maintenance (see ``recovery.py``).

On-disk format, one record::

    <u32 body length> <u32 crc32(body)> <body>
    body = <u64 lsn> <u8 opcode> <payload>

All integers are little-endian.  DDL, ``update`` and ``delete`` payloads are
UTF-8 JSON; ``insert_many`` payloads carry their column batch in a compact
binary layout (raw int64/float64 array bytes, length-prefixed UTF-8 strings)
so that group-appending a large batch costs one ``tobytes`` per column.

Torn tails are expected, not fatal: a crash mid-append leaves a final record
whose header is incomplete, whose length overruns the file, or whose checksum
fails.  :func:`scan_wal` stops at the first such record and reports the byte
offset of the valid prefix; the :class:`WriteAheadLog` truncates the file
there before appending again.
"""

from __future__ import annotations

import enum
import io
import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.durability.config import FsyncPolicy
from repro.errors import DurabilityError, WalCorruptionError

_HEADER = struct.Struct("<II")
_BODY_PREFIX = struct.Struct("<QB")
# Sanity bound on a single record so a garbled length field cannot make the
# scanner attempt a multi-gigabyte read: 256 MiB covers any realistic batch.
_MAX_RECORD_BYTES = 256 * 1024 * 1024

_KIND_INT64 = 0
_KIND_FLOAT64 = 1
_KIND_STRING = 2


class WalOp(enum.Enum):
    """Operation codes of the redo records."""

    CREATE_TABLE = 1
    CREATE_INDEX = 2
    CREATE_COMPOSITE_INDEX = 3
    DROP_INDEX = 4
    INSERT_MANY = 5
    UPDATE = 6
    DELETE = 7


_JSON_OPS = frozenset({
    WalOp.CREATE_TABLE, WalOp.CREATE_INDEX, WalOp.CREATE_COMPOSITE_INDEX,
    WalOp.DROP_INDEX, WalOp.UPDATE, WalOp.DELETE,
})


@dataclass(frozen=True)
class WalRecord:
    """One decoded redo record."""

    lsn: int
    op: WalOp
    payload: dict


# --------------------------------------------------------------- payload codec

def _pack_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    return struct.pack("<H", len(raw)) + raw


def _read_str(stream: io.BytesIO) -> str:
    (length,) = struct.unpack("<H", stream.read(2))
    return stream.read(length).decode("utf-8")


def encode_columns(columns: dict[str, Sequence]) -> bytes:
    """Encode a column-oriented batch for an ``insert_many`` payload.

    Numeric columns are classified by their array dtype — integer/bool input
    is stored as int64, floating input as float64 — so that replaying the
    record feeds :meth:`Database.insert_many` the same values the original
    call saw (including pre-coercion ones like ``2.7`` bound for an INT64
    column, which the table truncates identically on both sides).  String
    columns carry per-value null flags.

    Raises:
        DurabilityError: If column lengths differ or a value is not
            encodable (e.g. arbitrary objects in a column).
    """
    parts = [struct.pack("<H", len(columns))]
    lengths = set()
    for name, values in columns.items():
        array = np.asarray(values)
        lengths.add(array.shape[0] if array.ndim else -1)
        parts.append(_pack_str(name))
        if array.ndim != 1:
            raise DurabilityError(
                f"column {name!r} is not one-dimensional"
            )
        if array.dtype.kind in "biu":
            parts.append(struct.pack("<BQ", _KIND_INT64, array.shape[0]))
            parts.append(np.ascontiguousarray(array, dtype="<i8").tobytes())
        elif array.dtype.kind == "f":
            parts.append(struct.pack("<BQ", _KIND_FLOAT64, array.shape[0]))
            parts.append(np.ascontiguousarray(array, dtype="<f8").tobytes())
        elif array.dtype.kind in "UO":
            parts.append(struct.pack("<BQ", _KIND_STRING, array.shape[0]))
            for value in array.tolist():
                if value is None:
                    parts.append(b"\x00")
                elif isinstance(value, str):
                    raw = value.encode("utf-8")
                    parts.append(b"\x01" + struct.pack("<I", len(raw)) + raw)
                else:
                    raise DurabilityError(
                        f"column {name!r} holds unencodable value "
                        f"{value!r} ({type(value).__name__})"
                    )
        else:
            raise DurabilityError(
                f"column {name!r} has unencodable dtype {array.dtype}"
            )
    if len(lengths) > 1:
        raise DurabilityError("insert_many columns have unequal lengths")
    return b"".join(parts)


def decode_columns(stream: io.BytesIO) -> dict[str, object]:
    """Inverse of :func:`encode_columns`."""
    (ncols,) = struct.unpack("<H", stream.read(2))
    columns: dict[str, object] = {}
    for _ in range(ncols):
        name = _read_str(stream)
        kind, count = struct.unpack("<BQ", stream.read(9))
        if kind == _KIND_INT64:
            columns[name] = np.frombuffer(
                stream.read(count * 8), dtype="<i8"
            ).astype(np.int64, copy=False)
        elif kind == _KIND_FLOAT64:
            columns[name] = np.frombuffer(
                stream.read(count * 8), dtype="<f8"
            ).astype(np.float64, copy=False)
        elif kind == _KIND_STRING:
            values: list[str | None] = []
            for _ in range(count):
                flag = stream.read(1)
                if flag == b"\x00":
                    values.append(None)
                else:
                    (length,) = struct.unpack("<I", stream.read(4))
                    values.append(stream.read(length).decode("utf-8"))
            columns[name] = values
        else:
            raise WalCorruptionError(f"unknown column kind {kind}")
    return columns


def encode_payload(op: WalOp, payload: dict) -> bytes:
    """Serialise a record payload for ``op``."""
    if op is WalOp.INSERT_MANY:
        return (_pack_str(payload["table"])
                + encode_columns(payload["columns"]))
    if op in _JSON_OPS:
        try:
            return json.dumps(payload, ensure_ascii=False).encode("utf-8")
        except (TypeError, ValueError) as error:
            raise DurabilityError(
                f"payload of {op.name} is not JSON-serialisable: {error}"
            ) from error
    raise DurabilityError(f"unknown WAL op {op!r}")


def decode_payload(op: WalOp, raw: bytes) -> dict:
    """Inverse of :func:`encode_payload`.

    Raises:
        WalCorruptionError: If a checksum-valid record fails to decode —
            this indicates a writer/reader bug rather than a torn write, so
            it is never silently tolerated.
    """
    try:
        if op is WalOp.INSERT_MANY:
            stream = io.BytesIO(raw)
            table = _read_str(stream)
            return {"table": table, "columns": decode_columns(stream)}
        return json.loads(raw.decode("utf-8"))
    except WalCorruptionError:
        raise
    except Exception as error:  # noqa: BLE001 - any decode failure of a
        # checksum-valid record (bad JSON, bad UTF-8, truncated column
        # stream, ...) is corruption by definition and must be wrapped.
        raise WalCorruptionError(
            f"checksum-valid {op.name} record failed to decode: {error}"
        ) from error


def encode_record(lsn: int, op: WalOp, payload: dict) -> bytes:
    """Full on-disk bytes of one record (header + body)."""
    body = _BODY_PREFIX.pack(lsn, op.value) + encode_payload(op, payload)
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


# -------------------------------------------------------------------- scanning

def scan_wal(path: str) -> tuple[list[WalRecord], int]:
    """Read every valid record of a WAL file, tolerating a torn tail.

    Returns:
        ``(records, valid_bytes)`` — the decoded records of the valid
        prefix and the byte offset at which the first torn/corrupt record
        (if any) starts.  A missing file yields ``([], 0)``.

    The scan stops — without raising — at the first incomplete header,
    overrunning length field, checksum mismatch, unknown opcode or
    non-monotonic LSN: all are indistinguishable from a crash mid-append,
    and truncating to the last good record is exactly the contract a
    redo log offers.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], 0

    records: list[WalRecord] = []
    offset = 0
    previous_lsn = 0
    while offset + _HEADER.size <= len(data):
        length, checksum = _HEADER.unpack_from(data, offset)
        body_start = offset + _HEADER.size
        if length < _BODY_PREFIX.size or length > _MAX_RECORD_BYTES:
            break
        if body_start + length > len(data):
            break
        body = data[body_start:body_start + length]
        if zlib.crc32(body) != checksum:
            break
        lsn, opcode = _BODY_PREFIX.unpack_from(body, 0)
        try:
            op = WalOp(opcode)
        except ValueError:
            break
        if lsn <= previous_lsn:
            break
        records.append(
            WalRecord(lsn=lsn, op=op,
                      payload=decode_payload(op, body[_BODY_PREFIX.size:]))
        )
        previous_lsn = lsn
        offset = body_start + length
    return records, offset


# ------------------------------------------------------------------- file seam

class _OsFile:
    """Thin append-mode file wrapper exposing the seam the WAL writes through.

    The fault-injection harness substitutes an object with the same four
    methods (``write``/``flush``/``sync``/``close``) that can die mid-write
    or fail a sync; production code gets a buffered OS file plus ``fsync``.
    """

    def __init__(self, path: str) -> None:
        self._handle = open(path, "ab")

    def write(self, data: bytes) -> int:
        return self._handle.write(data)

    def flush(self) -> None:
        self._handle.flush()

    def sync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.close()


class WriteAheadLog:
    """Appender over one WAL file with an explicit fsync policy.

    Opening scans the existing file (if any), truncates a torn tail, and
    continues the LSN sequence after the last valid record.

    Args:
        path: WAL file path.
        fsync: When appends are forced to stable storage.
        fsync_interval: Group-commit size under :attr:`FsyncPolicy.BATCH`.
        opener: ``opener(path) -> file-like`` used for appending; the
            fault-injection seam.  ``None`` opens a real buffered file.
    """

    def __init__(self, path: str, fsync: FsyncPolicy = FsyncPolicy.BATCH,
                 fsync_interval: int = 64, opener=None) -> None:
        self.path = path
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        records, valid_bytes = scan_wal(path)
        self._truncate_to(valid_bytes)
        self.last_lsn = records[-1].lsn if records else 0
        self.existing_records = len(records)
        self.records_appended = 0
        self.bytes_appended = 0
        self.sync_count = 0
        self._unsynced = 0
        self._opener = opener or _OsFile
        self._file = self._opener(path)

    # ------------------------------------------------------------------ append

    def append(self, op: WalOp, payload: dict) -> int:
        """Append one record and return its LSN."""
        return self.append_group([(op, payload)])

    def append_group(self, entries: Iterable[tuple[WalOp, dict]]) -> int:
        """Append a group of records with one write call and one sync decision.

        The whole group is encoded first — an unencodable payload raises
        before any byte reaches the file — then written with a single
        ``write``, which is what makes a batched ``insert_many`` cost one
        syscall regardless of batch size.

        Returns:
            The LSN of the last record in the group.
        """
        entries = list(entries)
        if not entries:
            return self.last_lsn
        chunks = []
        lsn = self.last_lsn
        for op, payload in entries:
            lsn += 1
            chunks.append(encode_record(lsn, op, payload))
        blob = b"".join(chunks)
        self._file.write(blob)
        self.last_lsn = lsn
        self.records_appended += len(entries)
        self.bytes_appended += len(blob)
        self._unsynced += len(entries)
        if self.fsync is FsyncPolicy.ALWAYS:
            self._sync()
        elif (self.fsync is FsyncPolicy.BATCH
                and self._unsynced >= self.fsync_interval):
            self._sync()
        else:
            self._file.flush()
        return lsn

    def flush(self) -> None:
        """Force buffered records out; fsync unless the policy is ``OFF``."""
        if self.fsync is FsyncPolicy.OFF:
            self._file.flush()
        else:
            self._sync()

    def _sync(self) -> None:
        self._file.sync()
        self.sync_count += 1
        self._unsynced = 0

    # ------------------------------------------------------------ maintenance

    @property
    def total_records(self) -> int:
        """Valid records found at open plus records appended since."""
        return self.existing_records + self.records_appended

    def reset(self) -> None:
        """Discard every record (used after a checkpoint made them redundant).

        The LSN sequence keeps counting — LSNs are never reused, so a record
        written after a reset still sorts after the checkpoint it follows.
        """
        self._file.close()
        with open(self.path, "wb"):
            pass
        self.existing_records = 0
        self.records_appended = 0
        self._unsynced = 0
        self._file = self._opener(self.path)

    def close(self) -> None:
        """Flush and close the underlying file."""
        try:
            self.flush()
        finally:
            self._file.close()

    def _truncate_to(self, valid_bytes: int) -> None:
        """Physically cut a torn tail off the file before appending."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        if size > valid_bytes:
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)
