"""DurabilityManager: the glue between ``Database`` and the WAL/checkpoints.

The manager owns the WAL appender and the checkpoint cadence.  ``Database``
calls one ``log_*`` hook per DDL/DML operation *after validating the inputs
and before mutating any state* (write-ahead), and ``maybe_auto_checkpoint``
after each mutation.  The default in-memory engine never constructs one, so
the hot paths pay a single ``is None`` test when durability is off.
"""

from __future__ import annotations

import os

from repro.durability.checkpoint import schema_to_manifest, write_checkpoint
from repro.durability.config import (
    DurabilityConfig,
    DurabilityStats,
    RecoveryTimings,
)
from repro.durability.wal import WalOp, WriteAheadLog
from repro.errors import DurabilityError

WAL_FILENAME = "wal.log"


def wal_path(config: DurabilityConfig) -> str:
    """The WAL file path of a durability directory."""
    return os.path.join(config.directory, WAL_FILENAME)


def directory_has_state(config: DurabilityConfig) -> bool:
    """Whether the durability directory already holds a WAL or checkpoint.

    A fresh ``Database(durability=...)`` refuses to open such a directory —
    silently appending to a previous run's log with a new, empty engine
    would corrupt the recovery story.  ``repro.durability.recovery.recover``
    is the entry point for existing state.
    """
    path = wal_path(config)
    if os.path.exists(path) and os.path.getsize(path) > 0:
        return True
    try:
        names = os.listdir(config.directory)
    except OSError:
        return False
    return any(name.startswith("checkpoint-") for name in names)


class DurabilityManager:
    """Write-ahead logging + checkpointing for one Database.

    Args:
        config: The durability parameters.
        resume: Set by recovery when attaching to a directory that already
            holds state; a fresh manager on a used directory raises.
        checkpoint_lsn: LSN covered by the newest checkpoint (resume only).
        records_since_checkpoint: WAL-tail length at attach time (resume
            only) — seeds the auto-checkpoint cadence and ``checkpoint_age``.
        recovery: Timings of the recovery that produced the database, if any.
    """

    def __init__(self, config: DurabilityConfig, *, resume: bool = False,
                 checkpoint_lsn: int = 0, records_since_checkpoint: int = 0,
                 recovery: RecoveryTimings | None = None) -> None:
        if not resume and directory_has_state(config):
            raise DurabilityError(
                f"durability directory {config.directory!r} already holds a "
                f"WAL or checkpoint; use repro.durability.recovery.recover() "
                f"to restore it (or point a fresh database at an empty "
                f"directory)"
            )
        os.makedirs(config.directory, exist_ok=True)
        self.config = config
        self.wal = WriteAheadLog(
            wal_path(config), fsync=config.fsync,
            fsync_interval=config.fsync_interval, opener=config.opener,
        )
        # After a checkpoint the WAL file is empty, so a reopened appender
        # would restart the LSN sequence below the checkpoint — and recovery
        # would then skip the new records.  Floor it at the checkpoint LSN.
        self.wal.last_lsn = max(self.wal.last_lsn, checkpoint_lsn)
        self.checkpoint_lsn = checkpoint_lsn
        self.records_since_checkpoint = records_since_checkpoint
        self.recovery = recovery

    # ----------------------------------------------------------------- logging

    def _log(self, op: WalOp, payload: dict) -> int:
        lsn = self.wal.append(op, payload)
        self.records_since_checkpoint += 1
        return lsn

    def log_create_table(self, schema) -> int:
        """Log a ``create_table`` for a :class:`TableSchema`."""
        return self._log(WalOp.CREATE_TABLE,
                         {"schema": schema_to_manifest(schema)})

    def log_create_index(self, definition: dict) -> int:
        """Log a ``create_index`` with its fully resolved definition."""
        return self._log(WalOp.CREATE_INDEX, definition)

    def log_create_composite_index(self, definition: dict) -> int:
        """Log a ``create_composite_index`` definition."""
        return self._log(WalOp.CREATE_COMPOSITE_INDEX, definition)

    def log_drop_index(self, table_name: str, index_name: str) -> int:
        """Log a ``drop_index``."""
        return self._log(WalOp.DROP_INDEX,
                         {"table": table_name, "name": index_name})

    def log_insert_many(self, table_name: str, columns: dict) -> int:
        """Log a whole ``insert_many`` batch as one group-appended record."""
        return self._log(WalOp.INSERT_MANY,
                         {"table": table_name, "columns": columns})

    def log_update(self, table_name: str, location: int, changes: dict) -> int:
        """Log an ``update`` (raw, pre-coercion changes).

        Numpy scalars are unwrapped to plain Python values so the JSON
        payload round-trips bit-identically.
        """
        plain = {name: value.item() if hasattr(value, "item") else value
                 for name, value in changes.items()}
        return self._log(WalOp.UPDATE, {
            "table": table_name, "location": int(location),
            "changes": plain,
        })

    def log_delete(self, table_name: str, location: int) -> int:
        """Log a ``delete``."""
        return self._log(WalOp.DELETE,
                         {"table": table_name, "location": int(location)})

    # ------------------------------------------------------------ checkpoints

    def checkpoint(self, database) -> int:
        """Snapshot ``database`` and truncate the now-redundant WAL.

        Returns the LSN the checkpoint covers.  The WAL reset happens only
        after the manifest rename committed the checkpoint; a crash in
        between leaves stale (lsn <= checkpoint) records in the log, which
        recovery skips by LSN.
        """
        lsn = self.wal.last_lsn
        write_checkpoint(database, self.config.directory, lsn,
                         keep_checkpoints=self.config.keep_checkpoints)
        self.wal.reset()
        self.checkpoint_lsn = lsn
        self.records_since_checkpoint = 0
        return lsn

    def maybe_auto_checkpoint(self, database) -> bool:
        """Checkpoint when the configured record cadence has elapsed."""
        interval = self.config.checkpoint_interval_records
        if interval is None or self.records_since_checkpoint < interval:
            return False
        self.checkpoint(database)
        return True

    # ------------------------------------------------------------------- misc

    def flush(self) -> None:
        """Force the WAL out (fsync unless the policy is ``off``)."""
        self.wal.flush()

    def close(self) -> None:
        """Flush and close the WAL."""
        self.wal.close()

    def stats(self) -> DurabilityStats:
        """Current counters as a :class:`DurabilityStats`."""
        return DurabilityStats(
            enabled=True,
            wal_records=self.wal.records_appended,
            last_lsn=self.wal.last_lsn,
            wal_bytes=self.wal.bytes_appended,
            fsyncs=self.wal.sync_count,
            checkpoint_lsn=self.checkpoint_lsn,
            checkpoint_age=self.records_since_checkpoint,
            recovery=self.recovery,
        )
