"""Configuration and observability types for the durability subsystem.

The durability plane is strictly opt-in: a :class:`~repro.engine.database.Database`
constructed without a :class:`DurabilityConfig` never touches the filesystem
and pays no per-operation overhead beyond a single ``is None`` check.  With a
config attached, every DDL/DML call is appended to a write-ahead log before it
mutates engine state, and :meth:`Database.checkpoint` snapshots the base
tables so recovery replays only the WAL tail.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError


class FsyncPolicy(enum.Enum):
    """When the WAL forces its appends to stable storage.

    * ``ALWAYS`` — ``fsync`` after every appended record (classic
      commit-per-record durability; slowest, loses nothing on a crash).
    * ``BATCH``  — group commit: ``fsync`` once every
      ``DurabilityConfig.fsync_interval`` records and on explicit
      :meth:`~repro.durability.wal.WriteAheadLog.flush`.  A crash can lose at
      most the unsynced suffix of the log.
    * ``OFF``    — never ``fsync`` (the OS page cache decides); a crash may
      lose any buffered suffix, but whatever prefix survives is still
      replayable thanks to the per-record checksums.
    """

    ALWAYS = "always"
    BATCH = "batch"
    OFF = "off"


@dataclass(frozen=True)
class DurabilityConfig:
    """Parameters of the durability plane.

    Attributes:
        directory: Directory holding the WAL and checkpoints.  Created on
            first use.
        fsync: The :class:`FsyncPolicy` of the write-ahead log.
        fsync_interval: Group-commit size under ``FsyncPolicy.BATCH`` — the
            WAL fsyncs once per this many appended records.
        checkpoint_interval_records: Automatically checkpoint after this many
            WAL records have accumulated since the previous checkpoint;
            ``None`` leaves checkpointing fully manual
            (:meth:`Database.checkpoint`).
        keep_checkpoints: How many most-recent valid checkpoints to retain
            when a new one is written.
        opener: Factory used to open the WAL file for appending — the seam
            the fault-injection harness plugs into
            (:class:`repro.durability.faultinject.FaultInjector` supplies one
            that can kill the process mid-write or fail ``fsync``).  ``None``
            uses the real filesystem.
    """

    directory: str
    fsync: FsyncPolicy = FsyncPolicy.BATCH
    fsync_interval: int = 64
    checkpoint_interval_records: int | None = None
    keep_checkpoints: int = 1
    opener: Callable | None = None

    def __post_init__(self) -> None:
        if not self.directory:
            raise ConfigurationError("durability directory must be non-empty")
        if self.fsync_interval < 1:
            raise ConfigurationError("fsync_interval must be at least 1")
        if (self.checkpoint_interval_records is not None
                and self.checkpoint_interval_records < 1):
            raise ConfigurationError(
                "checkpoint_interval_records must be at least 1"
            )
        if self.keep_checkpoints < 1:
            raise ConfigurationError("keep_checkpoints must be at least 1")


@dataclass
class RecoveryTimings:
    """Wall-clock breakdown of one recovery, surfaced on DurabilityStats.

    Attributes:
        checkpoint_load_s: Loading + restoring the newest valid checkpoint.
        rebuild_s: Rebuilding the primary index and every secondary
            mechanism from the restored base tables (the paper's
            cheap-to-rebuild story: mechanisms are never logged, only
            rebuilt).
        wal_replay_s: Replaying the WAL tail through the batched DML paths.
        records_replayed: WAL records applied after the checkpoint.
        total_s: End-to-end recovery time.
    """

    checkpoint_load_s: float = 0.0
    rebuild_s: float = 0.0
    wal_replay_s: float = 0.0
    records_replayed: int = 0
    total_s: float = 0.0

    def as_dict(self) -> dict:
        """Plain-dict form for JSON benchmark records."""
        return {
            "checkpoint_load_s": self.checkpoint_load_s,
            "rebuild_s": self.rebuild_s,
            "wal_replay_s": self.wal_replay_s,
            "records_replayed": self.records_replayed,
            "total_s": self.total_s,
        }


@dataclass
class DurabilityStats:
    """Counters surfaced by :meth:`Database.durability_stats`.

    Attributes:
        enabled: Whether a durability config is attached at all.
        wal_records: Records appended to the WAL over this process's
            lifetime (not counting replayed ones).
        last_lsn: LSN of the most recently appended record (0 = none yet).
        wal_bytes: Bytes appended to the WAL by this process.
        fsyncs: Number of ``fsync`` calls the WAL issued.
        checkpoint_lsn: LSN covered by the newest checkpoint (0 = none).
        checkpoint_age: WAL records appended since the newest checkpoint —
            the length of the tail a crash right now would have to replay.
        recovery: Timings of the recovery that produced this database, if
            it was produced by one.
    """

    enabled: bool = False
    wal_records: int = 0
    last_lsn: int = 0
    wal_bytes: int = 0
    fsyncs: int = 0
    checkpoint_lsn: int = 0
    checkpoint_age: int = 0
    recovery: RecoveryTimings | None = field(default=None)

    def as_dict(self) -> dict:
        """Plain-dict form for JSON benchmark records."""
        payload = {
            "enabled": self.enabled,
            "wal_records": self.wal_records,
            "last_lsn": self.last_lsn,
            "wal_bytes": self.wal_bytes,
            "fsyncs": self.fsyncs,
            "checkpoint_lsn": self.checkpoint_lsn,
            "checkpoint_age": self.checkpoint_age,
        }
        if self.recovery is not None:
            payload["recovery"] = self.recovery.as_dict()
        return payload
