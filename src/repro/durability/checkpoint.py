"""Checkpointing: atomic snapshots of base tables + catalog definitions.

A checkpoint captures everything recovery needs *except* index content:

* per table — the raw column arrays up to ``next_slot`` (dead slots
  included, so replayed WAL records address the same row locations), the
  liveness bitmap, and the running optimizer statistics;
* the catalog — table schemas and the creation-order list of secondary
  index *definitions* (never their content: mechanisms are rebuilt from the
  recovered data, the paper's succinct/rebuildable property made an actual
  recovery protocol).

On disk a checkpoint is a pair of files named by the LSN it covers::

    checkpoint-<lsn>.npz    column/liveness arrays (numeric only; string
                            columns are flattened to bytes+offsets+nulls so
                            no pickle is ever involved)
    checkpoint-<lsn>.json   manifest: schemas, index definitions, statistics,
                            and the CRC32 of the .npz payload

Both files are written to temporary names and atomically renamed, data file
first, manifest last — a crash mid-checkpoint leaves either no manifest (the
attempt is invisible) or a complete pair, so the previous checkpoint stays
the newest *valid* one.  :func:`find_latest_checkpoint` verifies the data
checksum before trusting a manifest.
"""

from __future__ import annotations

import json
import os
import re
import zlib

import numpy as np

from repro.errors import DurabilityError
from repro.storage.schema import Column, DataType, TableSchema

FORMAT_VERSION = 1

_MANIFEST_RE = re.compile(r"^checkpoint-(\d{20})\.json$")


def _checkpoint_stem(lsn: int) -> str:
    return f"checkpoint-{lsn:020d}"


def _string_column_arrays(values: np.ndarray) -> dict[str, np.ndarray]:
    """Flatten an object array of str/None into three numeric arrays."""
    encoded = [None if v is None else str(v).encode("utf-8")
               for v in values.tolist()]
    lengths = [0 if raw is None else len(raw) for raw in encoded]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    payload = b"".join(raw for raw in encoded if raw is not None)
    return {
        "bytes": np.frombuffer(payload, dtype=np.uint8),
        "offsets": offsets,
        "null": np.asarray([raw is None for raw in encoded], dtype=bool),
    }


def _string_column_values(bytes_array: np.ndarray, offsets: np.ndarray,
                          null_mask: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_string_column_arrays`."""
    payload = bytes_array.tobytes()
    values = np.empty(len(null_mask), dtype=object)
    for i, is_null in enumerate(null_mask.tolist()):
        if is_null:
            values[i] = None
        else:
            values[i] = payload[offsets[i]:offsets[i + 1]].decode("utf-8")
    return values


def schema_to_manifest(schema: TableSchema) -> dict:
    """Serialise a :class:`TableSchema` to its JSON-manifest form."""
    return {
        "name": schema.name,
        "primary_key": schema.primary_key,
        "columns": [
            {"name": c.name, "dtype": c.dtype.value, "nullable": c.nullable}
            for c in schema
        ],
    }


def schema_from_manifest(payload: dict) -> TableSchema:
    """Rebuild a :class:`TableSchema` from its manifest form."""
    columns = [
        Column(c["name"], dtype=DataType(c["dtype"]), nullable=c["nullable"])
        for c in payload["columns"]
    ]
    return TableSchema(payload["name"], columns, primary_key=payload["primary_key"])


def write_checkpoint(database, directory: str, lsn: int,
                     keep_checkpoints: int = 1) -> str:
    """Write an atomic checkpoint covering all records up to ``lsn``.

    Returns the manifest path of the new checkpoint.  Older checkpoints
    beyond ``keep_checkpoints`` are pruned only after the new manifest is
    in place.
    """
    os.makedirs(directory, exist_ok=True)
    stem = _checkpoint_stem(lsn)
    arrays: dict[str, np.ndarray] = {}
    tables = []
    indexes = []
    for entry in database.catalog.tables():
        snapshot = entry.table.snapshot()
        for name, column in snapshot.columns.items():
            if column.dtype == object:
                for part, array in _string_column_arrays(column).items():
                    arrays[f"{entry.name}::{name}::{part}"] = array
            else:
                arrays[f"{entry.name}::{name}"] = column
        arrays[f"{entry.name}::__live__"] = snapshot.live
        tables.append({
            "name": entry.name,
            "schema": schema_to_manifest(entry.table.schema),
            "next_slot": snapshot.next_slot,
            "statistics": {
                name: {"count": count, "minimum": minimum, "maximum": maximum}
                for name, (count, minimum, maximum)
                in snapshot.statistics.items()
            },
        })
        for index_entry in entry.indexes.values():
            if index_entry.definition is None:
                raise DurabilityError(
                    f"index {index_entry.name!r} carries no creation "
                    f"definition; it cannot be checkpointed"
                )
            indexes.append(index_entry.definition)

    data_name = stem + ".npz"
    data_tmp = os.path.join(directory, data_name + ".tmp")
    data_path = os.path.join(directory, data_name)
    with open(data_tmp, "wb") as handle:
        np.savez(handle, **arrays)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(data_tmp, data_path)

    with open(data_path, "rb") as handle:
        data_crc = zlib.crc32(handle.read())

    manifest = {
        "format_version": FORMAT_VERSION,
        "lsn": lsn,
        "pointer_scheme": database.pointer_scheme.value,
        "data_file": data_name,
        "data_crc32": data_crc,
        "tables": tables,
        "indexes": indexes,
    }
    manifest_tmp = os.path.join(directory, stem + ".json.tmp")
    manifest_path = os.path.join(directory, stem + ".json")
    with open(manifest_tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(manifest_tmp, manifest_path)

    _prune_old_checkpoints(directory, keep_checkpoints)
    return manifest_path


def _prune_old_checkpoints(directory: str, keep: int) -> None:
    """Remove all but the ``keep`` newest checkpoint pairs (and stale tmps)."""
    lsns = sorted(_checkpoint_lsns(directory), reverse=True)
    for lsn in lsns[keep:]:
        stem = os.path.join(directory, _checkpoint_stem(lsn))
        for suffix in (".json", ".npz"):
            try:
                os.remove(stem + suffix)
            except OSError:
                pass
    for name in os.listdir(directory):
        if name.endswith(".tmp"):
            try:
                os.remove(os.path.join(directory, name))
            except OSError:
                pass


def _checkpoint_lsns(directory: str) -> list[int]:
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    lsns = []
    for name in names:
        match = _MANIFEST_RE.match(name)
        if match:
            lsns.append(int(match.group(1)))
    return lsns


def find_latest_checkpoint(directory: str) -> tuple[dict, dict] | None:
    """Locate the newest *valid* checkpoint in ``directory``.

    Returns:
        ``(manifest, arrays)`` for the highest-LSN checkpoint whose manifest
        parses and whose data file matches its recorded CRC32, or ``None``
        when no valid checkpoint exists.  Invalid candidates (torn manifest,
        missing or corrupt data file) are skipped, not fatal — exactly the
        crash-mid-checkpoint cases the atomic rename protocol tolerates.
    """
    for lsn in sorted(_checkpoint_lsns(directory), reverse=True):
        manifest_path = os.path.join(directory, _checkpoint_stem(lsn) + ".json")
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if manifest.get("format_version") != FORMAT_VERSION:
            continue
        data_path = os.path.join(directory, manifest["data_file"])
        try:
            with open(data_path, "rb") as handle:
                raw = handle.read()
        except OSError:
            continue
        if zlib.crc32(raw) != manifest["data_crc32"]:
            continue
        with np.load(data_path) as payload:
            arrays = {name: payload[name] for name in payload.files}
        return manifest, arrays
    return None


def restore_table_arrays(table_manifest: dict,
                         arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Reassemble the per-column arrays of one table from the npz payload."""
    name = table_manifest["name"]
    columns: dict[str, np.ndarray] = {}
    for column in table_manifest["schema"]["columns"]:
        cname = column["name"]
        if DataType(column["dtype"]) is DataType.STRING:
            columns[cname] = _string_column_values(
                arrays[f"{name}::{cname}::bytes"],
                arrays[f"{name}::{cname}::offsets"],
                arrays[f"{name}::{cname}::null"],
            )
        else:
            columns[cname] = arrays[f"{name}::{cname}"]
    return columns
