"""Crash fault injection for the durability tests and benchmarks.

The write-ahead log performs all of its IO through an ``opener(path) ->
file-like`` seam (:class:`~repro.durability.wal.WriteAheadLog`).  This module
supplies a :class:`FaultInjector` whose opener yields :class:`FaultyFile`
objects that can

* **kill the process** at an exact cumulative WAL byte offset — the bytes up
  to the offset are written (optionally with a garbled tail), everything
  after is dropped, and :class:`SimulatedCrash` is raised;
* **tear a write** — silently drop (or garble) the tail of one ``write``
  call without raising, modelling a sector-aligned partial write that the
  application never observed; and
* **fail ``fsync`` once** — the next ``sync`` raises :class:`FsyncFailure`
  after dropping the unflushed buffer, modelling a device error at the
  worst moment.

``SimulatedCrash`` deliberately derives from :class:`BaseException` (like
``KeyboardInterrupt``): no ``except Exception`` handler inside the engine can
swallow it, so a test that injects a crash observes exactly what a killed
process would have left on disk.

Property tests drive this with hypothesis-chosen byte offsets and assert
that recovery from whatever survives equals a shadow in-memory replay — see
``tests/test_durability_recovery.py``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


class SimulatedCrash(BaseException):
    """The injected process death.  Not a :class:`ReproError` on purpose."""


class FsyncFailure(OSError):
    """An injected one-shot ``fsync`` device error."""


@dataclass
class FaultPoint:
    """Where and how a fault fires, in cumulative bytes written to the WAL.

    Attributes:
        crash_at_byte: Die once this many total bytes have been written;
            the write in flight is truncated at the boundary.  ``None``
            disables the crash.
        garble_tail: Corrupt (bit-flip) up to this many bytes just before
            the crash boundary instead of cutting cleanly — models a torn
            sector that was partially, wrongly, persisted.
        torn_write_at_byte: Drop the remainder of the single ``write`` call
            that crosses this offset, then keep running (no exception) —
            the application believes the append succeeded.
        fail_fsync_after: Raise :class:`FsyncFailure` on the first ``sync``
            once this many bytes have been written (0 = first sync).
            ``None`` disables it.  Fires at most once.
    """

    crash_at_byte: int | None = None
    garble_tail: int = 0
    torn_write_at_byte: int | None = None
    fail_fsync_after: int | None = None


@dataclass
class FaultInjector:
    """Shared byte accounting across every file the injector opens.

    One injector models one process lifetime: the byte counter keeps
    running across WAL resets (checkpoints reopen the file), so a single
    ``crash_at_byte`` can land inside any append of the whole run.
    """

    fault: FaultPoint = field(default_factory=FaultPoint)
    bytes_written: int = 0
    fsync_failed: bool = False
    crashed: bool = False

    def opener(self, path: str) -> "FaultyFile":
        """The seam handed to :class:`DurabilityConfig` / the WAL."""
        return FaultyFile(path, self)


class FaultyFile:
    """Append-mode file that routes every write through a FaultInjector."""

    def __init__(self, path: str, injector: FaultInjector) -> None:
        self._handle = open(path, "ab")
        self._injector = injector

    def write(self, data: bytes) -> int:
        injector = self._injector
        fault = injector.fault
        start = injector.bytes_written
        end = start + len(data)

        if (fault.torn_write_at_byte is not None
                and start <= fault.torn_write_at_byte < end):
            keep = fault.torn_write_at_byte - start
            self._handle.write(data[:keep])
            injector.bytes_written = end  # the caller believes it all landed
            fault.torn_write_at_byte = None
            return len(data)

        if fault.crash_at_byte is not None and fault.crash_at_byte < end:
            keep = max(0, fault.crash_at_byte - start)
            surviving = bytearray(data[:keep])
            garble = min(fault.garble_tail, len(surviving))
            for i in range(len(surviving) - garble, len(surviving)):
                surviving[i] ^= 0xFF
            self._handle.write(bytes(surviving))
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            injector.crashed = True
            raise SimulatedCrash(
                f"injected crash at WAL byte {fault.crash_at_byte}"
            )

        self._handle.write(data)
        injector.bytes_written = end
        return len(data)

    def flush(self) -> None:
        self._handle.flush()

    def sync(self) -> None:
        injector = self._injector
        fault = injector.fault
        if (fault.fail_fsync_after is not None and not injector.fsync_failed
                and injector.bytes_written >= fault.fail_fsync_after):
            injector.fsync_failed = True
            raise FsyncFailure("injected fsync failure")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()
