"""Durability subsystem: write-ahead log, checkpoints, recovery, faults.

Kept import-light on purpose: ``engine/database.py`` imports the config and
manager submodules, while :mod:`repro.durability.recovery` imports
``Database`` — so ``recover`` is exposed lazily to avoid a cycle.
"""

from repro.durability.config import (
    DurabilityConfig,
    DurabilityStats,
    FsyncPolicy,
    RecoveryTimings,
)
from repro.durability.faultinject import (
    FaultInjector,
    FaultPoint,
    FaultyFile,
    FsyncFailure,
    SimulatedCrash,
)
from repro.durability.wal import WalOp, WalRecord, WriteAheadLog, scan_wal

__all__ = [
    "DurabilityConfig",
    "DurabilityStats",
    "FsyncPolicy",
    "RecoveryTimings",
    "FaultInjector",
    "FaultPoint",
    "FaultyFile",
    "FsyncFailure",
    "SimulatedCrash",
    "WalOp",
    "WalRecord",
    "WriteAheadLog",
    "scan_wal",
    "recover",
]


def __getattr__(name: str):
    if name == "recover":
        from repro.durability.recovery import recover
        return recover
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
