"""Correlation functions used to generate and to reason about correlated columns.

The paper's synthetic workload derives the host column from the target column
through a *correlation function* (``colB = Fn(colC)``), studies Linear and
Sigmoid functions in depth, and uses the Sine function (Appendix D.1,
Figure 25) as the example of a non-monotonic correlation Hermit cannot model
well.  These function objects are shared by the workload generators, the
correlation-discovery tests and the false-positive experiments.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


class CorrelationFunction(abc.ABC):
    """A deterministic mapping from target-column values to host-column values."""

    name: str = "abstract"

    @abc.abstractmethod
    def apply(self, values: np.ndarray) -> np.ndarray:
        """Map target values to host values."""

    def __call__(self, values: np.ndarray) -> np.ndarray:
        return self.apply(np.asarray(values, dtype=np.float64))

    @property
    def is_monotonic(self) -> bool:
        """Whether the function is monotonic over its intended domain."""
        return True


@dataclass
class LinearFunction(CorrelationFunction):
    """``host = slope * target + intercept`` — the paper's Linear workload."""

    slope: float = 2.0
    intercept: float = 10.0
    name: str = "linear"

    def apply(self, values: np.ndarray) -> np.ndarray:
        return self.slope * values + self.intercept


@dataclass
class SigmoidFunction(CorrelationFunction):
    """A scaled logistic curve — the paper's Sigmoid (monotonic, non-linear) workload.

    ``host = scale / (1 + exp(-steepness * (target - midpoint)))``.
    """

    midpoint: float = 0.0
    steepness: float = 1.0
    scale: float = 1.0
    name: str = "sigmoid"

    def apply(self, values: np.ndarray) -> np.ndarray:
        return self.scale / (1.0 + np.exp(-self.steepness * (values - self.midpoint)))


@dataclass
class SineFunction(CorrelationFunction):
    """``host = amplitude * sin(frequency * target)`` — non-monotonic (Figure 25c)."""

    amplitude: float = 1.0
    frequency: float = 1.0
    name: str = "sine"

    def apply(self, values: np.ndarray) -> np.ndarray:
        return self.amplitude * np.sin(self.frequency * values)

    @property
    def is_monotonic(self) -> bool:
        return False


@dataclass
class PolynomialFunction(CorrelationFunction):
    """``host = sum_i coefficients[i] * target ** i``."""

    coefficients: tuple[float, ...] = (0.0, 1.0)
    name: str = "polynomial"

    def apply(self, values: np.ndarray) -> np.ndarray:
        result = np.zeros_like(values, dtype=np.float64)
        for power, coefficient in enumerate(self.coefficients):
            result += coefficient * values ** power
        return result

    @property
    def is_monotonic(self) -> bool:
        # Only guaranteed for degree <= 1; higher degrees are treated as
        # potentially non-monotonic.
        return len(self.coefficients) <= 2


def inject_noise(hosts: np.ndarray, noise_fraction: float, noise_scale: float,
                 rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Replace a fraction of host values with uniformly distributed noise.

    The paper injects "uniformly distributed noisy data" into the derived
    column; the noisy tuples are exactly the ones TRS-Tree should park in its
    outlier buffers.

    Args:
        hosts: Clean host values.
        noise_fraction: Fraction of tuples to perturb (0 disables).
        noise_scale: Magnitude of the uniform noise band added to the value.
        rng: Source of randomness.

    Returns:
        ``(noisy_hosts, noise_mask)`` where ``noise_mask[i]`` is True for the
        perturbed tuples.
    """
    hosts = np.asarray(hosts, dtype=np.float64).copy()
    count = len(hosts)
    mask = np.zeros(count, dtype=bool)
    if noise_fraction <= 0 or count == 0:
        return hosts, mask
    num_noisy = int(round(count * noise_fraction))
    if num_noisy == 0:
        return hosts, mask
    positions = rng.choice(count, size=num_noisy, replace=False)
    offsets = rng.uniform(noise_scale * 0.5, noise_scale, size=num_noisy)
    signs = rng.choice((-1.0, 1.0), size=num_noisy)
    hosts[positions] = hosts[positions] + signs * offsets
    mask[positions] = True
    return hosts, mask
