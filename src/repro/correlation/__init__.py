"""Correlation functions, discovery and the host-column advisor."""

from repro.correlation.advisor import HostColumnAdvisor, IndexRecommendation
from repro.correlation.discovery import (
    CorrelationCandidate,
    CorrelationDiscoverer,
    pearson_coefficient,
    spearman_coefficient,
)
from repro.correlation.functions import (
    CorrelationFunction,
    LinearFunction,
    PolynomialFunction,
    SigmoidFunction,
    SineFunction,
    inject_noise,
)

__all__ = [
    "CorrelationCandidate",
    "CorrelationDiscoverer",
    "CorrelationFunction",
    "HostColumnAdvisor",
    "IndexRecommendation",
    "LinearFunction",
    "PolynomialFunction",
    "SigmoidFunction",
    "SineFunction",
    "inject_noise",
    "pearson_coefficient",
    "spearman_coefficient",
]
