"""Host-column advisor.

When a user asks for an index on a target column, the engine consults the
advisor to decide whether a correlated *host* column with an existing complete
index makes a Hermit index viable, or whether a conventional B+-tree should be
built instead.  This mirrors the decision flow of the running example in
Section 3: "the RDBMS first checks whether any column correlation involving
TIME or SP has been detected".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.correlation.discovery import CorrelationCandidate, CorrelationDiscoverer
from repro.storage.table import Table


@dataclass(frozen=True)
class IndexRecommendation:
    """The advisor's answer for one requested index.

    Attributes:
        target_column: Column the user wants indexed.
        use_hermit: Whether a Hermit index is recommended.
        host_column: The chosen host column (None for a conventional index).
        candidate: The measured correlation backing the recommendation.
        reason: Human-readable justification.
    """

    target_column: str
    use_hermit: bool
    host_column: str | None
    candidate: CorrelationCandidate | None
    reason: str


class HostColumnAdvisor:
    """Chooses a host column for a prospective Hermit index.

    Args:
        discoverer: The correlation-discovery engine used to measure pairs.
        minimum_strength: Minimum correlation strength for recommending Hermit.
        require_monotonic: Reject non-monotonic correlations (sine-like), which
            Hermit cannot exploit efficiently (Appendix D.1).
    """

    def __init__(self, discoverer: CorrelationDiscoverer | None = None,
                 minimum_strength: float = 0.9,
                 require_monotonic: bool = True) -> None:
        self.discoverer = discoverer or CorrelationDiscoverer()
        self.minimum_strength = minimum_strength
        self.require_monotonic = require_monotonic

    def recommend(self, table: Table, target_column: str,
                  indexed_columns: list[str]) -> IndexRecommendation:
        """Recommend how to index ``target_column``.

        Args:
            table: The table the index is requested on.
            target_column: The column to index.
            indexed_columns: Columns that already carry a complete index — the
                only viable host candidates.

        Returns:
            An :class:`IndexRecommendation`; ``use_hermit`` is False when no
            indexed column is sufficiently (and usably) correlated.
        """
        best: CorrelationCandidate | None = None
        for host in indexed_columns:
            if host == target_column:
                continue
            candidate = self.discoverer.measure(table, target_column, host)
            if best is None or candidate.strength > best.strength:
                best = candidate

        if best is None:
            return IndexRecommendation(
                target_column, False, None, None,
                "no indexed columns are available as hosts",
            )
        if best.strength < self.minimum_strength:
            return IndexRecommendation(
                target_column, False, None, best,
                f"strongest correlation {best.strength:.3f} with "
                f"{best.host_column!r} is below the {self.minimum_strength} threshold",
            )
        if self.require_monotonic and not best.is_monotonic:
            return IndexRecommendation(
                target_column, False, None, best,
                f"correlation with {best.host_column!r} is not monotonic; "
                "a TRS-Tree would produce too many false positives",
            )
        return IndexRecommendation(
            target_column, True, best.host_column, best,
            f"column {best.host_column!r} is correlated "
            f"(pearson={best.pearson:.3f}, spearman={best.spearman:.3f})",
        )
