"""Correlation discovery.

Hermit itself "fully relies on the underlying RDBMS or users to perform
correlation discovery" (Appendix D.1).  This module provides the discovery
machinery such an RDBMS would run: Pearson and Spearman coefficients computed
on samples (the CORDS approach of sampling to keep discovery cheap), and a
scanner that evaluates every candidate column pair of a table against a
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CorrelationError
from repro.storage.table import Table


def pearson_coefficient(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson product-moment correlation coefficient of two columns.

    Returns 0.0 when either column is constant (no linear association can be
    measured), which is the convention the advisor relies on.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if len(x) != len(y):
        raise CorrelationError("columns must have equal length")
    if len(x) < 2:
        raise CorrelationError("need at least two values to measure correlation")
    x_std = float(np.std(x))
    y_std = float(np.std(y))
    if x_std == 0.0 or y_std == 0.0:
        return 0.0
    covariance = float(np.mean((x - np.mean(x)) * (y - np.mean(y))))
    return covariance / (x_std * y_std)


def spearman_coefficient(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation coefficient.

    Detects monotonic (not necessarily linear) association — the statistic the
    paper's DBA uses to recognise the Sigmoid-style correlations Hermit can
    still exploit.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if len(x) != len(y):
        raise CorrelationError("columns must have equal length")
    if len(x) < 2:
        raise CorrelationError("need at least two values to measure correlation")
    return pearson_coefficient(_rank(x), _rank(y))


def _rank(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties receive the mean of their rank positions)."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(1, len(values) + 1, dtype=np.float64)
    # Average the ranks of tied values.
    unique_values, inverse, counts = np.unique(
        values, return_inverse=True, return_counts=True
    )
    sums = np.zeros(len(unique_values))
    np.add.at(sums, inverse, ranks)
    return sums[inverse] / counts[inverse]


@dataclass(frozen=True)
class CorrelationCandidate:
    """One discovered (target, host) correlation.

    Attributes:
        target_column: Column a future query might filter on.
        host_column: Correlated column that already has (or will get) an index.
        pearson: Pearson coefficient measured on the sample.
        spearman: Spearman coefficient measured on the sample.
    """

    target_column: str
    host_column: str
    pearson: float
    spearman: float

    @property
    def strength(self) -> float:
        """The stronger of the two coefficients, in absolute value."""
        return max(abs(self.pearson), abs(self.spearman))

    @property
    def is_monotonic(self) -> bool:
        """Heuristic monotonicity check (|Spearman| close to 1)."""
        return abs(self.spearman) >= 0.95


class CorrelationDiscoverer:
    """Sampling-based correlation discovery over a table's numeric columns.

    Args:
        sample_size: Maximum number of rows sampled per column pair.
        threshold: Minimum coefficient (Pearson or Spearman, absolute value)
            for a pair to be reported.
        seed: Seed of the sampling RNG, for reproducibility.
    """

    def __init__(self, sample_size: int = 2000, threshold: float = 0.9,
                 seed: int = 7) -> None:
        self.sample_size = sample_size
        self.threshold = threshold
        self._rng = np.random.default_rng(seed)

    def measure(self, table: Table, target_column: str,
                host_column: str) -> CorrelationCandidate:
        """Measure the correlation between two named columns of ``table``."""
        slots = table.live_slots()
        if len(slots) == 0:
            raise CorrelationError("cannot measure correlations on an empty table")
        if len(slots) > self.sample_size:
            slots = self._rng.choice(slots, size=self.sample_size, replace=False)
        targets = table.values(slots, target_column).astype(np.float64)
        hosts = table.values(slots, host_column).astype(np.float64)
        return CorrelationCandidate(
            target_column=target_column,
            host_column=host_column,
            pearson=pearson_coefficient(targets, hosts),
            spearman=spearman_coefficient(targets, hosts),
        )

    def discover(self, table: Table,
                 candidate_columns: list[str] | None = None) -> list[CorrelationCandidate]:
        """Scan all ordered column pairs and keep those above the threshold.

        Args:
            table: The table to analyse.
            candidate_columns: Restrict discovery to these columns (all
                numeric columns when omitted).

        Returns:
            Candidates sorted by descending strength.
        """
        from repro.storage.schema import DataType

        names = candidate_columns or [
            column.name for column in table.schema
            if column.dtype is not DataType.STRING
        ]
        results: list[CorrelationCandidate] = []
        for target in names:
            for host in names:
                if target == host:
                    continue
                candidate = self.measure(table, target, host)
                if candidate.strength >= self.threshold:
                    results.append(candidate)
        results.sort(key=lambda c: c.strength, reverse=True)
        return results
