"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A table schema is invalid or a column reference cannot be resolved."""


class StorageError(ReproError):
    """The base table or heap file rejected an operation."""


class TupleNotFoundError(StorageError):
    """A tuple identifier does not resolve to a live tuple."""


class PageError(StorageError):
    """A slotted page rejected an operation (overflow, bad slot, ...)."""


class BufferPoolError(StorageError):
    """The buffer pool cannot satisfy a request (e.g. all frames pinned)."""


class IndexError_(ReproError):
    """An index structure rejected an operation.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class DuplicateKeyError(IndexError_):
    """A unique index rejected a duplicate key insertion."""


class KeyNotFoundError(IndexError_):
    """A key expected to be present in an index is missing."""


class DurabilityError(ReproError):
    """The durability subsystem rejected an operation (bad WAL payload,
    missing checkpoint, unserialisable value, ...)."""


class WalCorruptionError(DurabilityError):
    """A write-ahead-log file is corrupt beyond the tolerated torn tail.

    Torn tails (an incomplete or checksum-failing final record) are *not*
    errors — recovery truncates them silently.  This error marks corruption
    that cannot be explained by a crashed append, e.g. a bad record in the
    middle of the log followed by valid data.
    """


class ConcurrencyError(ReproError):
    """The reader-writer epoch protocol rejected an operation (for example a
    thread holding the read side asking for the write side, which would
    deadlock against itself)."""


class EpochDisciplineError(ConcurrencyError):
    """The epoch-lock discipline checker detected a protocol violation.

    Raised only by ``EpochManager(debug=True)`` (plus the always-on upgrade
    guard): a mutation on the shared side or without any side held, a
    read-to-write upgrade attempt, or a lock-order inversion between two
    managers.  The message carries the acquisition stack(s) involved.
    Subclasses :class:`ConcurrencyError` so callers that already handle the
    protocol's rejections keep working with the checker switched on."""


class ServingError(ReproError):
    """The serving front end rejected a request (server closed, ...)."""


class CatalogError(ReproError):
    """The catalog rejected an operation (unknown table, duplicate index, ...)."""


class QueryError(ReproError):
    """A query or predicate is malformed for the schema it targets."""


class ConfigurationError(ReproError):
    """A configuration object carries invalid parameter values."""


class CorrelationError(ReproError):
    """Correlation discovery or correlation-function evaluation failed."""
