"""Epoch-keyed query result caching.

The serving-layer complement of the planner's plan cache: where the plan
cache amortises *planning*, :class:`~repro.cache.result_cache.ResultCache`
amortises *execution* for repeated hot queries by remembering the final
post-validation location arrays, keyed on the canonicalised query and
validated against the owning table's committed write epoch
(``TableEntry.data_epoch``).  See ``docs/architecture.md`` ("Result
cache") for the invalidation discipline and the memory budget.
"""

from repro.cache.result_cache import (
    ResultCache,
    ResultCacheConfig,
    ResultCacheStats,
    ResultCacheTableStats,
    canonical_key,
)

__all__ = [
    "ResultCache",
    "ResultCacheConfig",
    "ResultCacheStats",
    "ResultCacheTableStats",
    "canonical_key",
]
