"""The epoch-validated LRU result cache.

``ResultCache`` maps ``(table, canonicalised conjunctive query)`` to the
final sorted int64 location array a planned execution produced, so a
repeated hot query skips planning, path execution, pointer resolution and
validation entirely.  Three disciplines keep it honest:

* **Epoch invalidation.**  Every entry is stamped with the owning table's
  ``data_epoch`` (``Catalog.bump_data_epoch``, bumped once per committed
  ``insert_many`` / ``update`` / ``delete``) observed under the shared
  epoch side at execution time.  A probe compares the stamp against the
  table's *current* ``data_epoch`` — unequal means some write committed in
  between, so the entry is evicted on the spot and the probe misses.  The
  write path pays nothing beyond the epoch bump it already performs; the
  cache never has to be told about individual mutations.  Because
  ``data_epoch`` only moves under the exclusive side, a probe running
  under the shared side can never race a bump: equal stamps prove the
  cached array is exactly what re-executing the query would return.
  Unlike the plan cache's bounded-drift expiry (``_MAX_EPOCH_DRIFT`` in
  ``engine/planner.py``), result staleness is *exact* — one committed
  write epoch is enough to flip the stored rows, so drift tolerance is
  zero.

* **Canonical keys.**  Keys are built from
  :meth:`~repro.engine.query.ConjunctiveQuery.merged` — the per-column
  intersection the planner itself normalises on — with the columns sorted,
  so semantically equal predicate sets (duplicated conjuncts, permuted
  columns, overlapping same-column ranges) hit the same entry.
  Unsatisfiable conjunctions (``merged() is None``) bypass the cache;
  they are already O(1) to "execute".

* **Bounded memory.**  Entries live in one LRU order bounded by *both* an
  entry count and a cached-array byte budget
  (:class:`ResultCacheConfig`); inserting past either bound evicts from
  the cold end.  A single result larger than the whole byte budget is not
  cached at all, and a doorkeeper admission filter (on by default) defers
  each key's first fill so one-hit-wonder traffic never enters the
  budget at all.

Thread safety: probes and fills happen on the engine's *read* path, where
many reader threads run concurrently under the shared epoch side, so every
touch of cache state is probe-local — guarded by the cache's own mutex,
never by the epoch protocol.  ``repro.analysis`` rule REP007 enforces this
shape statically: any method of a lock-owning cache class that mutates
cache state must hold ``self._lock`` (or run under the epoch write side).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.query import ConjunctiveQuery

#: A canonical cache key: ``(column, low, high)`` for the (dominant)
#: single-column case, ``((column, low, high), ...)`` sorted by column
#: otherwise.  The shapes cannot collide — a nested key's first element
#: is a tuple, a flat key's is a column name — and keys are opaque to
#: the cache, so the flat form just saves one tuple per probe on the
#: serving hot path.
CacheKey = tuple

#: Flat per-entry bookkeeping cost charged against the byte budget on top
#: of the cached array itself (key tuple, entry object, OrderedDict slot).
ENTRY_OVERHEAD_BYTES = 128


def canonical_key(query: "ConjunctiveQuery") -> CacheKey | None:
    """Canonicalise a conjunctive query for cache lookup.

    Reuses the planner's per-column merge (``ConjunctiveQuery.merged``):
    duplicate and overlapping same-column predicates collapse to one
    ``KeyRange`` per column, and sorting the columns makes the key
    insensitive to conjunct order.  Returns ``None`` for unsatisfiable
    conjunctions, which the cache does not serve.
    """
    predicates = query.predicates
    if len(predicates) == 1:
        # Hot serving path: a single predicate is its own merge, so skip
        # the dict ``merged()`` would build and the ``KeyRange`` its
        # ``key_range`` property allocates (this runs once per probe).
        predicate = predicates[0]
        return (predicate.column, predicate.low, predicate.high)
    merged = query.merged()
    if merged is None:
        return None
    if len(merged) == 1:
        # Same flat shape as the fast path above, so a duplicated
        # single-column conjunct hits the same entry.
        column, key_range = next(iter(merged.items()))
        return (column, key_range.low, key_range.high)
    return tuple(sorted(
        (column, key_range.low, key_range.high)
        for column, key_range in merged.items()
    ))


@dataclass(frozen=True)
class ResultCacheConfig:
    """Memory budget of a :class:`ResultCache`.

    Attributes:
        max_entries: Upper bound on cached results (LRU-evicted past it).
        max_bytes: Upper bound on the summed cached-array bytes (plus a
            flat :data:`ENTRY_OVERHEAD_BYTES` per entry); results larger
            than the whole budget are never cached.
        admission: When ``True`` (the default), a result is only
            installed on its *second* fill attempt (a TinyLFU-style
            doorkeeper of recently seen keys, rotated in two bounded
            generations).  One-hit-wonder traffic then never pays the
            copy or squats in the byte budget — the uniform-mix
            overhead guard in ``bench/serving.py`` leans on this —
            while a key requested twice behaves as if admission were
            off from its second miss onward.
    """

    max_entries: int = 4096
    max_bytes: int = 32 << 20
    admission: bool = True

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {self.max_entries}")
        if self.max_bytes < 1:
            raise ConfigurationError(
                f"max_bytes must be >= 1, got {self.max_bytes}")


@dataclass(frozen=True)
class ResultCacheTableStats:
    """Per-table slice of the cache counters."""

    hits: int = 0
    misses: int = 0
    stale_evictions: int = 0
    entries: int = 0
    bytes: int = 0


@dataclass(frozen=True)
class ResultCacheStats:
    """Snapshot of the result-cache counters (the observability surface).

    Attributes:
        enabled: Whether probes are currently being served (``False`` both
            for a disabled cache and for a database built without one).
        hits: Probes served from a fresh entry.
        misses: Probes that found nothing servable (cold key or a stale
            entry evicted by the probe itself).
        stale_evictions: Entries dropped because their stamped epoch no
            longer matched the table's ``data_epoch`` (probe or sweep).
        lru_evictions: Entries dropped to stay inside the memory budget.
        admission_deferrals: Fills skipped by the doorkeeper (first
            sighting of a key; a second fill attempt installs it).
        entries: Entries currently cached.
        bytes: Budgeted bytes currently cached (arrays + flat overhead).
        per_table: The same counters split by table.
    """

    enabled: bool = False
    hits: int = 0
    misses: int = 0
    stale_evictions: int = 0
    lru_evictions: int = 0
    admission_deferrals: int = 0
    entries: int = 0
    bytes: int = 0
    per_table: "dict[str, ResultCacheTableStats]" = field(
        default_factory=dict)

    @property
    def hit_ratio(self) -> float:
        """Hits over probes (0.0 when nothing was ever probed)."""
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    @classmethod
    def merge(cls, stats: "list[ResultCacheStats]") -> "ResultCacheStats":
        """Sum counters across caches (the sharded composition)."""
        totals: dict[str, list[int]] = {}
        for item in stats:
            for table_name, table_stats in item.per_table.items():
                entry = totals.setdefault(table_name, [0, 0, 0, 0, 0])
                entry[0] += table_stats.hits
                entry[1] += table_stats.misses
                entry[2] += table_stats.stale_evictions
                entry[3] += table_stats.entries
                entry[4] += table_stats.bytes
        return cls(
            enabled=any(item.enabled for item in stats),
            hits=sum(item.hits for item in stats),
            misses=sum(item.misses for item in stats),
            stale_evictions=sum(item.stale_evictions for item in stats),
            lru_evictions=sum(item.lru_evictions for item in stats),
            admission_deferrals=sum(item.admission_deferrals
                                    for item in stats),
            entries=sum(item.entries for item in stats),
            bytes=sum(item.bytes for item in stats),
            per_table={
                table_name: ResultCacheTableStats(
                    hits=hits, misses=misses, stale_evictions=stale,
                    entries=entries, bytes=nbytes)
                for table_name, (hits, misses, stale, entries, nbytes)
                in sorted(totals.items())
            },
        )


class CacheEntry:
    """One cached result: the frozen location array plus its provenance."""

    __slots__ = ("locations", "data_epoch", "used_index", "nbytes")

    def __init__(self, locations: np.ndarray, data_epoch: int,
                 used_index: str | None) -> None:
        self.locations = locations
        self.data_epoch = data_epoch
        self.used_index = used_index
        self.nbytes = int(locations.nbytes) + ENTRY_OVERHEAD_BYTES


class ResultCache:
    """The epoch-validated LRU result cache (see the module docstring).

    Args:
        config: Memory budget; defaults to :class:`ResultCacheConfig`.

    Attributes:
        enabled: Probe switch.  The engine skips the cache entirely while
            this is ``False`` (entries are kept), which is how benchmarks
            race cache-on vs cache-off against one warmed engine.
    """

    def __init__(self, config: ResultCacheConfig | None = None) -> None:
        self.config = config if config is not None else ResultCacheConfig()
        self.enabled = True
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple[str, CacheKey], CacheEntry]" = (
            OrderedDict())
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._stale_evictions = 0
        self._lru_evictions = 0
        self._admission_deferrals = 0
        # Doorkeeper generations: keys seen by one earlier fill attempt.
        self._seen: set = set()
        self._seen_old: set = set()
        # table -> [hits, misses, stale_evictions, entries, bytes]
        self._per_table: dict[str, list[int]] = {}

    # ------------------------------------------------------------ probes

    def get(self, table_name: str, key: CacheKey,
            data_epoch: int) -> CacheEntry | None:
        """Probe for a fresh entry; evict (and miss) when it went stale.

        ``data_epoch`` must be the table's current committed epoch read
        under the shared epoch side — the comparison against the entry's
        stamp is the whole invalidation protocol.
        """
        full_key = (table_name, key)
        with self._lock:
            counters = self._table_counters_locked(table_name)
            entry = self._entries.get(full_key)
            if entry is not None and entry.data_epoch != data_epoch:
                self._remove_locked(full_key, entry, stale=True)
                entry = None
            if entry is None:
                self._misses += 1
                counters[1] += 1
                return None
            self._entries.move_to_end(full_key)
            self._hits += 1
            counters[0] += 1
            return entry

    def get_many(self, table_name: str, keys: "list[CacheKey | None]",
                 data_epoch: int) -> "list[CacheEntry | None]":
        """Probe a whole table batch under one lock acquisition.

        Position-aligned with ``keys``; ``None`` keys (unsatisfiable
        conjunctions) pass through as ``None`` without touching any
        counter, exactly like the single-probe bypass.  One acquisition
        per batch is what keeps the probe overhead invisible next to the
        segmented batch executor it is short-circuiting.
        """
        results: "list[CacheEntry | None]" = [None] * len(keys)
        with self._lock:
            counters = self._table_counters_locked(table_name)
            entries = self._entries
            if not entries:
                # Bulk miss: nothing cached at all (the steady state of
                # one-hit-wonder traffic held out by the doorkeeper), so
                # settle the counters without walking key by key.
                misses = sum(key is not None for key in keys)
                self._misses += misses
                counters[1] += misses
                return results
            hits = misses = 0
            for position, key in enumerate(keys):
                if key is None:
                    continue
                full_key = (table_name, key)
                entry = entries.get(full_key)
                if entry is not None and entry.data_epoch != data_epoch:
                    self._remove_locked(full_key, entry, stale=True)
                    entry = None
                if entry is None:
                    misses += 1
                    continue
                entries.move_to_end(full_key)
                hits += 1
                results[position] = entry
            self._hits += hits
            self._misses += misses
            counters[0] += hits
            counters[1] += misses
        return results

    def peek(self, table_name: str, key: CacheKey,
             data_epoch: int) -> CacheEntry | None:
        """Non-destructive probe: no counters, no LRU touch, no eviction.

        The ``explain`` hook — it reports whether a query *would* be
        served from cache without perturbing what a later ``execute``
        observes.
        """
        with self._lock:
            entry = self._entries.get((table_name, key))
            if entry is None or entry.data_epoch != data_epoch:
                return None
            return entry

    def put(self, table_name: str, key: CacheKey, locations: np.ndarray,
            data_epoch: int, used_index: str | None) -> None:
        """Store a post-validation location array stamped with its epoch.

        The array is copied and frozen (``writeable = False``): the engine
        hands the original to the caller, and cache hits hand the frozen
        copy out directly — neither side can corrupt the other.

        Under admission (see :class:`ResultCacheConfig`) the first fill
        attempt for a key only registers it with the doorkeeper; the
        install happens on the second.
        """
        full_key = (table_name, key)
        with self._lock:
            if not self._admit_locked(full_key):
                return
        stored = np.array(locations, dtype=np.int64, copy=True)
        stored.flags.writeable = False
        entry = CacheEntry(stored, data_epoch, used_index)
        if entry.nbytes > self.config.max_bytes:
            return
        with self._lock:
            previous = self._entries.pop(full_key, None)
            if previous is not None:
                self._account_removal_locked(table_name, previous)
            self._entries[full_key] = entry
            self._bytes += entry.nbytes
            counters = self._table_counters_locked(table_name)
            counters[3] += 1
            counters[4] += entry.nbytes
            self._evict_over_budget_locked()

    def put_many(self, table_name: str,
                 items: "list[tuple[CacheKey, np.ndarray, str | None]]",
                 data_epoch: int) -> None:
        """Store a table batch of ``(key, locations, used_index)`` fills.

        The copies and freezes happen before the lock is taken; one
        acquisition then installs the whole batch and settles the budget
        once at the end (the batch-path twin of :meth:`put`).

        The batch's arrays are copied into *one* concatenated backing
        buffer, frozen once, and stored as read-only slice views — a
        per-array copy plus ``flags.writeable`` toggle costs ~2 us each,
        which is more than the rest of the miss-path overhead combined.
        The trade-off: the buffer stays reachable until every entry cut
        from it is evicted, so a lone survivor can pin its batch's bytes
        beyond what the budget accounts.  Batches are request coalescing
        sized (hundreds of entries, not millions), which bounds the
        overshoot to a few batch buffers.

        Under admission the doorkeeper filters the batch *before* any
        array is copied — a batch of first-sighting keys (the uniform
        request mix) costs two set operations per item and nothing else.
        """
        max_bytes = self.config.max_bytes
        max_entries = self.config.max_entries
        with self._lock:
            if not self.config.admission:
                admitted = items
            else:
                # Inlined :meth:`_admit_locked` — this loop runs once per
                # executed miss, so the per-call overhead matters.
                admitted = []
                deferred = 0
                seen = self._seen
                seen_old = self._seen_old
                for item in items:
                    full_key = (table_name, item[0])
                    if full_key in seen:
                        seen.discard(full_key)
                        admitted.append(item)
                    elif full_key in seen_old:
                        seen_old.discard(full_key)
                        admitted.append(item)
                    else:
                        seen.add(full_key)
                        deferred += 1
                        if len(seen) > max_entries:
                            self._seen_old = seen_old = seen
                            self._seen = seen = set()
                self._admission_deferrals += deferred
        arrays: "list[np.ndarray]" = []
        metas: "list[tuple[tuple, str | None]]" = []
        for key, locations, used_index in admitted:
            array = np.asarray(locations, dtype=np.int64)
            if int(array.nbytes) + ENTRY_OVERHEAD_BYTES <= max_bytes:
                arrays.append(array)
                metas.append(((table_name, key), used_index))
        if not arrays:
            return
        buffer = np.concatenate(arrays)
        buffer.flags.writeable = False
        prepared: "list[tuple[tuple, CacheEntry]]" = []
        start = 0
        for (full_key, used_index), array in zip(metas, arrays):
            end = start + array.size
            prepared.append((full_key, CacheEntry(buffer[start:end],
                                                  data_epoch, used_index)))
            start = end
        with self._lock:
            entries = self._entries
            counters = self._table_counters_locked(table_name)
            for full_key, entry in prepared:
                previous = entries.pop(full_key, None)
                if previous is not None:
                    self._account_removal_locked(table_name, previous)
                entries[full_key] = entry
                self._bytes += entry.nbytes
                counters[3] += 1
                counters[4] += entry.nbytes
            self._evict_over_budget_locked()

    # ----------------------------------------------------- maintenance

    def sweep(self, current_epochs: "dict[str, int]") -> int:
        """Drop every stale entry in one pass; returns how many died.

        The checkpoint hook: a snapshot already walks all engine state
        under the shared side, so piggybacking a full-cache staleness scan
        there keeps long-idle stale entries from squatting in the byte
        budget until a probe happens to land on them.  Tables missing
        from ``current_epochs`` (dropped tables) are swept too.
        """
        with self._lock:
            stale = [
                (full_key, entry) for full_key, entry in self._entries.items()
                if entry.data_epoch != current_epochs.get(full_key[0])
            ]
            for full_key, entry in stale:
                del self._entries[full_key]
                self._account_removal_locked(full_key[0], entry)
                self._stale_evictions += 1
                self._table_counters_locked(full_key[0])[2] += 1
            return len(stale)

    def clear(self) -> None:
        """Drop every entry and the doorkeeper's memory of seen keys.

        Counters survive, like ``Planner.cache_clear``.
        """
        with self._lock:
            self._entries.clear()
            self._seen.clear()
            self._seen_old.clear()
            self._bytes = 0
            for counters in self._per_table.values():
                counters[3] = 0
                counters[4] = 0

    def info(self) -> ResultCacheStats:
        """Consistent snapshot of all counters."""
        with self._lock:
            return ResultCacheStats(
                enabled=self.enabled,
                hits=self._hits, misses=self._misses,
                stale_evictions=self._stale_evictions,
                lru_evictions=self._lru_evictions,
                admission_deferrals=self._admission_deferrals,
                entries=len(self._entries), bytes=self._bytes,
                per_table={
                    table_name: ResultCacheTableStats(
                        hits=counters[0], misses=counters[1],
                        stale_evictions=counters[2], entries=counters[3],
                        bytes=counters[4])
                    for table_name, counters in sorted(self._per_table.items())
                },
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------- locked helpers
    # (the ``_locked`` suffix is REP007's contract: only called while
    # holding self._lock)

    def _admit_locked(self, full_key: tuple) -> bool:
        """Doorkeeper check: install now, or register for next time?

        First sighting registers the key in the young generation and
        defers; a sighting found in either generation admits.  When the
        young generation outgrows ``max_entries`` it becomes the old one
        (and the previous old generation is forgotten), which bounds the
        doorkeeper to two generations of popularity memory.
        """
        if not self.config.admission:
            return True
        if full_key in self._seen:
            self._seen.discard(full_key)
            return True
        if full_key in self._seen_old:
            self._seen_old.discard(full_key)
            return True
        self._seen.add(full_key)
        if len(self._seen) > self.config.max_entries:
            self._seen_old = self._seen
            self._seen = set()
        self._admission_deferrals += 1
        return False

    def _table_counters_locked(self, table_name: str) -> list:
        counters = self._per_table.get(table_name)
        if counters is None:
            counters = self._per_table[table_name] = [0, 0, 0, 0, 0]
        return counters

    def _account_removal_locked(self, table_name: str,
                                entry: CacheEntry) -> None:
        self._bytes -= entry.nbytes
        counters = self._table_counters_locked(table_name)
        counters[3] -= 1
        counters[4] -= entry.nbytes

    def _remove_locked(self, full_key: tuple, entry: CacheEntry,
                       stale: bool) -> None:
        del self._entries[full_key]
        self._account_removal_locked(full_key[0], entry)
        if stale:
            self._stale_evictions += 1
            self._table_counters_locked(full_key[0])[2] += 1
        else:
            self._lru_evictions += 1

    def _evict_over_budget_locked(self) -> None:
        while self._entries and (
                len(self._entries) > self.config.max_entries
                or self._bytes > self.config.max_bytes):
            full_key, entry = next(iter(self._entries.items()))
            self._remove_locked(full_key, entry, stale=False)
