"""Ordinary-least-squares linear regression as a standalone model.

This is the model class TRS-Tree leaves embed (through
:mod:`repro.core.regression`); it is exposed separately so the Table 1
training-time comparison can train it on the same datasets as the kernel
models through one common interface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.regression import fit_linear


@dataclass
class TrainingResult:
    """Outcome of one model-training run (used by the Table 1 bench)."""

    model_name: str
    num_tuples: int
    seconds: float
    mean_absolute_error: float


class LinearRegressionModel:
    """Univariate OLS regression ``y = beta * x + alpha``."""

    name = "linear-regression"

    def __init__(self) -> None:
        self.beta = 0.0
        self.alpha = 0.0
        self._fitted = False

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearRegressionModel":
        """Fit the model with the closed-form OLS solution (one data pass)."""
        self.beta, self.alpha = fit_linear(
            np.asarray(x, dtype=np.float64), np.asarray(y, dtype=np.float64)
        )
        self._fitted = True
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict host values for target values ``x``."""
        if not self._fitted:
            raise RuntimeError("model must be fitted before predicting")
        return self.beta * np.asarray(x, dtype=np.float64) + self.alpha

    def timed_fit(self, x: np.ndarray, y: np.ndarray) -> TrainingResult:
        """Fit the model and report wall-clock training time and accuracy."""
        started = time.perf_counter()
        self.fit(x, y)
        elapsed = time.perf_counter() - started
        error = float(np.mean(np.abs(self.predict(x) - y))) if len(x) else 0.0
        return TrainingResult(self.name, len(x), elapsed, error)
