"""Kernel regression models standing in for SVR (Table 1).

The paper's Table 1 contrasts the milliseconds-scale training of linear
regression with SVR models (RBF, linear and polynomial kernels) that take
seconds to minutes as the training set grows.  libsvm is not available in this
offline environment, so we substitute *kernel ridge regression* with the same
three kernels: like SVR it builds and solves a dense ``n x n`` kernel system,
so its training cost is Θ(n²) memory and Θ(n³) time — which is exactly the
scaling behaviour Table 1 demonstrates.  The substitution is recorded in
DESIGN.md.
"""

from __future__ import annotations

import time

import numpy as np

from repro.mlmodels.linear import TrainingResult


def rbf_kernel(x: np.ndarray, y: np.ndarray, gamma: float = 1.0) -> np.ndarray:
    """Gaussian (RBF) kernel matrix between two 1-D sample vectors."""
    differences = x[:, None] - y[None, :]
    return np.exp(-gamma * differences ** 2)


def linear_kernel(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Linear kernel matrix between two 1-D sample vectors."""
    return x[:, None] * y[None, :]


def polynomial_kernel(x: np.ndarray, y: np.ndarray, degree: int = 3,
                      coef0: float = 1.0) -> np.ndarray:
    """Polynomial kernel matrix between two 1-D sample vectors."""
    return (x[:, None] * y[None, :] + coef0) ** degree


_KERNELS = {
    "rbf": rbf_kernel,
    "linear": linear_kernel,
    "polynomial": polynomial_kernel,
}


class KernelRegressionModel:
    """Kernel ridge regression with an SVR-style kernel.

    Args:
        kernel: One of ``"rbf"``, ``"linear"``, ``"polynomial"``.
        regularization: Ridge term added to the kernel matrix diagonal.
        gamma: RBF kernel width (ignored by the other kernels).
        degree: Polynomial kernel degree (ignored by the other kernels).
    """

    def __init__(self, kernel: str = "rbf", regularization: float = 1.0,
                 gamma: float = 1.0, degree: int = 3) -> None:
        if kernel not in _KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}")
        self.kernel = kernel
        self.regularization = regularization
        self.gamma = gamma
        self.degree = degree
        self.name = f"kernel-regression-{kernel}"
        self._x_train: np.ndarray | None = None
        self._dual_coefficients: np.ndarray | None = None

    def _kernel_matrix(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        if self.kernel == "rbf":
            return rbf_kernel(x, y, self.gamma)
        if self.kernel == "polynomial":
            return polynomial_kernel(x, y, self.degree)
        return linear_kernel(x, y)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KernelRegressionModel":
        """Solve the dense kernel system ``(K + lambda I) a = y``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        gram = self._kernel_matrix(x, x)
        gram[np.diag_indices_from(gram)] += self.regularization
        self._dual_coefficients = np.linalg.solve(gram, y)
        self._x_train = x
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict host values for target values ``x``."""
        if self._x_train is None or self._dual_coefficients is None:
            raise RuntimeError("model must be fitted before predicting")
        x = np.asarray(x, dtype=np.float64)
        return self._kernel_matrix(x, self._x_train) @ self._dual_coefficients

    def timed_fit(self, x: np.ndarray, y: np.ndarray) -> TrainingResult:
        """Fit the model and report wall-clock training time and accuracy."""
        started = time.perf_counter()
        self.fit(x, y)
        elapsed = time.perf_counter() - started
        error = float(np.mean(np.abs(self.predict(x) - y))) if len(x) else 0.0
        return TrainingResult(self.name, len(x), elapsed, error)
