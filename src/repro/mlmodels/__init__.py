"""Regression models used inside TRS-Tree leaves and by the Table 1 comparison."""

from repro.mlmodels.kernel import (
    KernelRegressionModel,
    linear_kernel,
    polynomial_kernel,
    rbf_kernel,
)
from repro.mlmodels.linear import LinearRegressionModel, TrainingResult

__all__ = [
    "KernelRegressionModel",
    "LinearRegressionModel",
    "TrainingResult",
    "linear_kernel",
    "polynomial_kernel",
    "rbf_kernel",
]
