"""Segmented array primitives for batched query execution.

A *segmented array* represents B per-query arrays in two flat ndarrays:
``values`` holds every element back to back, and ``offsets`` (length
``B + 1``, int64) marks the boundaries — query ``i`` owns
``values[offsets[i]:offsets[i + 1]]``.  The batched executor keeps every
per-query intermediate (candidate tids, resolved locations, validated
matches) in this layout so that a batch of B queries costs a constant
number of numpy passes instead of B Python-level pipelines: dedup,
intersection, filtering and sorting are all expressed as one ``lexsort`` /
``bincount`` / boolean-mask pass over the concatenation.

Every function tolerates empty segments and an empty batch; ``offsets`` is
always a valid cumulative-size array even when ``values`` is empty.

The module sits at the bottom of the layer stack (alongside ``errors``) so
the index structures, the mechanisms and the engine can all share it.
"""

# repro: hot-module
# (repro.analysis REP004: no per-element Python loops over arrays here)

from __future__ import annotations

from typing import Sequence

import numpy as np

_EMPTY_INT64 = np.empty(0, dtype=np.int64)


def empty_offsets(num_segments: int) -> np.ndarray:
    """Offsets of ``num_segments`` empty segments."""
    return np.zeros(num_segments + 1, dtype=np.int64)


def concat_segments(arrays: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate per-query arrays into one segmented array.

    Returns:
        ``(values, offsets)`` with ``offsets[i]`` the start of ``arrays[i]``.
    """
    offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
    if arrays:
        np.cumsum([array.size for array in arrays], out=offsets[1:])
    filled = [array for array in arrays if array.size]
    if not filled:
        return _EMPTY_INT64, offsets
    if len(filled) == 1:
        return filled[0], offsets
    return np.concatenate(filled), offsets


def segment_ids(offsets: np.ndarray) -> np.ndarray:
    """Segment index of every element: ``[0,0,...,1,1,...]``."""
    counts = np.diff(offsets)
    return np.repeat(np.arange(counts.size, dtype=np.int64), counts)


def split_segments(values: np.ndarray, offsets: np.ndarray) -> list[np.ndarray]:
    """Materialise the per-query arrays (views into ``values``)."""
    return [values[offsets[i]:offsets[i + 1]]
            for i in range(offsets.size - 1)]


def offsets_from_counts(counts: np.ndarray) -> np.ndarray:
    """Build an offsets array from per-segment element counts."""
    offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def run_indices(starts: np.ndarray,
                stops: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Gather indices covering every ``[starts[i], stops[i])`` run.

    The vectorized "multi-arange": one pass builds the index array that
    fancy-indexes all runs out of a flat array, plus the offsets that keep
    the per-run boundaries.  This is how a whole batch of sorted-array
    range probes turns into a single gather.
    """
    sizes = np.maximum(stops - starts, 0).astype(np.int64)
    offsets = offsets_from_counts(sizes)
    total = int(offsets[-1])
    if total == 0:
        return _EMPTY_INT64, offsets
    indices = np.arange(total, dtype=np.int64)
    indices += np.repeat(np.asarray(starts, dtype=np.int64) - offsets[:-1],
                         sizes)
    return indices, offsets


def interleave_segments(a_values: np.ndarray, a_offsets: np.ndarray,
                        b_values: np.ndarray, b_offsets: np.ndarray,
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment concatenation of two aligned segmented arrays.

    Output segment ``i`` is ``a``'s segment ``i`` followed by ``b``'s —
    the vectorized form of the splice loop that interleaves host-probe runs
    with per-query outlier tids: two scatter passes instead of ``2B``
    Python-level list appends.
    """
    a_sizes = np.diff(a_offsets)
    b_sizes = np.diff(b_offsets)
    offsets = offsets_from_counts(a_sizes + b_sizes)
    if a_values.size == 0 and b_values.size == 0:
        return _EMPTY_INT64, offsets
    out = np.empty(a_values.size + b_values.size,
                   dtype=np.result_type(a_values, b_values))
    if a_values.size:
        positions = np.arange(a_values.size, dtype=np.int64)
        positions += np.repeat(offsets[:-1] - a_offsets[:-1], a_sizes)
        out[positions] = a_values
    if b_values.size:
        positions = np.arange(b_values.size, dtype=np.int64)
        positions += np.repeat(offsets[:-1] + a_sizes - b_offsets[:-1],
                               b_sizes)
        out[positions] = b_values
    return out, offsets


def running_segment_max(values: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Inclusive per-segment running maximum (``ids`` must be nondecreasing).

    A Hillis–Steele doubling scan: ``log2(n)`` masked ``np.maximum`` passes
    instead of one Python loop over the elements.  Element ``i`` of the
    result is ``max(values[j] for j <= i with ids[j] == ids[i]]``.
    """
    run = np.asarray(values, dtype=np.float64).copy()
    distance = 1
    while distance < run.size:
        same = ids[distance:] == ids[:-distance]
        candidate = np.where(same, run[:-distance], -np.inf)
        np.maximum(run[distance:], candidate, out=run[distance:])
        distance *= 2
    return run


def _composite_keys(values: np.ndarray, ids: np.ndarray,
                    num_segments: int) -> tuple[np.ndarray | None, int, int]:
    """Fold ``(segment, value)`` pairs into one sortable int64 key.

    Integer tid arrays (physical pointers, resolved locations) almost
    always have a value span small enough that ``segment * span + value``
    fits in an int64; sorting that composite with one single-key quicksort
    is several times faster than the two stable passes of ``np.lexsort``,
    and the key decomposes back into ``(segment, value)`` with a divmod.
    Returns ``(None, 0, 0)`` when the fold would overflow or the values are
    floats (logical primary keys) — callers fall back to lexsort.
    """
    if values.dtype.kind not in "iu" or values.size == 0:
        return None, 0, 0
    minimum = int(values.min())
    span = int(values.max()) - minimum + 1
    if span > (2 ** 62) // max(num_segments, 1):
        return None, 0, 0
    composite = ids * span
    composite += values.astype(np.int64, copy=False)
    composite -= minimum
    return composite, span, minimum


def segmented_sort(values: np.ndarray,
                   offsets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort every segment ascending in one pass."""
    if values.size == 0:
        return values, offsets
    ids = segment_ids(offsets)
    composite, span, minimum = _composite_keys(values, ids, offsets.size - 1)
    if composite is None:
        order = np.lexsort((values, ids))
        return values[order], offsets
    composite.sort()
    composite %= span
    composite += minimum
    return composite.astype(values.dtype, copy=False), offsets


def segmented_unique(values: np.ndarray,
                     offsets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment ``np.unique`` in one sort + one mask pass.

    Every output segment is sorted ascending with duplicates removed,
    exactly like ``np.unique`` applied per query.
    """
    if values.size == 0:
        return values, offsets
    num_segments = offsets.size - 1
    ids = segment_ids(offsets)
    composite, span, minimum = _composite_keys(values, ids, num_segments)
    if composite is not None:
        composite = np.unique(composite)
        kept_ids, kept_values = np.divmod(composite, span)
        kept_values += minimum
        counts = np.bincount(kept_ids, minlength=num_segments)
        return (kept_values.astype(values.dtype, copy=False),
                offsets_from_counts(counts))
    order = np.lexsort((values, ids))
    ids = ids[order]
    values = values[order]
    keep = np.ones(values.size, dtype=bool)
    keep[1:] = (ids[1:] != ids[:-1]) | (values[1:] != values[:-1])
    counts = np.bincount(ids[keep], minlength=num_segments)
    return values[keep], offsets_from_counts(counts)


def segmented_intersect(a_values: np.ndarray, a_offsets: np.ndarray,
                        b_values: np.ndarray, b_offsets: np.ndarray,
                        assume_unique: bool = False,
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment ``np.intersect1d`` in one sort pass.

    With ``assume_unique`` both inputs must already be deduplicated within
    every segment (the access paths' contract); otherwise both sides are
    first passed through :func:`segmented_unique`.  An element then lands
    in the intersection exactly when it appears twice — once per side — so
    one sort of the tagged concatenation finds every match.
    """
    num_segments = a_offsets.size - 1
    if a_values.size == 0 or b_values.size == 0:
        return (np.empty(0, dtype=a_values.dtype),
                empty_offsets(num_segments))
    if not assume_unique:
        a_values, a_offsets = segmented_unique(a_values, a_offsets)
        b_values, b_offsets = segmented_unique(b_values, b_offsets)
    ids = np.concatenate([segment_ids(a_offsets), segment_ids(b_offsets)])
    values = np.concatenate([a_values, b_values])
    composite, span, minimum = _composite_keys(values, ids, num_segments)
    if composite is not None:
        composite.sort()
        matched = composite[1:][composite[1:] == composite[:-1]]
        matched_ids, matched_values = np.divmod(matched, span)
        matched_values += minimum
        counts = np.bincount(matched_ids, minlength=num_segments)
        return (matched_values.astype(values.dtype, copy=False),
                offsets_from_counts(counts))
    order = np.lexsort((values, ids))
    ids = ids[order]
    values = values[order]
    matched = (ids[1:] == ids[:-1]) & (values[1:] == values[:-1])
    out = values[1:][matched]
    counts = np.bincount(ids[1:][matched], minlength=num_segments)
    return out, offsets_from_counts(counts)


def segmented_filter(values: np.ndarray, offsets: np.ndarray,
                     mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Keep the masked elements, recomputing the segment boundaries."""
    if values.size == 0:
        return values, offsets
    counts = np.bincount(segment_ids(offsets)[mask],
                         minlength=offsets.size - 1)
    return values[mask], offsets_from_counts(counts)
