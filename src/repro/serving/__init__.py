"""Concurrent serving front end with adaptive request coalescing.

See :mod:`repro.serving.server` for the design discussion.  The public
surface is :class:`Server`, configured by :class:`ServerConfig`, observable
through :class:`ServerStats`; requests and results are the engine's own
:class:`~repro.engine.query.QueryRequest` /
:class:`~repro.engine.query.QueryResult` transport objects.
"""

from repro.serving.server import (
    RequestFuture,
    Server,
    ServerConfig,
    ServerStats,
)

__all__ = ["RequestFuture", "Server", "ServerConfig", "ServerStats"]
