"""The serving front end: group commit for reads.

The engine's batch API (``Database.execute_many``) answers B same-shape
queries for roughly the price of one planner visit and O(1) array passes
per plan group — but only when somebody hands it a batch.  Independent
clients each holding one request cannot exploit it: they would each call
``Database.execute`` and pay full per-call dispatch.  :class:`Server`
closes that gap the way group commit closes it for writes — by *waiting a
very small amount of time on purpose*:

* Every submitted request lands in a shared pending queue — a plain
  ``deque`` whose ``append`` is atomic under the GIL, so *submitting is a
  couple of attribute operations*, not a cross-thread event-loop call.
  Only the first arrival of a window wakes the event loop, which arms a
  flush timer (the *coalescing window*); everything arriving before it
  fires joins the same batch.  Keeping the per-request cost this low
  matters: at the offered rates the open-loop benchmark drives, one
  ``call_soon_threadsafe`` (a lock plus a self-pipe write) per request
  would cost more than the batched execution it enables.
* A flush hands the whole batch to a worker thread, which answers it with
  one ``Database.execute_many`` call — one read-side epoch acquisition,
  one planner visit per plan shape, segmented vectorized execution — and
  fans the per-request results back to their futures.
* The window *adapts*: a flush that caught a healthy batch grows the
  window (more load → more coalescing, bounded by ``max_window``); a
  flush that caught a single request shrinks it (idle → latency floor,
  bounded by ``min_window``).  A full batch (``max_batch``) flushes
  immediately without waiting for the timer.

The event loop is plain ``asyncio`` running on a daemon thread, so sync
clients — benchmark threads, tests, anything — talk to it through
thread-safe handoffs (:meth:`Server.submit` returns a
``concurrent.futures.Future``); coroutine clients can await
:meth:`Server.submit_async` instead.  Batches execute on a separate
worker pool (default one worker: batches serialize, which under the GIL
costs nothing and gives natural backpressure — the queue keeps filling
while a batch runs, so the *next* batch is bigger).

Mutations do not go through the server: writers call the ``Database``
DML surface directly, and the engine's epoch protocol
(:mod:`repro.engine.epochs`) serialises them against in-flight coalesced
reads — every result a batch fans out carries the single committed epoch
the whole batch observed.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from dataclasses import field as dataclasses_field
from typing import Callable

from repro.cache.result_cache import ResultCacheStats
from repro.engine.database import Database
from repro.engine.planner import PlannerCacheStats
from repro.engine.query import QueryRequest, QueryResult
from repro.errors import ConfigurationError, ServingError


class RequestFuture:
    """Handle to one in-flight request; resolves to a ``QueryResult``.

    A deliberately slim stand-in for ``concurrent.futures.Future``: the
    stdlib class allocates a full ``Condition`` (lock + waiter queue) per
    instance and takes it on every transition, which at serving rates is a
    measurable slice of the whole pipeline (~20 us per request round-trip,
    against ~10 us of amortised engine work).  This one allocates a single
    lock and creates its wait event lazily, so the common case — the batch
    resolves before anyone blocks — never touches a condition variable.

    The supported surface is the one clients need: :meth:`result`,
    :meth:`exception`, :meth:`done` and :meth:`add_done_callback`
    (callbacks run on the resolving thread, immediately when already
    resolved).  Cancellation is intentionally absent — a coalesced request
    cannot be un-batched.
    """

    __slots__ = ("_lock", "_done", "_result", "_error", "_event",
                 "_callbacks")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._done = False
        self._result: QueryResult | None = None
        self._error: BaseException | None = None
        self._event: threading.Event | None = None
        self._callbacks: list[Callable[["RequestFuture"], None]] = []

    def done(self) -> bool:
        """Whether the request has resolved (result or error)."""
        return self._done

    def result(self, timeout: float | None = None) -> QueryResult:
        """Block until resolved; return the result or raise the error."""
        self._wait(timeout)
        if self._error is not None:
            raise self._error
        return self._result  # type: ignore[return-value]

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until resolved; return the error, or None on success."""
        self._wait(timeout)
        return self._error

    def add_done_callback(
            self, callback: Callable[["RequestFuture"], None]) -> None:
        """Run ``callback(self)`` on resolution (now, if already resolved)."""
        with self._lock:
            if not self._done:
                self._callbacks.append(callback)
                return
        callback(self)

    def _wait(self, timeout: float | None) -> None:
        if self._done:
            return
        with self._lock:
            if not self._done and self._event is None:
                self._event = threading.Event()
            event = self._event
        if event is not None and not event.wait(timeout):
            raise FutureTimeoutError()

    def _resolve(self, result: QueryResult | None,
                 error: BaseException | None) -> None:
        """Publish the outcome (called once, by the server)."""
        with self._lock:
            self._result = result
            self._error = error
            self._done = True
            event = self._event
            callbacks = self._callbacks
            self._callbacks = []
        if event is not None:
            event.set()
        for callback in callbacks:
            try:
                callback(self)
            except Exception:  # noqa: BLE001 - mirror stdlib: never let a
                pass           # client callback kill the resolving thread


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of the coalescing policy.

    Attributes:
        initial_window: Coalescing window the server starts with (seconds).
        min_window: Floor the window shrinks to when flushes catch single
            requests — this is the idle-latency cost of coalescing, so it
            stays tiny.
        max_window: Cap the window grows to under sustained load.
        grow_factor: Multiplier applied when a flush catches at least
            ``target_batch`` requests.
        shrink_factor: Multiplier applied when a flush catches one request.
        target_batch: Batch size that counts as "healthy load" for window
            growth.
        max_batch: A pending queue reaching this size flushes immediately,
            without waiting for the timer.
        workers: Threads executing batches (1 serialises batches, which is
            the right default under the GIL).
    """

    initial_window: float = 0.0005
    min_window: float = 0.0001
    max_window: float = 0.005
    grow_factor: float = 2.0
    shrink_factor: float = 0.5
    target_batch: int = 16
    max_batch: int = 1024
    workers: int = 1

    def __post_init__(self) -> None:
        if not (0.0 < self.min_window <= self.initial_window
                <= self.max_window):
            raise ConfigurationError(
                "need 0 < min_window <= initial_window <= max_window"
            )
        if self.grow_factor < 1.0 or not (0.0 < self.shrink_factor <= 1.0):
            raise ConfigurationError(
                "need grow_factor >= 1 and 0 < shrink_factor <= 1"
            )
        if self.target_batch < 2 or self.max_batch < self.target_batch:
            raise ConfigurationError(
                "need target_batch >= 2 and max_batch >= target_batch"
            )
        if self.workers < 1:
            raise ConfigurationError("need at least one worker")


@dataclass(frozen=True)
class ServerStats:
    """Snapshot of the server's cumulative counters.

    Attributes:
        requests: Requests accepted.
        batches: Coalesced batches executed (so ``requests / batches`` is
            the mean coalescing factor).
        max_batch: Largest batch executed.
        full_flushes: Batches dispatched at exactly ``ServerConfig.max_batch``
            — i.e. flushes the queue filled rather than the timer cut.
        window: Current adaptive window (seconds).
        plan_cache: The engine's cumulative plan-cache counters — together
            with ``requests / batches`` this shows the two halves of
            coalescing (fewer planner visits, bigger execution batches).
        plan_cache_per_table: The same counters split per table.
        result_cache: The engine's result-cache counters (hits, misses,
            stale/LRU evictions, bytes, per-table breakdown); reported
            with ``enabled=False`` when the served database runs without a
            result cache.
    """

    requests: int = 0
    batches: int = 0
    max_batch: int = 0
    full_flushes: int = 0
    window: float = 0.0
    plan_cache: PlannerCacheStats = PlannerCacheStats()
    plan_cache_per_table: "dict[str, PlannerCacheStats]" = dataclasses_field(
        default_factory=dict)
    result_cache: ResultCacheStats = dataclasses_field(
        default_factory=ResultCacheStats)

    @property
    def mean_batch(self) -> float:
        """Mean coalescing factor (1.0 when nothing ever coalesced)."""
        return self.requests / self.batches if self.batches else 0.0


class Server:
    """Coalescing read server over one :class:`Database`.

    Usage::

        with Server(db) as server:
            future = server.submit(QueryRequest.point("t", "a", 42.0))
            result = future.result()          # a QueryResult

    Args:
        database: The engine to serve.  The server only reads; writers keep
            using the database's DML surface directly.
        config: Coalescing policy knobs.
    """

    def __init__(self, database: Database,
                 config: ServerConfig | None = None) -> None:
        config = config if config is not None else ServerConfig()
        self.database = database
        self.config = config
        self._window = config.initial_window
        self._pending: deque[tuple[QueryRequest, RequestFuture]] = deque()
        self._flush_handle: asyncio.TimerHandle | None = None
        # True while a wakeup/timer covers the queue: submits only poke the
        # loop on the empty->nonempty transition (see the module docstring).
        self._armed = False
        self._closed = False
        self._requests = 0
        self._batches = 0
        self._max_batch = 0
        self._full_flushes = 0
        self._executor = ThreadPoolExecutor(
            max_workers=config.workers,
            thread_name_prefix="repro-serving-worker",
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serving-loop",
            daemon=True,
        )
        self._thread.start()

    # ------------------------------------------------------------- client API

    def submit(self, request: QueryRequest) -> RequestFuture:
        """Enqueue a request; returns a future resolving to its result.

        Thread-safe; callable from any thread, and deliberately cheap: one
        future allocation, one atomic queue append, and — only when no
        wakeup already covers the queue — one event-loop poke.  The future
        fails with :class:`~repro.errors.ServingError` when the server is
        (or gets) closed before the request executes, and with whatever
        the engine raised when its batch fails.
        """
        if self._closed:
            raise ServingError("server is closed")
        future = RequestFuture()
        # Order matters for the close()/flush races: append *then* test the
        # armed flag, while _flush drains, clears the flag, then re-tests
        # the queue — every interleaving leaves the request either drained
        # or covered by a wakeup.
        self._pending.append((request, future))
        if not self._armed:
            self._armed = True
            self._loop.call_soon_threadsafe(self._wakeup)
        elif len(self._pending) % self.config.max_batch == 0:
            # Full queue: flush without waiting for the timer.  The modulo
            # (rather than >=) keeps this to ~one poke per max_batch
            # requests even while a batch is already executing; duplicate
            # or skipped pokes are harmless — _flush on an empty queue is
            # a no-op and the armed timer still covers the queue.
            self._loop.call_soon_threadsafe(self._flush)
        return future

    async def submit_async(self, request: QueryRequest) -> QueryResult:
        """Coroutine flavour of :meth:`submit` (await on any event loop)."""
        loop = asyncio.get_running_loop()
        aio_future: asyncio.Future = loop.create_future()

        def transfer(done: RequestFuture) -> None:
            error = done.exception()

            def publish() -> None:
                if aio_future.cancelled():
                    return
                if error is not None:
                    aio_future.set_exception(error)
                else:
                    aio_future.set_result(done.result())

            loop.call_soon_threadsafe(publish)

        self.submit(request).add_done_callback(transfer)
        return await aio_future

    def query(self, request: QueryRequest,
              timeout: float | None = None) -> QueryResult:
        """Blocking convenience: :meth:`submit` and wait for the result."""
        return self.submit(request).result(timeout=timeout)

    def stats(self) -> ServerStats:
        """Snapshot of the cumulative serving counters."""
        return ServerStats(
            requests=self._requests, batches=self._batches,
            max_batch=self._max_batch, full_flushes=self._full_flushes,
            window=self._window,
            plan_cache=self.database.planner_cache_stats(),
            plan_cache_per_table=self.database.planner_cache_info(),
            result_cache=self.database.result_cache_info(),
        )

    def close(self) -> None:
        """Flush pending requests, stop the loop, join all threads.

        Idempotent.  Requests submitted after (or racing) close fail with
        :class:`~repro.errors.ServingError`; requests already queued are
        executed before the server stops.
        """
        if self._closed:
            return
        self._closed = True

        def _shutdown() -> None:
            self._flush()
            self._loop.stop()

        self._loop.call_soon_threadsafe(_shutdown)
        self._thread.join()
        self._executor.shutdown(wait=True)
        # Requests that raced close() past the final flush: their submit()
        # already returned a future, so fail it rather than leave it
        # hanging forever.
        while True:
            try:
                _, future = self._pending.popleft()
            except IndexError:
                break
            future._resolve(
                None, ServingError("server closed before the request executed")
            )
        self._loop.close()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- loop side

    def _wakeup(self) -> None:
        """First-arrival poke: arm the flush timer (runs on the loop thread)."""
        if self._flush_handle is None and self._pending:
            self._flush_handle = self._loop.call_later(self._window,
                                                       self._flush)

    def _flush(self) -> None:
        """Drain the queue into batches and adapt the window (loop thread)."""
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        batch: list[tuple[QueryRequest, RequestFuture]] = []
        max_batch = self.config.max_batch
        drained = 0
        while True:
            try:
                batch.append(self._pending.popleft())
            except IndexError:
                break
            if len(batch) == max_batch:
                drained += max_batch
                self._full_flushes += 1
                self._dispatch(batch)
                batch = []
        if batch:
            drained += len(batch)
            self._dispatch(batch)
        # Clear the armed flag *after* draining, then re-check the queue:
        # a submit that raced the drain either saw the flag still set (we
        # catch its request here) or sees it cleared and pokes the loop
        # itself.  Either way no request is left uncovered.
        self._armed = False
        if self._pending and not self._armed:
            self._armed = True
            self._wakeup()
        if drained:
            self._requests += drained
            self._adapt_window(drained)

    def _dispatch(self,
                  batch: list[tuple[QueryRequest, RequestFuture]]) -> None:
        """Hand one batch to the worker pool (loop thread)."""
        self._batches += 1
        self._max_batch = max(self._max_batch, len(batch))
        self._executor.submit(self._run_batch, batch)

    def _adapt_window(self, batch_size: int) -> None:
        """Grow the window under load, shrink it when flushes come up empty.

        The policy is deliberately multiplicative in both directions: a
        burst doubles the window within a few flushes (more coalescing when
        it pays), and a single idle flush halves it (latency recovers just
        as fast when load drops).
        """
        config = self.config
        if batch_size >= config.target_batch:
            self._window = min(self._window * config.grow_factor,
                               config.max_window)
        elif batch_size <= 1:
            self._window = max(self._window * config.shrink_factor,
                               config.min_window)

    # ----------------------------------------------------------- worker side

    def _run_batch(
            self,
            batch: list[tuple[QueryRequest, RequestFuture]]) -> None:
        """Execute one coalesced batch and fan results out (worker thread)."""
        try:
            results = self.database.execute_many(
                [request for request, _ in batch]
            )
        except BaseException as error:  # noqa: BLE001 - fan the failure out
            for _, future in batch:
                future._resolve(None, error)
            return
        for (_, future), result in zip(batch, results):
            future._resolve(result, None)
