"""The Sensor application (Appendix A).

A single table monitoring chemical gas concentration with 16 sensors: a
timestamp column (primary key), 16 sensor-reading columns and the per-row
average reading.  Only the average column carries a pre-existing index; the
application queries the individual sensor columns, and each of them has a
*non-linear* (but monotonic) correlation with the average — the property that
makes this workload harder for Hermit than Stock.

The paper uses a real gas-sensor dataset (4,208,260 rows); offline we generate
readings where each sensor responds to the underlying concentration through
its own saturating response curve plus measurement noise, preserving the
non-linear sensor↔average correlation structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.storage.schema import numeric_schema

TABLE_NAME = "sensor_readings"
NUM_SENSORS = 16


def sensor_column(sensor: int) -> str:
    """Name of the reading column of sensor ``sensor``."""
    return f"sensor_{sensor}"


@dataclass
class SensorDataset:
    """Generated column data for the Sensor application."""

    columns: dict[str, np.ndarray]
    num_sensors: int

    @property
    def num_tuples(self) -> int:
        """Number of rows."""
        return len(self.columns["ts"])


def generate_sensor(num_tuples: int = 100_000, num_sensors: int = NUM_SENSORS,
                    noise_scale: float = 0.005, glitch_fraction: float = 0.01,
                    glitch_scale: float = 60.0, seed: int = 42,
                    gain_range: tuple[float, float] = (1.0, 3.0),
                    exponent_range: tuple[float, float] = (0.6, 0.9),
                    ) -> SensorDataset:
    """Generate the Sensor dataset.

    Each sensor ``i`` responds to the latent gas concentration ``c`` through a
    saturating curve ``gain_i * c / (half_i + c)``; the ``average`` column is
    the row-wise mean of the 16 readings, so every sensor column is
    non-linearly (but tightly) correlated with it.  Measurement error is
    modelled the way the paper's outlier discussion needs it: a tiny Gaussian
    jitter on every reading plus sparse large *glitches* (dropouts/spikes)
    that a TRS-Tree must park in its outlier buffers.

    Args:
        num_tuples: Number of rows.
        num_sensors: Number of sensor columns.
        noise_scale: Standard deviation of the per-reading jitter.
        glitch_fraction: Fraction of readings replaced by a glitch.
        glitch_scale: Magnitude of a glitch deviation.
        seed: RNG seed.
        gain_range: Per-sensor response gain is drawn uniformly from this
            interval.
        exponent_range: Per-sensor power-law exponent is drawn uniformly from
            this interval; lower exponents mean a steeper, more strongly
            non-linear response (``benchmarks/bench_sensor_fp.py`` uses this
            to stress the adaptive leaf models beyond the default workload).
    """
    rng = np.random.default_rng(seed)
    concentration = rng.uniform(1.0, 1000.0, size=num_tuples)
    readings = np.empty((num_sensors, num_tuples), dtype=np.float64)
    for sensor in range(num_sensors):
        # Each sensor follows its own concave power-law response: monotone,
        # clearly non-linear, but without a hard saturation plateau (which
        # would pile most readings into a tiny value range and make the
        # sensor ↔ average mapping ill-conditioned).
        gain = rng.uniform(*gain_range)
        exponent = rng.uniform(*exponent_range)
        clean = gain * concentration ** exponent
        readings[sensor] = clean + rng.normal(0.0, noise_scale, size=num_tuples)
    # Glitches hit a fraction of the *rows*, each corrupting one randomly
    # chosen sensor; the affected rows become outliers of every sensor's
    # TRS-Tree (their row average is shifted), which is exactly the sparse
    # outlier population the paper's Sensor discussion relies on.
    glitch_rows = np.flatnonzero(rng.random(num_tuples) < glitch_fraction)
    glitch_sensors = rng.integers(0, num_sensors, size=len(glitch_rows))
    glitch_offsets = (rng.choice((-1.0, 1.0), size=len(glitch_rows))
                      * rng.uniform(0.5 * glitch_scale, glitch_scale,
                                    size=len(glitch_rows)))
    readings[glitch_sensors, glitch_rows] += glitch_offsets
    columns: dict[str, np.ndarray] = {
        "ts": np.arange(num_tuples, dtype=np.float64),
        "average": readings.mean(axis=0),
    }
    for sensor in range(num_sensors):
        columns[sensor_column(sensor)] = readings[sensor]
    return SensorDataset(columns=columns, num_sensors=num_sensors)


def load_sensor(database: Database, dataset: SensorDataset) -> str:
    """Create and populate the Sensor table inside ``database``.

    A primary index on ``ts`` and a pre-existing secondary index on the
    ``average`` column are created; the experiments then index individual
    sensor columns with either Hermit or the baseline.

    Returns:
        The table name.
    """
    schema = numeric_schema(TABLE_NAME, list(dataset.columns), primary_key="ts")
    database.create_table(schema)
    database.insert_many(TABLE_NAME, dataset.columns)
    database.create_index("idx_average", TABLE_NAME, "average",
                          method=IndexMethod.BTREE, preexisting=True)
    return TABLE_NAME
