"""Workload generators: the Synthetic, Stock and Sensor applications + queries."""

from repro.workloads.queries import (
    RangeQuery,
    mixed_queries,
    point_queries,
    range_queries,
)
from repro.workloads.sensor import (
    NUM_SENSORS,
    SensorDataset,
    generate_sensor,
    load_sensor,
    sensor_column,
)
from repro.workloads.stock import (
    StockDataset,
    dow_sp_series,
    generate_stock,
    high_column,
    load_stock,
    low_column,
)
from repro.workloads.synthetic import (
    SyntheticDataset,
    correlation_for,
    generate_synthetic,
    load_synthetic,
)

__all__ = [
    "NUM_SENSORS",
    "RangeQuery",
    "SensorDataset",
    "StockDataset",
    "SyntheticDataset",
    "correlation_for",
    "dow_sp_series",
    "generate_sensor",
    "generate_stock",
    "generate_synthetic",
    "high_column",
    "load_sensor",
    "load_stock",
    "load_synthetic",
    "low_column",
    "mixed_queries",
    "point_queries",
    "range_queries",
    "sensor_column",
]
