"""The Synthetic application (Appendix A).

One table with four 8-byte numeric columns ``colA .. colD``:

* ``colA`` — primary key (an index exists),
* ``colB`` — derived from ``colC`` through a correlation function
  (``colB = Fn(colC)``) with a configurable fraction of injected uniform
  noise; a secondary index on it already exists,
* ``colC`` — the column the application queries; the experiments build the
  new (Hermit or baseline) index here,
* ``colD`` — payload retrieved by the queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.correlation.functions import (
    CorrelationFunction,
    LinearFunction,
    SigmoidFunction,
    inject_noise,
)
from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.storage.schema import numeric_schema

TABLE_NAME = "synthetic"
TARGET_DOMAIN = (0.0, 1_000_000.0)


def correlation_for(name: str) -> CorrelationFunction:
    """Return the correlation function the paper calls ``name``.

    Args:
        name: ``"linear"`` or ``"sigmoid"``.
    """
    if name == "linear":
        return LinearFunction(slope=2.0, intercept=10.0)
    if name == "sigmoid":
        low, high = TARGET_DOMAIN
        midpoint = (low + high) / 2.0
        return SigmoidFunction(midpoint=midpoint, steepness=8.0 / (high - low),
                               scale=high)
    raise ValueError(f"unknown correlation {name!r}; use 'linear' or 'sigmoid'")


@dataclass
class SyntheticDataset:
    """Generated column data for the Synthetic application.

    Attributes:
        columns: Column name → numpy array, ready for ``Database.insert_many``.
        noise_mask: True for the tuples whose ``colB`` was replaced by noise.
        correlation: Name of the correlation function used.
    """

    columns: dict[str, np.ndarray]
    noise_mask: np.ndarray
    correlation: str

    @property
    def num_tuples(self) -> int:
        """Number of generated tuples."""
        return len(self.columns["colA"])


def generate_synthetic(num_tuples: int, correlation: str = "linear",
                       noise_fraction: float = 0.01,
                       seed: int = 42) -> SyntheticDataset:
    """Generate the Synthetic dataset.

    Args:
        num_tuples: Number of rows.
        correlation: ``"linear"`` or ``"sigmoid"``.
        noise_fraction: Fraction of rows whose ``colB`` is perturbed with
            uniform noise (the paper's default is 1%).
        seed: RNG seed for reproducibility.
    """
    rng = np.random.default_rng(seed)
    function = correlation_for(correlation)
    low, high = TARGET_DOMAIN
    col_a = np.arange(num_tuples, dtype=np.float64)
    col_c = rng.uniform(low, high, size=num_tuples)
    clean_b = function(col_c)
    host_span = float(np.ptp(clean_b)) if num_tuples else 1.0
    col_b, noise_mask = inject_noise(
        clean_b, noise_fraction, noise_scale=0.3 * max(host_span, 1.0), rng=rng
    )
    col_d = rng.uniform(0.0, 1.0, size=num_tuples)
    return SyntheticDataset(
        columns={"colA": col_a, "colB": col_b, "colC": col_c, "colD": col_d},
        noise_mask=noise_mask,
        correlation=correlation,
    )


def load_synthetic(database: Database, dataset: SyntheticDataset,
                   extra_correlated_columns: int = 0,
                   seed: int = 7) -> str:
    """Create and populate the Synthetic table inside ``database``.

    A primary index on ``colA`` and a pre-existing secondary index on ``colB``
    are created, matching the paper's starting state.  ``extra_correlated_columns``
    adds columns ``colE0, colE1, ...`` that carry the same values as ``colB``
    — the paper's Figure 20/22 setting of "additional columns ... all
    correlated to colB", kept perfectly correlated so that insert workloads
    can supply consistent values without knowing per-column coefficients.

    Returns:
        The table name.
    """
    del seed  # retained for signature stability
    column_names = ["colA", "colB", "colC", "colD"]
    extra_names = [f"colE{i}" for i in range(extra_correlated_columns)]
    schema = numeric_schema(TABLE_NAME, column_names + extra_names, primary_key="colA")
    database.create_table(schema)

    columns = dict(dataset.columns)
    for name in extra_names:
        columns[name] = columns["colB"].copy()
    database.insert_many(TABLE_NAME, columns)
    database.create_index("idx_colB", TABLE_NAME, "colB",
                          method=IndexMethod.BTREE, preexisting=True)
    return TABLE_NAME
