"""Query workload generators.

All throughput experiments in the paper issue either range queries at a fixed
*selectivity* (the fraction of the key domain covered by the predicate) or
point queries on existing values.  These helpers generate such workloads
deterministically from a seed so every benchmark run replays the same queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RangeQuery:
    """One range predicate ``low <= column <= high``."""

    low: float
    high: float


def range_queries(domain: tuple[float, float], selectivity: float, count: int,
                  seed: int = 0) -> list[RangeQuery]:
    """Generate range queries covering ``selectivity`` of ``domain``.

    Args:
        domain: (min, max) of the queried column.
        selectivity: Fraction of the domain width each query covers, e.g.
            ``0.01`` for 1%.
        count: Number of queries.
        seed: RNG seed.
    """
    low, high = domain
    width = (high - low) * selectivity
    rng = np.random.default_rng(seed)
    starts = rng.uniform(low, high - width, size=count) if high - width > low else (
        np.full(count, low)
    )
    return [RangeQuery(float(start), float(start + width)) for start in starts]


def point_queries(values: np.ndarray, count: int, seed: int = 0) -> list[float]:
    """Sample ``count`` existing values to use as point-query keys."""
    rng = np.random.default_rng(seed)
    values = np.asarray(values)
    if len(values) == 0:
        return []
    positions = rng.integers(0, len(values), size=count)
    return [float(values[position]) for position in positions]


def mixed_queries(domain: tuple[float, float], values: np.ndarray,
                  selectivity: float, count: int, point_fraction: float = 0.5,
                  seed: int = 0) -> list[RangeQuery]:
    """A mix of point and range queries (used by the maintenance examples)."""
    rng = np.random.default_rng(seed)
    num_points = int(count * point_fraction)
    points = point_queries(values, num_points, seed=seed + 1)
    ranges = range_queries(domain, selectivity, count - num_points, seed=seed + 2)
    mixed: list[RangeQuery] = [RangeQuery(value, value) for value in points]
    mixed.extend(ranges)
    rng.shuffle(mixed)
    return mixed
