"""The Stock application (Appendix A).

A wide table recording daily trading data of many stocks: a ``time`` column
(primary key) plus, per stock, a daily *lowest* and *highest* price column.
Each (lowest, highest) pair forms a near-linear correlation — the highest
price sits a few percent above the lowest — except on rare shock days where a
stock moves violently (the paper cites PG&E dropping more than 50% in a day);
those tuples are exactly the outliers a TRS-Tree must buffer.

The paper uses real market data we do not have offline; the generator below
produces a geometric-random-walk price series per stock with heavy-tailed
shock days, which preserves the two statistical properties the experiments
rely on: a tight linear low↔high correlation and sparse large deviations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.catalog import IndexMethod
from repro.engine.database import Database
from repro.storage.schema import numeric_schema

TABLE_NAME = "stock_history"


def low_column(stock: int) -> str:
    """Name of the lowest-price column of stock ``stock``."""
    return f"low_{stock}"


def high_column(stock: int) -> str:
    """Name of the highest-price column of stock ``stock``."""
    return f"high_{stock}"


@dataclass
class StockDataset:
    """Generated column data for the Stock application."""

    columns: dict[str, np.ndarray]
    num_stocks: int
    num_days: int

    @property
    def num_tuples(self) -> int:
        """Number of rows (trading days)."""
        return self.num_days


def generate_stock(num_stocks: int = 100, num_days: int = 15_000,
                   shock_probability: float = 0.005,
                   seed: int = 42) -> StockDataset:
    """Generate the Stock dataset.

    Args:
        num_stocks: Number of stocks (one low/high column pair each).
        num_days: Number of trading days (rows).
        shock_probability: Per-day probability of a shock (outlier) move.
        seed: RNG seed.
    """
    rng = np.random.default_rng(seed)
    columns: dict[str, np.ndarray] = {
        "time": np.arange(num_days, dtype=np.float64)
    }
    for stock in range(num_stocks):
        start_price = rng.uniform(20.0, 500.0)
        daily_returns = rng.normal(0.0003, 0.02, size=num_days)
        prices = start_price * np.exp(np.cumsum(daily_returns))
        # The intraday spread is essentially a per-stock constant with a tiny
        # daily wobble, so low and high trace a near-perfect line — exactly
        # the "near-linear correlation" the paper exploits.  Shock days break
        # that line violently and become TRS-Tree outliers.
        base_spread = rng.uniform(0.008, 0.02)
        spread = base_spread + rng.normal(0.0, 0.0001, size=num_days)
        lows = prices * (1.0 - spread)
        highs = prices * (1.0 + spread)
        shocks = rng.random(num_days) < shock_probability
        shock_magnitude = rng.uniform(0.3, 0.8, size=num_days)
        shock_direction = rng.choice((-1.0, 1.0), size=num_days)
        highs = np.where(
            shocks, highs * (1.0 + shock_direction * shock_magnitude), highs
        )
        columns[low_column(stock)] = lows
        columns[high_column(stock)] = highs
    return StockDataset(columns=columns, num_stocks=num_stocks, num_days=num_days)


def load_stock(database: Database, dataset: StockDataset) -> str:
    """Create and populate the Stock table inside ``database``.

    A primary index on ``time`` and a pre-existing secondary index on every
    lowest-price column are created; the experiments then index the
    highest-price columns with either Hermit or the baseline.

    Returns:
        The table name.
    """
    column_names = list(dataset.columns)
    schema = numeric_schema(TABLE_NAME, column_names, primary_key="time")
    database.create_table(schema)
    database.insert_many(TABLE_NAME, dataset.columns)
    for stock in range(dataset.num_stocks):
        database.create_index(
            f"idx_{low_column(stock)}", TABLE_NAME, low_column(stock),
            method=IndexMethod.BTREE, preexisting=True,
        )
    return TABLE_NAME


def dow_sp_series(num_points: int = 5000, seed: int = 11) -> tuple[np.ndarray, np.ndarray]:
    """Generate correlated Dow-Jones / S&P-500 style index series (Figure 26).

    The two series follow the same random walk at a roughly 8:1 level ratio,
    with occasional decoupling periods that become Hermit outliers.
    """
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.normal(0.1, 2.0, size=num_points)) + 400.0
    sp500 = np.clip(base, 100.0, None)
    dow = sp500 * 8.0 + rng.normal(0.0, 30.0, size=num_points)
    decouple = rng.random(num_points) < 0.02
    dow = np.where(decouple, dow * rng.uniform(0.85, 1.15, size=num_points), dow)
    return sp500, dow
