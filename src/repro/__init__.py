"""repro — a reproduction of Hermit (SIGMOD 2019).

Hermit is a succinct secondary indexing mechanism that exploits column
correlations: instead of building a complete B+-tree on a target column, it
builds a tiny Tiered Regression Search Tree (TRS-Tree) that maps target-column
predicates onto an existing *host* index of a correlated column, then removes
false positives by validating against the base table.

The package layers, bottom-up:

* :mod:`repro.storage` — columnar tables, tuple identifiers, pages/buffer pool.
* :mod:`repro.index` — in-memory and paged B+-trees, hash and composite indexes.
* :mod:`repro.core` — the TRS-Tree and the Hermit mechanism (the paper's
  contribution).
* :mod:`repro.baselines` — the conventional secondary index and Correlation Maps.
* :mod:`repro.correlation` — correlation functions, discovery, host advisor.
* :mod:`repro.engine` — the database facade tying everything together.
* :mod:`repro.workloads` — the Synthetic, Stock and Sensor applications.
* :mod:`repro.bench` — the experiment harness behind ``benchmarks/``.
"""

from repro.core import (
    DEFAULT_CONFIG,
    HermitIndex,
    LinearModel,
    LookupBreakdown,
    TRSTree,
    TRSTreeConfig,
)
from repro.engine import (
    ConjunctiveQuery,
    Database,
    IndexMethod,
    QueryResult,
    RangePredicate,
    conjunction,
)
from repro.index import BPlusTree, KeyRange
from repro.storage import PointerScheme, Table, TableSchema, numeric_schema

__version__ = "0.1.0"

__all__ = [
    "BPlusTree",
    "ConjunctiveQuery",
    "DEFAULT_CONFIG",
    "Database",
    "HermitIndex",
    "IndexMethod",
    "KeyRange",
    "LinearModel",
    "LookupBreakdown",
    "PointerScheme",
    "QueryResult",
    "RangePredicate",
    "conjunction",
    "TRSTree",
    "TRSTreeConfig",
    "Table",
    "TableSchema",
    "numeric_schema",
    "__version__",
]
