"""The Tiered Regression Search Tree (TRS-Tree).

The TRS-Tree is the paper's core data structure (Section 4): a k-ary tree over
the *target* column's value domain whose leaves each hold a tiny regression
model mapping target values to host values (adaptively chosen per leaf from
the linear / log-linear / piecewise-linear families, see
``core/regression.py``), plus an outlier buffer for the tuples the model
cannot cover.  Construction (Algorithm 1) recursively partitions the domain
until every leaf's model covers at least ``1 - outlier_ratio`` of its tuples
— and would not drag in more than ``max_fp_ratio`` estimated false positives
per covered tuple — or ``max_height`` is reached; lookups
(Algorithm 2) translate a target-column predicate into a small set of
host-column ranges plus outlier tuple identifiers; maintenance (Algorithm 3)
touches only the affected leaf's outlier buffer and defers structural changes
to an on-demand reorganization pass.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.config import DEFAULT_CONFIG, TRSTreeConfig
from repro.core.node import (
    TRSInternalNode,
    TRSLeafNode,
    TRSNode,
    equal_width_subranges,
    route_indices,
)
from repro.core.regression import (
    OutlierOnlyModel,
    estimate_leaf_false_positives,
    select_leaf_model,
)
from repro.errors import StorageError
from repro.index.base import KeyRange
from repro.segments import (
    empty_offsets,
    offsets_from_counts,
    running_segment_max,
    segment_ids,
)
from repro.storage.identifiers import TupleId
from repro.storage.memory import DEFAULT_SIZE_MODEL, SizeModel

# A data provider hands back (target values, host values, tuple ids) for all
# live tuples whose target value falls inside the requested range.  It is how
# the reorganization pass re-reads the base table without the tree having to
# know anything about tables.
DataProvider = Callable[[KeyRange], tuple[np.ndarray, np.ndarray, np.ndarray]]


@dataclass
class TRSLookupResult:
    """Output of a TRS-Tree lookup (Algorithm 2).

    Attributes:
        host_ranges: Disjoint ranges on the host column that together cover
            every correlated match of the query predicate.
        outlier_tids: Tuple identifiers recovered directly from outlier
            buffers; they bypass the host index entirely.
        leaves_visited: Number of leaf nodes inspected.
        nodes_visited: Total number of nodes (internal + leaf) inspected.
    """

    host_ranges: list[KeyRange] = field(default_factory=list)
    outlier_tids: list[TupleId] = field(default_factory=list)
    leaves_visited: int = 0
    nodes_visited: int = 0

    def outlier_tid_array(self) -> np.ndarray:
        """The outlier tids as one numpy array (empty int64 array if none).

        ``outlier_tids`` is accumulated as a flat list during the tree walk
        (each leaf's buffer returns a pre-concatenated bucket list), so this
        is a single conversion with no intermediate copies — the form the
        vectorized Hermit lookup consumes.
        """
        if not self.outlier_tids:
            return np.empty(0, dtype=np.int64)
        return np.asarray(self.outlier_tids)


@dataclass
class TRSBatchLookupResult:
    """Output of a batched TRS-Tree lookup (:meth:`TRSTree.lookup_many`).

    Everything is kept in the flat segmented layout of ``repro.segments`` —
    query ``i`` owns ``host_lows[host_offsets[i]:host_offsets[i + 1]]`` (and
    likewise for the outlier tids) — so the batch consumer (Hermit's
    ``candidate_tids_many``) can flow the whole batch into one segmented
    host-index probe without materialising per-query Python objects.

    Per query, the emitted ranges are the scalar :meth:`TRSTree.lookup`'s
    ``KeyRange.union`` output with one extra (candidate-exact) merge: ranges
    whose gap contains **no representable float** are coalesced into one
    probe, so adjacent leaves whose bands touch up to rounding cost one
    host-index probe instead of two.  Outlier tid order *within* a query is
    unspecified (leaf-visit order differs from the scalar walk); callers
    dedup or sort, exactly as they do with the scalar result.

    Attributes:
        host_lows: Flat lower bounds of every emitted host range.
        host_highs: Flat upper bounds, aligned with ``host_lows``.
        host_offsets: Per-query segment boundaries over the range arrays.
        outlier_tids: Flat outlier tuple identifiers.
        outlier_offsets: Per-query segment boundaries over ``outlier_tids``.
        leaves_visited: Per-query count of leaf nodes inspected.
        nodes_visited: Per-query count of all nodes inspected.
    """

    host_lows: np.ndarray
    host_highs: np.ndarray
    host_offsets: np.ndarray
    outlier_tids: np.ndarray
    outlier_offsets: np.ndarray
    leaves_visited: np.ndarray
    nodes_visited: np.ndarray

    @property
    def num_queries(self) -> int:
        """Number of predicate ranges the batch answered."""
        return self.host_offsets.size - 1

    def ranges_per_query(self) -> np.ndarray:
        """Number of host ranges emitted for each query."""
        return np.diff(self.host_offsets)

    def host_ranges_for(self, position: int) -> list[KeyRange]:
        """Query ``position``'s host ranges as ``KeyRange`` objects."""
        start, stop = self.host_offsets[position], self.host_offsets[position + 1]
        return [KeyRange(float(low), float(high))
                for low, high in zip(self.host_lows[start:stop],
                                     self.host_highs[start:stop])]

    def outliers_for(self, position: int) -> np.ndarray:
        """Query ``position``'s outlier tids (a view into the flat array)."""
        start = self.outlier_offsets[position]
        stop = self.outlier_offsets[position + 1]
        return self.outlier_tids[start:stop]

    def to_results(self) -> list[TRSLookupResult]:
        """Materialise per-query :class:`TRSLookupResult` objects.

        Compatibility/diagnostic form (the equivalence tests and ad-hoc
        callers); the hot batch path consumes the flat arrays directly.
        """
        return [
            TRSLookupResult(
                host_ranges=self.host_ranges_for(position),
                outlier_tids=self.outliers_for(position).tolist(),
                leaves_visited=int(self.leaves_visited[position]),
                nodes_visited=int(self.nodes_visited[position]),
            )
            for position in range(self.num_queries)
        ]


def coalesce_sorted_ranges(lows: np.ndarray, highs: np.ndarray,
                           ids: np.ndarray, num_segments: int,
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge overlapping/contiguous ranges per segment, fully vectorized.

    Inputs must be sorted by ``(ids, lows)``.  Two ranges of one segment are
    merged when they overlap, touch, or are separated by a gap containing no
    representable float (``next.low <= nextafter(running_max_high)``) — the
    last case is the "adjacent leaves" coalesce: it cannot admit a single
    extra host value, so the merged probe set is candidate-exact while
    adjacent model bands cost one host-index probe instead of one each.

    Returns:
        ``(merged_lows, merged_highs, offsets)`` — merged ranges per segment
        in the segmented layout.
    """
    if lows.size == 0:
        return lows, highs, empty_offsets(num_segments)
    running_max = running_segment_max(highs, ids)
    previous_max = np.empty_like(running_max)
    previous_max[0] = -np.inf
    previous_max[1:] = running_max[:-1]
    starts = np.empty(lows.size, dtype=bool)
    starts[0] = True
    starts[1:] = ids[1:] != ids[:-1]
    starts |= lows > np.nextafter(previous_max, np.inf)
    start_positions = np.flatnonzero(starts)
    end_positions = np.append(start_positions[1:] - 1, lows.size - 1)
    counts = np.bincount(ids[start_positions], minlength=num_segments)
    return (lows[start_positions], running_max[end_positions],
            offsets_from_counts(counts))


@dataclass
class ReorganizationCandidate:
    """A node flagged for structural reorganization."""

    action: str  # "split" or "merge"
    node: TRSNode


class TRSTree:
    """A TRS-Tree mapping a target column to a host column.

    Args:
        config: User-defined parameters (fanout, max height, outlier ratio,
            error bound, sampling).
        size_model: Analytic memory model shared with the rest of the engine.
    """

    def __init__(self, config: TRSTreeConfig = DEFAULT_CONFIG,
                 size_model: SizeModel = DEFAULT_SIZE_MODEL) -> None:
        self.config = config
        self.size_model = size_model
        self._root: TRSNode | None = None
        self._reorg_queue: deque[ReorganizationCandidate] = deque()
        self._pending_candidates: set[tuple[str, int]] = set()

    # ------------------------------------------------------------ construction

    def build(self, targets: Sequence[float], hosts: Sequence[float],
              tids: Sequence[TupleId], value_range: KeyRange | None = None,
              parallelism: int = 1) -> None:
        """Construct the tree from column data (Algorithm 1).

        Args:
            targets: Target-column values (the column being "indexed").
            hosts: Host-column values, aligned with ``targets``.
            tids: Tuple identifiers, aligned with ``targets``.
            value_range: Full range of the target column.  Taken from the data
                when omitted (the engine normally passes optimizer statistics).
            parallelism: Number of worker threads used to build the root's
                child subtrees (Appendix D.2, multi-threaded construction).
        """
        targets = np.asarray(targets, dtype=np.float64)
        hosts = np.asarray(hosts, dtype=np.float64)
        tid_array = np.asarray(tids)
        if not (len(targets) == len(hosts) == len(tid_array)):
            raise StorageError("targets, hosts and tids must have equal length")
        if value_range is None:
            if len(targets) == 0:
                value_range = KeyRange(0.0, 0.0)
            else:
                value_range = KeyRange(float(targets.min()), float(targets.max()))
        self._reorg_queue.clear()
        self._pending_candidates.clear()
        self._root = self._build_node(
            value_range, targets, hosts, tid_array, height=1,
            parallelism=max(1, parallelism),
        )

    def _build_node(self, key_range: KeyRange, targets: np.ndarray,
                    hosts: np.ndarray, tids: np.ndarray, height: int,
                    parallelism: int = 1) -> TRSNode:
        """Build the subtree for ``key_range`` over the given tuples.

        Two criteria can reject a prospective leaf (Section 4.1 extended by
        the adaptive-leaf-model design, docs/architecture.md):

        * the *outlier ratio* — the best candidate band leaves more than
          ``outlier_ratio`` of the tuples uncovered, and
        * the *false-positive ratio* — the band would drag in more than
          ``max_fp_ratio * covered`` estimated false-positive candidates
          (band width x the leaf's own host-value density), even though the
          outlier ratio passes.

        A node failing either criterion splits while it can; a node that
        fails the false-positive criterion but cannot split is demoted to an
        exact outlier-only leaf (every tuple buffered, no host range ever
        emitted) rather than keeping a band that floods the host index.
        """
        can_split = (
            height < self.config.max_height
            and len(targets) >= self.config.min_split_size
            and key_range.width > 0
        )

        if can_split and self._sampling_says_split(key_range, targets, hosts):
            return self._split(key_range, targets, hosts, tids, height, parallelism)

        fit = select_leaf_model(
            targets, hosts, key_range, self.config.error_bound,
            trim_fraction=self.config.outlier_ratio,
            max_fp_ratio=self.config.max_fp_ratio,
        )
        model = fit.model
        covered = model.covers_many(targets, hosts) if len(targets) else np.zeros(0, bool)
        num_model_covered = int(covered.sum())
        num_outliers = int(len(targets) - num_model_covered)
        fp_estimate = estimate_leaf_false_positives(model, hosts[covered])
        too_many_fps = (
            num_model_covered > 0
            and fp_estimate > self.config.max_fp_ratio * num_model_covered
        )

        if can_split and (
            num_outliers > self.config.outlier_ratio * len(targets)
            or too_many_fps
        ):
            return self._split(key_range, targets, hosts, tids, height, parallelism)

        if too_many_fps:
            # Cannot split: store the tuples exactly instead of keeping a
            # band whose false positives would swamp its true matches.
            model = OutlierOnlyModel()
            covered = np.zeros(len(targets), dtype=bool)
            num_model_covered = 0
            fp_estimate = 0.0

        leaf = TRSLeafNode(key_range, height, model, self.size_model)
        leaf.num_covered = int(len(targets))
        leaf.num_model_covered = num_model_covered
        leaf.fp_estimate = fp_estimate
        if len(targets) > num_model_covered:
            # One batched buffer fill — a demoted (outlier-only) leaf files
            # *every* tuple here, so the per-tuple scalar path would be an
            # O(n log n) Python loop on each build and reorganization.
            leaf.outliers.add_many(targets[~covered], tids[~covered])
        return leaf

    def _split(self, key_range: KeyRange, targets: np.ndarray, hosts: np.ndarray,
               tids: np.ndarray, height: int, parallelism: int) -> TRSInternalNode:
        """Split a range into ``node_fanout`` children and build each.

        Tuples are partitioned with the shared :func:`route_indices` rule —
        the same arithmetic the scalar traversal and the batched insert path
        use — so a value on a child boundary is filed into the same child by
        every code path.
        """
        node = TRSInternalNode(key_range, height)
        subranges = equal_width_subranges(key_range, self.config.node_fanout)
        indices = route_indices(targets, key_range, len(subranges))

        def build_child(position: int) -> TRSNode:
            mask = indices == position
            return self._build_node(
                subranges[position], targets[mask], hosts[mask], tids[mask],
                height + 1,
            )

        if parallelism > 1 and len(targets) > 4 * self.config.min_split_size:
            with ThreadPoolExecutor(max_workers=parallelism) as pool:
                children = list(pool.map(build_child, range(len(subranges))))
        else:
            children = [build_child(position) for position in range(len(subranges))]

        for child in children:
            child.parent = node
        node.children = children
        return node

    def _sampling_says_split(self, key_range: KeyRange, targets: np.ndarray,
                             hosts: np.ndarray) -> bool:
        """Sampling-based outlier pre-estimation (Appendix D.2).

        Fits the model on a small sample first; if even the sample exceeds the
        outlier ratio, the full fit is skipped and the node is split directly.
        """
        fraction = self.config.sample_fraction
        if fraction is None or len(targets) < 4 * self.config.min_split_size:
            return False
        sample_size = max(self.config.min_split_size, int(len(targets) * fraction))
        rng = np.random.default_rng(len(targets))
        positions = rng.choice(len(targets), size=sample_size, replace=False)
        sample_fit = select_leaf_model(
            targets[positions], hosts[positions], key_range, self.config.error_bound,
            trim_fraction=self.config.outlier_ratio,
            max_fp_ratio=self.config.max_fp_ratio,
        )
        covered = sample_fit.model.covers_many(targets[positions], hosts[positions])
        outliers = sample_size - int(covered.sum())
        return outliers > self.config.outlier_ratio * sample_size

    # ----------------------------------------------------------------- lookup

    def lookup(self, predicate: KeyRange) -> TRSLookupResult:
        """Translate a target-column predicate into host ranges + outliers.

        Nodes on the left/right edge of the tree are treated as open-ended:
        values inserted after construction that fall outside the originally
        observed target domain are routed (clamped) into the edge leaves'
        outlier buffers, so lookups whose predicate extends beyond the built
        domain must still visit those leaves.
        """
        result = TRSLookupResult()
        if self._root is None:
            return result
        # Queue entries carry (node, is_left_edge, is_right_edge).
        queue: deque[tuple[TRSNode, bool, bool]] = deque([(self._root, True, True)])
        while queue:
            node, left_edge, right_edge = queue.popleft()
            result.nodes_visited += 1
            effective = KeyRange(
                float("-inf") if left_edge else node.key_range.low,
                float("inf") if right_edge else node.key_range.high,
            )
            if node.is_leaf:
                leaf: TRSLeafNode = node  # type: ignore[assignment]
                overlap = effective.intersect(predicate)
                if overlap is None:
                    continue
                result.leaves_visited += 1
                # ``overlap`` is clipped to the predicate (finite) but may
                # extend beyond the leaf's built range on the tree's edges;
                # extrapolating the model's band there mirrors the insert
                # path, which uses the same band to decide whether an
                # out-of-domain tuple needs an outlier entry.  A leaf whose
                # band covers no tuple (built empty, all-outlier, or demoted
                # to an outlier-only model) holds nothing behind its host
                # range — emitting it would only hand the host index a
                # spurious probe per empty leaf.
                if leaf.num_model_covered > 0:
                    result.host_ranges.append(leaf.get_host_range(overlap))
                result.outlier_tids.extend(leaf.outliers.lookup(overlap))
            else:
                internal: TRSInternalNode = node  # type: ignore[assignment]
                last = len(internal.children) - 1
                for position, child in enumerate(internal.children):
                    child_left = left_edge and position == 0
                    child_right = right_edge and position == last
                    child_range = KeyRange(
                        float("-inf") if child_left else child.key_range.low,
                        float("inf") if child_right else child.key_range.high,
                    )
                    if child_range.overlaps(predicate):
                        queue.append((child, child_left, child_right))
        result.host_ranges = KeyRange.union(result.host_ranges)
        return result

    def lookup_point(self, target_value: float) -> TRSLookupResult:
        """Point-query variant of :meth:`lookup`."""
        return self.lookup(KeyRange(target_value, target_value))

    def lookup_many(self, predicates: Sequence[KeyRange]) -> TRSBatchLookupResult:
        """Batched :meth:`lookup`: translate B predicates in array passes.

        The scalar lookup walks the tree once per predicate — a Python BFS
        with per-node ``KeyRange`` allocations that PR 5 measured as the
        bound on every B+-tree-backed batch ratio.  This path instead routes
        the *whole batch* down the tree at once: at every internal node two
        ``searchsorted`` passes over the cached ``partition_bounds`` floats
        find each predicate's overlapped child span
        (:meth:`~repro.core.node.TRSInternalNode.overlap_spans`), and each
        reached leaf then serves its whole predicate run with one vectorized
        model evaluation (``host_range_many``) and one batched outlier-buffer
        probe (``lookup_many``).  Per-query results come back as flat
        segmented arrays, with host ranges sort-and-coalesced per query (the
        scalar path's ``KeyRange.union`` plus the candidate-exact
        adjacent-range merge — see :func:`coalesce_sorted_ranges`).

        Visits the same nodes and leaves as B scalar lookups and emits the
        same host-range cover and outlier tids (order within a query aside);
        ``tests/test_trs_lookup_many.py`` pins the equivalence.
        """
        num_queries = len(predicates)
        nodes_visited = np.zeros(num_queries, dtype=np.int64)
        leaves_visited = np.zeros(num_queries, dtype=np.int64)
        empty = TRSBatchLookupResult(
            host_lows=np.empty(0, dtype=np.float64),
            host_highs=np.empty(0, dtype=np.float64),
            host_offsets=empty_offsets(num_queries),
            outlier_tids=np.empty(0, dtype=np.int64),
            outlier_offsets=empty_offsets(num_queries),
            leaves_visited=leaves_visited,
            nodes_visited=nodes_visited,
        )
        if self._root is None or num_queries == 0:
            return empty
        lows = np.fromiter((predicate.low for predicate in predicates),
                           dtype=np.float64, count=num_queries)
        highs = np.fromiter((predicate.high for predicate in predicates),
                            dtype=np.float64, count=num_queries)

        # Descend the whole batch: (leaf, left_edge, right_edge, query ids).
        leaf_visits: list[tuple[TRSLeafNode, bool, bool, np.ndarray]] = []
        all_queries = np.arange(num_queries, dtype=np.int64)
        stack: list[tuple[TRSNode, bool, bool, np.ndarray]] = [
            (self._root, True, True, all_queries)
        ]
        while stack:
            node, left_edge, right_edge, queries = stack.pop()
            nodes_visited[queries] += 1
            if node.is_leaf:
                leaves_visited[queries] += 1
                leaf_visits.append((node, left_edge, right_edge, queries))  # type: ignore[arg-type]
                continue
            internal: TRSInternalNode = node  # type: ignore[assignment]
            first, last = internal.overlap_spans(
                lows[queries], highs[queries], left_edge, right_edge
            )
            final = len(internal.children) - 1
            for position, child in enumerate(internal.children):
                mask = (first <= position) & (position <= last)
                if mask.any():
                    stack.append((
                        child, left_edge and position == 0,
                        right_edge and position == final, queries[mask],
                    ))

        # Serve every reached leaf with one model pass + one buffer probe.
        range_owners: list[np.ndarray] = []
        range_lows: list[np.ndarray] = []
        range_highs: list[np.ndarray] = []
        outlier_owners: list[np.ndarray] = []
        outlier_parts: list[np.ndarray] = []
        for leaf, left_edge, right_edge, queries in leaf_visits:
            effective_low = -np.inf if left_edge else leaf.key_range.low
            effective_high = np.inf if right_edge else leaf.key_range.high
            overlap_lows = np.maximum(lows[queries], effective_low)
            overlap_highs = np.minimum(highs[queries], effective_high)
            if leaf.num_model_covered > 0:
                emitted_lows, emitted_highs = leaf.model.host_range_many(
                    overlap_lows, overlap_highs
                )
                range_owners.append(queries)
                range_lows.append(emitted_lows)
                range_highs.append(emitted_highs)
            if len(leaf.outliers):
                tids, offsets = leaf.outliers.lookup_many(overlap_lows,
                                                          overlap_highs)
                if tids.size:
                    outlier_owners.append(queries[segment_ids(offsets)])
                    outlier_parts.append(tids)

        host_lows, host_highs = empty.host_lows, empty.host_highs
        host_offsets = empty.host_offsets
        if range_owners:
            owners = np.concatenate(range_owners)
            flat_lows = np.concatenate(range_lows)
            flat_highs = np.concatenate(range_highs)
            order = np.lexsort((flat_lows, owners))
            host_lows, host_highs, host_offsets = coalesce_sorted_ranges(
                flat_lows[order], flat_highs[order], owners[order], num_queries
            )

        outlier_tids, outlier_offsets = empty.outlier_tids, empty.outlier_offsets
        if outlier_owners:
            owners = np.concatenate(outlier_owners)
            flat_tids = np.concatenate(outlier_parts)
            order = np.argsort(owners, kind="stable")
            outlier_tids = flat_tids[order]
            outlier_offsets = offsets_from_counts(
                np.bincount(owners[order], minlength=num_queries)
            )
        return TRSBatchLookupResult(
            host_lows=host_lows, host_highs=host_highs,
            host_offsets=host_offsets, outlier_tids=outlier_tids,
            outlier_offsets=outlier_offsets, leaves_visited=leaves_visited,
            nodes_visited=nodes_visited,
        )

    # ------------------------------------------------------------ maintenance

    def insert(self, target_value: float, host_value: float, tid: TupleId) -> None:
        """Insert a tuple (Algorithm 3).

        Only the affected leaf's outlier buffer may change; if the leaf's
        model already covers the new pair nothing is stored at all.
        """
        leaf = self._traverse(target_value)
        if leaf is None:
            return
        if leaf.covers(target_value, host_value):
            leaf.num_model_covered += 1
        else:
            leaf.add_outlier(target_value, tid)
        leaf.num_inserted += 1
        self._maybe_flag_split(leaf)

    def insert_many(self, targets: Sequence[float], hosts: Sequence[float],
                    tids: Sequence[TupleId]) -> None:
        """Batched :meth:`insert` (Algorithm 3, column-at-a-time).

        The batch is routed down the tree by partitioning the target array
        at every internal node with one vectorized ``searchsorted`` against
        the node's cached partition bounds — the same comparison-based rule
        as :meth:`TRSInternalNode.child_for`, so scalar and batched inserts
        file every value (boundary values included) into the same leaf;
        each reached leaf then classifies its whole run with one
        ``covers_many`` call and stores only the uncovered tuples, so the
        per-row Python traversal and per-row model evaluation of the scalar
        path disappear.
        """
        targets = np.asarray(targets, dtype=np.float64)
        hosts = np.asarray(hosts, dtype=np.float64)
        tid_array = np.asarray(tids)
        if not (len(targets) == len(hosts) == len(tid_array)):
            raise StorageError("targets, hosts and tids must have equal length")
        if self._root is None or targets.size == 0:
            return
        self._insert_many_into(self._root, targets, hosts, tid_array)

    def _insert_many_into(self, node: TRSNode, targets: np.ndarray,
                          hosts: np.ndarray, tids: np.ndarray) -> None:
        """Route a batch into the subtree at ``node`` (batched Algorithm 3)."""
        if node.is_leaf:
            leaf: TRSLeafNode = node  # type: ignore[assignment]
            covered = leaf.covers_many(targets, hosts)
            num_covered = int(covered.sum())
            if num_covered < targets.size:
                leaf.outliers.add_many(targets[~covered], tids[~covered])
            leaf.num_model_covered += num_covered
            leaf.num_inserted += int(targets.size)
            self._maybe_flag_split(leaf)
            return
        internal: TRSInternalNode = node  # type: ignore[assignment]
        fanout = len(internal.children)
        indices = internal.route_batch(targets)
        for position in range(fanout):
            mask = indices == position
            if mask.any():
                self._insert_many_into(internal.children[position],
                                       targets[mask], hosts[mask], tids[mask])

    def delete(self, target_value: float, host_value: float, tid: TupleId) -> None:
        """Delete a tuple (Algorithm 3).

        Removes the outlier entry if one exists; covered tuples leave no trace
        in the tree, so there is nothing else to undo.  ``num_deleted`` is
        only charged when the pair was plausibly present — as a removed
        outlier entry, or as a pair the model's band covers — so deletes of
        pairs the tree never stored (the no-op halves of no-op updates)
        cannot inflate ``deleted_ratio()`` into spurious merge flags.  (For
        band-covered pairs the tree keeps no per-tuple record, so repeated
        deletes of one covered pair still count each time; a merge flag is
        advisory — reorganization re-reads the base table — so the
        imprecision cannot affect query results.)
        """
        leaf = self._traverse(target_value)
        if leaf is None:
            return
        if self._remove_from_leaf(leaf, target_value, host_value, tid):
            leaf.num_deleted += 1
            self._maybe_flag_merge(leaf)

    def update(self, old_target: float, old_host: float, new_target: float,
               new_host: float, tid: TupleId,
               new_tid: TupleId | None = None) -> None:
        """Update a tuple's target and/or host value (and optionally its tid).

        An update that stays inside one leaf only *moves* the tuple — the
        leaf's population is unchanged, so neither ``num_deleted`` nor
        ``num_inserted`` is charged (charging both, as delete+insert would,
        double-counts the tuple and inflates ``deleted_ratio()`` toward
        spurious merges).  An update that crosses leaves is a genuine
        delete from one leaf plus an insert into another and is counted as
        such on each side.

        Args:
            new_tid: Tuple identifier after the update; defaults to ``tid``
                (it differs when the primary key changed under logical
                pointers).
        """
        if new_tid is None:
            new_tid = tid
        old_leaf = self._traverse(old_target)
        if old_leaf is None:
            return
        new_leaf = self._traverse(new_target)
        removed = self._remove_from_leaf(old_leaf, old_target, old_host, tid)
        if new_leaf is old_leaf:
            if new_leaf.covers(new_target, new_host):
                new_leaf.num_model_covered += 1
            else:
                new_leaf.add_outlier(new_target, new_tid)
            self._maybe_flag_split(new_leaf)
            return
        if removed:
            old_leaf.num_deleted += 1
            self._maybe_flag_merge(old_leaf)
        self.insert(new_target, new_host, new_tid)

    def _remove_from_leaf(self, leaf: TRSLeafNode, target_value: float,
                          host_value: float, tid: TupleId) -> bool:
        """Remove one pair from ``leaf``; True when it was plausibly present.

        A pair lives in a leaf either as an outlier entry or implicitly
        behind the model's band; anything else (a value the tree never saw)
        is a no-op and must not touch the counters.  ``num_model_covered``
        is deliberately NOT decremented for band-covered deletes: the band
        keeps no per-tuple record, so a decrement cannot be validated and
        over-deleting one covered pair would drive the counter to zero
        while covered tuples still exist — silencing the leaf's host probe
        and losing them.  Keeping the counter a monotone upper bound means
        its zero/non-zero probe gate can only err on the emit-the-probe
        side, which validation absorbs.
        """
        if leaf.outliers.remove(target_value, tid):
            return True
        return leaf.covers(target_value, host_value)

    def _traverse(self, target_value: float) -> TRSLeafNode | None:
        node = self._root
        if node is None:
            return None
        while not node.is_leaf:
            node = node.child_for(target_value)  # type: ignore[union-attr]
        return node  # type: ignore[return-value]

    def _maybe_flag_split(self, leaf: TRSLeafNode) -> None:
        if leaf.height >= self.config.max_height:
            return
        if leaf.population < self.config.min_split_size:
            return
        if leaf.outlier_ratio() > self.config.outlier_ratio:
            self._enqueue_candidate("split", leaf)

    def _maybe_flag_merge(self, leaf: TRSLeafNode) -> None:
        if leaf.parent is None:
            return
        if leaf.deleted_ratio() > self.config.outlier_ratio:
            self._enqueue_candidate("merge", leaf.parent)

    def _enqueue_candidate(self, action: str, node: TRSNode) -> None:
        key = (action, id(node))
        if key in self._pending_candidates:
            return
        self._pending_candidates.add(key)
        self._reorg_queue.append(ReorganizationCandidate(action, node))

    # --------------------------------------------------------- reorganization

    @property
    def pending_reorganizations(self) -> int:
        """Number of nodes currently flagged for reorganization."""
        return len(self._reorg_queue)

    def reorganize(self, provider: DataProvider,
                   max_candidates: int | None = None) -> int:
        """Process flagged reorganization candidates (Section 4.4).

        Args:
            provider: Callback returning ``(targets, hosts, tids)`` for every
                live tuple whose target value falls in a given range; used to
                re-read the base table for the affected sub-ranges.
            max_candidates: Process at most this many candidates (all if None).

        Returns:
            The number of candidates actually rebuilt.
        """
        processed = 0
        while self._reorg_queue:
            if max_candidates is not None and processed >= max_candidates:
                break
            candidate = self._reorg_queue.popleft()
            self._pending_candidates.discard((candidate.action, id(candidate.node)))
            if not self._is_attached(candidate.node):
                continue
            self._rebuild_node(candidate.node, provider)
            processed += 1
        return processed

    def rebuild_subtree(self, node: TRSNode, provider: DataProvider) -> None:
        """Rebuild the subtree rooted at ``node`` from base-table data."""
        self._rebuild_node(node, provider)

    def reorganize_children(self, provider: DataProvider,
                            child_indices: Iterable[int]) -> None:
        """Rebuild selected first-level subtrees (used by the Figure 23 trace)."""
        if self._root is None or self._root.is_leaf:
            if self._root is not None:
                self._rebuild_node(self._root, provider)
            return
        root: TRSInternalNode = self._root  # type: ignore[assignment]
        for index in child_indices:
            if 0 <= index < len(root.children):
                self._rebuild_node(root.children[index], provider)

    def _rebuild_node(self, node: TRSNode, provider: DataProvider) -> None:
        targets, hosts, tids = provider(node.key_range)
        rebuilt = self._build_node(
            node.key_range,
            np.asarray(targets, dtype=np.float64),
            np.asarray(hosts, dtype=np.float64),
            np.asarray(tids),
            height=node.height,
        )
        parent = node.parent
        if parent is None:
            self._root = rebuilt
            rebuilt.parent = None
        else:
            parent.replace_child(node, rebuilt)

    def _is_attached(self, node: TRSNode) -> bool:
        current = node
        while current.parent is not None:
            if current not in current.parent.children:
                return False
            current = current.parent
        return current is self._root

    # ------------------------------------------------------------- statistics

    @property
    def root(self) -> TRSNode | None:
        """The root node (None before :meth:`build`)."""
        return self._root

    def nodes(self) -> Iterable[TRSNode]:
        """Iterate every node in the tree."""
        if self._root is None:
            return []
        return self._root.walk()

    def leaves(self) -> list[TRSLeafNode]:
        """All leaf nodes."""
        return [node for node in self.nodes() if node.is_leaf]  # type: ignore[misc]

    @property
    def num_leaves(self) -> int:
        """Number of leaf nodes."""
        return sum(1 for node in self.nodes() if node.is_leaf)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes."""
        return sum(1 for _ in self.nodes())

    @property
    def height(self) -> int:
        """Height of the deepest leaf (root = 1); 0 for an empty tree."""
        heights = [node.height for node in self.nodes() if node.is_leaf]
        return max(heights) if heights else 0

    @property
    def num_outliers(self) -> int:
        """Total number of outlier entries across all leaves."""
        return sum(len(leaf.outliers) for leaf in self.leaves())

    def estimated_fp_ratio(self) -> float | None:
        """Build-time estimate of the fraction of candidates that are FPs.

        Aggregates every leaf's ``fp_estimate`` (band width x own host
        density, recorded when the leaf's model was chosen) against the
        tuples actually behind the bands, matching the semantics of
        ``LookupBreakdown.false_positive_ratio``: estimated false positives
        over estimated total candidates.  ``None`` when the tree holds no
        covered tuples (nothing to estimate from) — callers fall back to
        their conservative default.
        """
        covered = 0
        false_positives = 0.0
        for leaf in self.leaves():
            covered += leaf.num_model_covered
            false_positives += leaf.fp_estimate
        if covered <= 0:
            return None
        return false_positives / (covered + false_positives)

    def memory_bytes(self) -> int:
        """Analytic size of the whole tree in bytes."""
        total = 0
        for node in self.nodes():
            if node.is_leaf:
                leaf: TRSLeafNode = node  # type: ignore[assignment]
                total += self.size_model.trs_leaf_bytes(len(leaf.outliers))
            else:
                total += self.size_model.trs_internal_bytes(self.config.node_fanout)
        return total
