"""Background reorganization of TRS-Trees (Section 4.4, Appendix B).

The paper runs structure reorganization on a dedicated background thread: the
insert/delete paths only *flag* candidate nodes, and the background thread
periodically rebuilds them from the base table.  This module provides that
thread.  The synchronisation protocol is deliberately coarse-grained, exactly
as the paper describes: a single lock guards the install step, and concurrent
readers never observe a partially rebuilt subtree because the rebuilt nodes
are swapped in with a single parent-pointer update.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core.hermit import HermitIndex


@dataclass
class ReorganizationStats:
    """Counters describing background reorganization activity."""

    passes: int = 0
    candidates_processed: int = 0
    last_pass_seconds: float = 0.0
    history: list[tuple[float, int]] = field(default_factory=list)


class BackgroundReorganizer:
    """Periodically reorganizes a Hermit index on a background thread.

    Args:
        hermit: The Hermit index whose TRS-Tree should be maintained.
        interval_seconds: Sleep between reorganization passes.
        batch_size: Maximum number of candidate nodes rebuilt per pass
            (mirrors the paper's batch structure reorganization).
    """

    def __init__(self, hermit: HermitIndex, interval_seconds: float = 5.0,
                 batch_size: int | None = None) -> None:
        self.hermit = hermit
        self.interval_seconds = interval_seconds
        self.batch_size = batch_size
        self.stats = ReorganizationStats()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    def run_once(self) -> int:
        """Run a single reorganization pass synchronously.

        Returns:
            Number of candidate nodes rebuilt.
        """
        started = time.perf_counter()
        with self._lock:
            processed = self.hermit.reorganize(self.batch_size)
        elapsed = time.perf_counter() - started
        self.stats.passes += 1
        self.stats.candidates_processed += processed
        self.stats.last_pass_seconds = elapsed
        self.stats.history.append((elapsed, processed))
        return processed

    def start(self) -> None:
        """Start the background thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop_event.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="trs-tree-reorganizer")
        self._thread.start()

    def stop(self) -> None:
        """Stop the background thread and wait for it to exit."""
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    @property
    def is_running(self) -> bool:
        """Whether the background thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def _loop(self) -> None:
        while not self._stop_event.is_set():
            if self.hermit.pending_reorganizations:
                self.run_once()
            self._stop_event.wait(self.interval_seconds)

    def __enter__(self) -> "BackgroundReorganizer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
