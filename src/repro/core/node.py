"""TRS-Tree node types.

A TRS-Tree is a k-ary tree over the *target* column's value domain.  Internal
nodes only navigate: they split their range into ``node_fanout`` equal-width
sub-ranges, one per child.  Leaf nodes carry the actual data mapping: a fitted
:class:`~repro.core.regression.LeafModel` (linear, log-linear,
piecewise-linear or outlier-only) plus an
:class:`~repro.core.outliers.OutlierBuffer` for the tuples the model does not
cover.
"""

from __future__ import annotations

import bisect
from typing import Iterator

import numpy as np

from repro.core.outliers import OutlierBuffer
from repro.core.regression import LeafModel
from repro.index.base import KeyRange
from repro.storage.identifiers import TupleId
from repro.storage.memory import DEFAULT_SIZE_MODEL, SizeModel


def partition_bounds(key_range: KeyRange, fanout: int) -> list[float]:
    """The ``fanout + 1`` equal-width partition bounds of ``key_range``.

    This is the single source of truth for where a node's children begin
    and end: :func:`equal_width_subranges` builds the child key ranges from
    it, and :func:`route_indices` / :func:`route_index` route by *comparing
    against these exact floats* — so a routed value always lies inside its
    child's closed range.  (An arithmetic routing rule like
    ``int((v - low) / width * fanout)`` cannot give that guarantee: under
    float rounding it can disagree with the separately computed bounds by
    an ulp, filing a tuple into a child whose range excludes it — and the
    lookup's overlap-based descent would then never find it again.)
    """
    if fanout <= 0:
        raise ValueError("fanout must be positive")
    width = key_range.width / fanout
    return [key_range.low + i * width for i in range(fanout)] + [key_range.high]


def route_indices(values: np.ndarray, key_range: KeyRange,
                  fanout: int) -> np.ndarray:
    """Equal-width child positions for a batch of target values.

    This is THE routing rule of the tree: construction-time partitioning,
    scalar traversal and batched inserts all call it (directly or through
    :func:`route_index`), so a value can never be filed into one child by one
    code path and a different child by another — boundary values included.
    Routing is a ``searchsorted`` against :func:`partition_bounds` (pure
    comparisons, no float arithmetic), so a value inside the node's range is
    guaranteed to land in a child whose closed ``key_range`` contains it; a
    value on an interior bound belongs to the right-hand child.  Values
    outside the node's range are clamped to the first/last child so
    out-of-domain inserts still land somewhere sensible (they become
    outliers of the edge leaves).
    """
    bounds = partition_bounds(key_range, fanout)
    if key_range.width <= 0:
        return np.zeros(len(values), dtype=np.int64)
    return np.searchsorted(np.asarray(bounds[1:-1]), values,
                           side="right").astype(np.int64)


def route_index(value: float, key_range: KeyRange, fanout: int) -> int:
    """Scalar :func:`route_indices`.

    ``bisect_right`` over the same :func:`partition_bounds` floats the
    vectorised path searches — comparisons only, so the scalar and batched
    paths agree on every input by construction.
    ``tests/test_trs_tree.py`` pins this parity property.
    """
    bounds = partition_bounds(key_range, fanout)
    if key_range.width <= 0:
        return 0
    return bisect.bisect_right(bounds, value, 1, fanout) - 1


class TRSNode:
    """Common state of leaf and internal TRS-Tree nodes."""

    __slots__ = ("key_range", "height", "parent")

    def __init__(self, key_range: KeyRange, height: int,
                 parent: "TRSInternalNode | None" = None) -> None:
        self.key_range = key_range
        self.height = height
        self.parent = parent

    @property
    def is_leaf(self) -> bool:
        """Whether the node is a leaf."""
        raise NotImplementedError

    def walk(self) -> Iterator["TRSNode"]:
        """Depth-first iteration over the subtree rooted at this node."""
        raise NotImplementedError


class TRSLeafNode(TRSNode):
    """A leaf: fitted model + outlier buffer over a target sub-range.

    Attributes:
        model: The fitted mapping from target to host values (any
            :class:`~repro.core.regression.LeafModel` family).
        outliers: Tuples not covered by ``model``.
        num_covered: Number of tuples in the leaf's range at (re)build time.
        num_model_covered: Monotone count of band-covered placements —
            build-time covered tuples plus covered inserts/update targets.
            Deliberately never decremented (the band keeps no per-tuple
            record, so a covered delete cannot be validated; see
            ``TRSTree._remove_from_leaf``), which makes it an upper bound:
            zero is only reachable when no covered tuple was ever placed.
            A leaf with ``num_model_covered == 0`` (built empty,
            all-outlier, or demoted to
            :class:`~repro.core.regression.OutlierOnlyModel`) holds no tuple
            behind its band, so lookups skip its host range entirely.
        fp_estimate: Build-time estimate of the false-positive candidates a
            probe spanning the leaf would drag in (band width x the leaf's
            own host density); feeds the planner's pre-observation
            false-positive prior through
            :meth:`~repro.core.trs_tree.TRSTree.estimated_fp_ratio`.
        num_inserted: Tuples inserted into the range since the last rebuild.
        num_deleted: Tuples deleted from the range since the last rebuild.
    """

    __slots__ = ("model", "outliers", "num_covered", "num_model_covered",
                 "fp_estimate", "num_inserted", "num_deleted")

    def __init__(self, key_range: KeyRange, height: int, model: LeafModel,
                 size_model: SizeModel = DEFAULT_SIZE_MODEL,
                 parent: "TRSInternalNode | None" = None) -> None:
        super().__init__(key_range, height, parent)
        self.model = model
        self.outliers = OutlierBuffer(size_model)
        self.num_covered = 0
        self.num_model_covered = 0
        self.fp_estimate = 0.0
        self.num_inserted = 0
        self.num_deleted = 0

    @property
    def is_leaf(self) -> bool:
        return True

    @property
    def population(self) -> int:
        """Best estimate of the number of live tuples in the leaf's range."""
        return max(0, self.num_covered + self.num_inserted - self.num_deleted)

    def get_host_range(self, target_range: KeyRange) -> KeyRange:
        """Host-column range predicted for ``target_range`` (clipped to the leaf)."""
        return self.model.host_range(target_range)

    def covers(self, target_value: float, host_value: float) -> bool:
        """Whether the model's confidence band covers ``(target, host)``."""
        return self.model.covers(target_value, host_value)

    def covers_many(self, target_values, host_values):
        """Vectorised :meth:`covers` over aligned value arrays."""
        return self.model.covers_many(target_values, host_values)

    def add_outlier(self, target_value: float, tid: TupleId) -> None:
        """Store a tuple the model cannot cover."""
        self.outliers.add(target_value, tid)

    def outlier_ratio(self) -> float:
        """Current ratio of outliers to tuples in the leaf's range."""
        population = self.population
        if population <= 0:
            return 0.0
        return len(self.outliers) / population

    def deleted_ratio(self) -> float:
        """Ratio of deletions since the last rebuild to the build population."""
        if self.num_covered <= 0:
            return 0.0
        return self.num_deleted / self.num_covered

    def walk(self) -> Iterator[TRSNode]:
        yield self

    def __repr__(self) -> str:
        return (
            f"TRSLeafNode(range=[{self.key_range.low:.3g}, {self.key_range.high:.3g}], "
            f"model={type(self.model).__name__}, eps={self.model.epsilon:.3g}, "
            f"outliers={len(self.outliers)})"
        )


class TRSInternalNode(TRSNode):
    """An internal node routing lookups to its equal-width children."""

    __slots__ = ("children", "_bounds", "_interior_bounds_array",
                 "_bounds_array")

    def __init__(self, key_range: KeyRange, height: int,
                 parent: "TRSInternalNode | None" = None) -> None:
        super().__init__(key_range, height, parent)
        self.children: list[TRSNode] = []
        self._bounds: list[float] | None = None
        self._interior_bounds_array: np.ndarray | None = None
        self._bounds_array: np.ndarray | None = None

    def _routing_bounds(self) -> list[float]:
        """The node's :func:`partition_bounds`, computed once and cached.

        The fanout and key range are fixed for the node's lifetime
        (reorganization replaces whole nodes), so the bounds — the floats
        every routing decision compares against — never change.
        """
        if self._bounds is None:
            self._bounds = partition_bounds(self.key_range, len(self.children))
            self._interior_bounds_array = np.asarray(self._bounds[1:-1])
            self._bounds_array = np.asarray(self._bounds)
        return self._bounds

    def child_for(self, target_value: float) -> TRSNode:
        """The child whose range contains ``target_value``.

        The same comparison-based rule as :func:`route_index` (bisect over
        the cached :func:`partition_bounds`), so the scalar traversal agrees
        with construction-time partitioning and batched-insert routing on
        every value, boundary values included.
        """
        if not self.children:
            raise ValueError("internal node has no children")
        bounds = self._routing_bounds()
        if self.key_range.width <= 0:
            return self.children[0]
        position = bisect.bisect_right(bounds, target_value,
                                       1, len(self.children)) - 1
        return self.children[position]

    def route_batch(self, values: np.ndarray) -> np.ndarray:
        """Child positions for a value batch (cached-bounds searchsorted)."""
        self._routing_bounds()
        if self.key_range.width <= 0:
            return np.zeros(len(values), dtype=np.int64)
        return np.searchsorted(self._interior_bounds_array, values,
                               side="right").astype(np.int64)

    def overlap_spans(self, lows: np.ndarray, highs: np.ndarray,
                      left_edge: bool, right_edge: bool,
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Overlapped child span ``[first[i], last[i]]`` per predicate range.

        The batched form of the lookup descent's per-child overlap test: the
        children partition the node's range into contiguous closed intervals
        sharing the cached :func:`partition_bounds` floats, so the children a
        predicate overlaps are a contiguous position span found with two
        ``searchsorted`` passes — child ``c`` is overlapped iff
        ``lows <= bounds[c + 1]`` and ``bounds[c] <= highs`` (comparisons
        against the exact routing floats, boundary values included).  On the
        tree's edges the first/last child is open-ended (the scalar lookup's
        ``-inf``/``+inf`` effective ranges), which shows up here as clamping
        an otherwise-empty span onto the edge child so out-of-domain
        predicates still reach the edge leaves' outlier buffers.
        """
        self._routing_bounds()
        bounds = self._bounds_array
        first = np.searchsorted(bounds[1:], lows, side="left")
        last = np.searchsorted(bounds[:-1], highs, side="right") - 1
        if left_edge:
            np.maximum(last, 0, out=last)
        if right_edge:
            np.minimum(first, len(self.children) - 1, out=first)
        return first, last

    @property
    def is_leaf(self) -> bool:
        return False

    def children_overlapping(self, target_range: KeyRange) -> list[TRSNode]:
        """Children whose ranges overlap ``target_range``."""
        return [child for child in self.children
                if child.key_range.overlaps(target_range)]

    def replace_child(self, old: TRSNode, new: TRSNode) -> None:
        """Swap ``old`` for ``new`` in the child list (used by reorganization)."""
        for position, child in enumerate(self.children):
            if child is old:
                self.children[position] = new
                new.parent = self
                return
        raise ValueError("node to replace is not a child of this internal node")

    def walk(self) -> Iterator[TRSNode]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"TRSInternalNode(range=[{self.key_range.low:.3g}, "
            f"{self.key_range.high:.3g}], children={len(self.children)})"
        )


def equal_width_subranges(key_range: KeyRange, fanout: int) -> list[KeyRange]:
    """Split ``key_range`` into ``fanout`` equal-width sub-ranges.

    The sub-ranges are treated as half-open internally (a value on a boundary
    belongs to the right-hand child) except that the last child also includes
    the range's upper bound, so the union always covers the parent exactly.
    Built from the same :func:`partition_bounds` floats that
    :func:`route_indices` compares against, so every routed in-range value
    lies inside its child's closed range — the containment the lookup's
    overlap-based descent relies on.
    """
    bounds = partition_bounds(key_range, fanout)
    return [KeyRange(bounds[i], bounds[i + 1]) for i in range(fanout)]
