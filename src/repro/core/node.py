"""TRS-Tree node types.

A TRS-Tree is a k-ary tree over the *target* column's value domain.  Internal
nodes only navigate: they split their range into ``node_fanout`` equal-width
sub-ranges, one per child.  Leaf nodes carry the actual data mapping: a fitted
:class:`~repro.core.regression.LinearModel` plus an
:class:`~repro.core.outliers.OutlierBuffer` for the tuples the model does not
cover.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.outliers import OutlierBuffer
from repro.core.regression import LinearModel
from repro.index.base import KeyRange
from repro.storage.identifiers import TupleId
from repro.storage.memory import DEFAULT_SIZE_MODEL, SizeModel


class TRSNode:
    """Common state of leaf and internal TRS-Tree nodes."""

    __slots__ = ("key_range", "height", "parent")

    def __init__(self, key_range: KeyRange, height: int,
                 parent: "TRSInternalNode | None" = None) -> None:
        self.key_range = key_range
        self.height = height
        self.parent = parent

    @property
    def is_leaf(self) -> bool:
        """Whether the node is a leaf."""
        raise NotImplementedError

    def walk(self) -> Iterator["TRSNode"]:
        """Depth-first iteration over the subtree rooted at this node."""
        raise NotImplementedError


class TRSLeafNode(TRSNode):
    """A leaf: linear model + outlier buffer over a target sub-range.

    Attributes:
        model: The fitted linear mapping from target to host values.
        outliers: Tuples not covered by ``model``.
        num_covered: Number of tuples in the leaf's range at (re)build time.
        num_inserted: Tuples inserted into the range since the last rebuild.
        num_deleted: Tuples deleted from the range since the last rebuild.
    """

    __slots__ = ("model", "outliers", "num_covered", "num_inserted", "num_deleted")

    def __init__(self, key_range: KeyRange, height: int, model: LinearModel,
                 size_model: SizeModel = DEFAULT_SIZE_MODEL,
                 parent: "TRSInternalNode | None" = None) -> None:
        super().__init__(key_range, height, parent)
        self.model = model
        self.outliers = OutlierBuffer(size_model)
        self.num_covered = 0
        self.num_inserted = 0
        self.num_deleted = 0

    @property
    def is_leaf(self) -> bool:
        return True

    @property
    def population(self) -> int:
        """Best estimate of the number of live tuples in the leaf's range."""
        return max(0, self.num_covered + self.num_inserted - self.num_deleted)

    def get_host_range(self, target_range: KeyRange) -> KeyRange:
        """Host-column range predicted for ``target_range`` (clipped to the leaf)."""
        return self.model.host_range(target_range)

    def covers(self, target_value: float, host_value: float) -> bool:
        """Whether the model's confidence band covers ``(target, host)``."""
        return self.model.covers(target_value, host_value)

    def covers_many(self, target_values, host_values):
        """Vectorised :meth:`covers` over aligned value arrays."""
        return self.model.covers_many(target_values, host_values)

    def add_outlier(self, target_value: float, tid: TupleId) -> None:
        """Store a tuple the model cannot cover."""
        self.outliers.add(target_value, tid)

    def outlier_ratio(self) -> float:
        """Current ratio of outliers to tuples in the leaf's range."""
        population = self.population
        if population <= 0:
            return 0.0
        return len(self.outliers) / population

    def deleted_ratio(self) -> float:
        """Ratio of deletions since the last rebuild to the build population."""
        if self.num_covered <= 0:
            return 0.0
        return self.num_deleted / self.num_covered

    def walk(self) -> Iterator[TRSNode]:
        yield self

    def __repr__(self) -> str:
        return (
            f"TRSLeafNode(range=[{self.key_range.low:.3g}, {self.key_range.high:.3g}], "
            f"beta={self.model.beta:.3g}, outliers={len(self.outliers)})"
        )


class TRSInternalNode(TRSNode):
    """An internal node routing lookups to its equal-width children."""

    __slots__ = ("children",)

    def __init__(self, key_range: KeyRange, height: int,
                 parent: "TRSInternalNode | None" = None) -> None:
        super().__init__(key_range, height, parent)
        self.children: list[TRSNode] = []

    @property
    def is_leaf(self) -> bool:
        return False

    def child_for(self, target_value: float) -> TRSNode:
        """The child whose range contains ``target_value``.

        Values outside the node's range are clamped to the first/last child so
        that inserts of values beyond the originally observed domain still
        land somewhere sensible (they become outliers of the edge leaf).
        """
        if not self.children:
            raise ValueError("internal node has no children")
        fanout = len(self.children)
        width = self.key_range.width
        if width <= 0:
            return self.children[0]
        offset = (target_value - self.key_range.low) / width
        index = int(offset * fanout)
        index = min(max(index, 0), fanout - 1)
        return self.children[index]

    def children_overlapping(self, target_range: KeyRange) -> list[TRSNode]:
        """Children whose ranges overlap ``target_range``."""
        return [child for child in self.children
                if child.key_range.overlaps(target_range)]

    def replace_child(self, old: TRSNode, new: TRSNode) -> None:
        """Swap ``old`` for ``new`` in the child list (used by reorganization)."""
        for position, child in enumerate(self.children):
            if child is old:
                self.children[position] = new
                new.parent = self
                return
        raise ValueError("node to replace is not a child of this internal node")

    def walk(self) -> Iterator[TRSNode]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"TRSInternalNode(range=[{self.key_range.low:.3g}, "
            f"{self.key_range.high:.3g}], children={len(self.children)})"
        )


def equal_width_subranges(key_range: KeyRange, fanout: int) -> list[KeyRange]:
    """Split ``key_range`` into ``fanout`` equal-width sub-ranges.

    The sub-ranges are treated as half-open internally (a value on a boundary
    belongs to the right-hand child) except that the last child also includes
    the range's upper bound, so the union always covers the parent exactly.
    """
    width = key_range.width / fanout
    bounds = [key_range.low + i * width for i in range(fanout)] + [key_range.high]
    return [KeyRange(bounds[i], bounds[i + 1]) for i in range(fanout)]
