"""Hermit core: the TRS-Tree and the Hermit secondary-indexing mechanism."""

from repro.core.config import DEFAULT_CONFIG, TRSTreeConfig
from repro.core.hermit import HermitIndex, HermitLookupResult, LookupBreakdown
from repro.core.node import TRSInternalNode, TRSLeafNode, TRSNode
from repro.core.outliers import OutlierBuffer
from repro.core.regression import (
    LeafModel,
    LinearModel,
    LogLinearModel,
    OutlierOnlyModel,
    PiecewiseLinearModel,
    epsilon_for_error_bound,
    fit_leaf_model,
    fit_linear,
    select_leaf_model,
)
from repro.core.reorganize import BackgroundReorganizer, ReorganizationStats
from repro.core.trs_tree import TRSLookupResult, TRSTree

__all__ = [
    "BackgroundReorganizer",
    "DEFAULT_CONFIG",
    "HermitIndex",
    "HermitLookupResult",
    "LeafModel",
    "LinearModel",
    "LogLinearModel",
    "LookupBreakdown",
    "OutlierBuffer",
    "OutlierOnlyModel",
    "PiecewiseLinearModel",
    "ReorganizationStats",
    "TRSInternalNode",
    "TRSLeafNode",
    "TRSLookupResult",
    "TRSNode",
    "TRSTree",
    "TRSTreeConfig",
    "epsilon_for_error_bound",
    "fit_leaf_model",
    "fit_linear",
    "select_leaf_model",
]
