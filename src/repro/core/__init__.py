"""Hermit core: the TRS-Tree and the Hermit secondary-indexing mechanism."""

from repro.core.config import DEFAULT_CONFIG, TRSTreeConfig
from repro.core.hermit import HermitIndex, HermitLookupResult, LookupBreakdown
from repro.core.node import TRSInternalNode, TRSLeafNode, TRSNode
from repro.core.outliers import OutlierBuffer
from repro.core.regression import (
    LinearModel,
    epsilon_for_error_bound,
    fit_leaf_model,
    fit_linear,
)
from repro.core.reorganize import BackgroundReorganizer, ReorganizationStats
from repro.core.trs_tree import TRSLookupResult, TRSTree

__all__ = [
    "BackgroundReorganizer",
    "DEFAULT_CONFIG",
    "HermitIndex",
    "HermitLookupResult",
    "LinearModel",
    "LookupBreakdown",
    "OutlierBuffer",
    "ReorganizationStats",
    "TRSInternalNode",
    "TRSLeafNode",
    "TRSLookupResult",
    "TRSNode",
    "TRSTree",
    "TRSTreeConfig",
    "epsilon_for_error_bound",
    "fit_leaf_model",
    "fit_linear",
]
