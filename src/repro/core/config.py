"""Configuration of the TRS-Tree.

The paper (Section 4.5) exposes four user-facing parameters, reproduced here
with the same names and the same defaults used throughout its evaluation:
``node_fanout=8``, ``max_height=10``, ``outlier_ratio=0.1``, ``error_bound=2``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TRSTreeConfig:
    """User-defined parameters of a TRS-Tree.

    Attributes:
        node_fanout: Number of equal-width children a node splits into when
            its linear model cannot cover enough of its tuples.
        max_height: Maximum depth of the tree (the root is at height 1).  At
            the maximum height a node keeps its model and absorbs all
            non-covered tuples into its outlier buffer instead of splitting.
        outlier_ratio: A node's linear model is rejected (and the node split)
            when more than ``outlier_ratio`` of its tuples fall outside the
            model's confidence band.
        error_bound: Expected number of host-column values covered by the
            range returned for a *point* query; controls the confidence
            interval epsilon of every leaf (see
            :func:`repro.core.regression.epsilon_for_error_bound`).
        max_fp_ratio: Candidate-count-aware false-positive budget.  At build
            time each prospective leaf estimates the false-positive
            candidates its band drags in — band width x the leaf's own
            host-value density, so a leaf-spanning probe picks up
            ``estimated_fp = 2 * epsilon * covered / host_span`` extra
            candidates (see
            :func:`repro.core.regression.estimate_leaf_false_positives`).
            The leaf splits when ``estimated_fp / covered`` exceeds this
            ratio even if the plain outlier ratio passes; a leaf that
            exceeds it but cannot split (too few tuples, or at
            ``max_height``) is demoted to an exact outlier-only leaf
            instead of keeping a band that floods the host index.  The same
            budget bounds how far a noise-floor leaf's band may widen past
            the error-bound width (see
            :func:`repro.core.regression.select_leaf_model`).  ``inf``
            effectively disables the criterion (the pre-adaptive
            behaviour).
        sample_fraction: Optional sampling rate for the construction-time
            outlier pre-estimation optimisation (Appendix D.2).  ``None``
            disables sampling; ``0.05`` reproduces the paper's default of 5%.
        min_split_size: Nodes covering fewer tuples than this are never split
            (splitting a handful of tuples only adds structure overhead).
    """

    node_fanout: int = 8
    max_height: int = 10
    outlier_ratio: float = 0.1
    error_bound: float = 2.0
    max_fp_ratio: float = 0.5
    sample_fraction: float | None = None
    min_split_size: int = 32

    def __post_init__(self) -> None:
        if self.node_fanout < 2:
            raise ConfigurationError("node_fanout must be at least 2")
        if self.max_height < 1:
            raise ConfigurationError("max_height must be at least 1")
        if not (0.0 <= self.outlier_ratio <= 1.0):
            raise ConfigurationError("outlier_ratio must be in [0, 1]")
        if self.error_bound < 0:
            raise ConfigurationError("error_bound must be non-negative")
        if self.max_fp_ratio <= 0:
            raise ConfigurationError("max_fp_ratio must be positive")
        if self.sample_fraction is not None and not (0.0 < self.sample_fraction <= 1.0):
            raise ConfigurationError("sample_fraction must be in (0, 1]")
        if self.min_split_size < 2:
            raise ConfigurationError("min_split_size must be at least 2")


DEFAULT_CONFIG = TRSTreeConfig()
