"""Linear-regression machinery used by TRS-Tree leaf nodes.

Each leaf models the host column ``N`` as an approximate linear function of
the target column ``M`` over the leaf's sub-range ``r``:

    n = beta * m + alpha +/- epsilon

``beta`` and ``alpha`` come from a one-pass ordinary-least-squares fit
(Section 4.1); ``epsilon`` is derived from the user's ``error_bound`` so that a
point probe on ``M`` is expected to cover ``error_bound`` host values when the
host values are uniformly distributed (Section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.index.base import KeyRange


@dataclass(frozen=True)
class LinearModel:
    """A fitted leaf model ``n = beta * m + alpha +/- epsilon``."""

    beta: float
    alpha: float
    epsilon: float

    def predict(self, m: float) -> float:
        """Predicted host value for target value ``m``."""
        return self.beta * m + self.alpha

    def covers(self, m: float, n: float) -> bool:
        """Whether ``(m, n)`` lies inside the confidence band."""
        return abs(n - self.predict(m)) <= self.epsilon

    def covers_many(self, m: np.ndarray, n: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`covers`."""
        return np.abs(n - (self.beta * m + self.alpha)) <= self.epsilon

    def host_range(self, target_range: KeyRange) -> KeyRange:
        """Host-column range covering all predictions over ``target_range``.

        Handles both slope signs: for a negative slope the predicted endpoints
        swap, exactly as Algorithm 2 describes.
        """
        lo = self.predict(target_range.low)
        hi = self.predict(target_range.high)
        if lo > hi:
            lo, hi = hi, lo
        return KeyRange(lo - self.epsilon, hi + self.epsilon)


def fit_linear(m: np.ndarray, n: np.ndarray) -> tuple[float, float]:
    """One-pass OLS fit of ``n ~ beta * m + alpha``.

    Uses the closed-form simple-linear-regression solution the paper quotes:
    ``beta = cov(m, n) / var(m)`` and ``alpha = mean(n) - beta * mean(m)``.
    Degenerate inputs (fewer than two points, or zero variance in ``m``) fall
    back to a constant model ``beta = 0, alpha = mean(n)``.

    Returns:
        ``(beta, alpha)``.
    """
    if len(m) == 0:
        return 0.0, 0.0
    if len(m) == 1:
        return 0.0, float(n[0])
    m = np.asarray(m, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    m_mean = float(m.mean())
    n_mean = float(n.mean())
    m_centered = m - m_mean
    variance = float(np.dot(m_centered, m_centered))
    if variance == 0.0:
        return 0.0, n_mean
    covariance = float(np.dot(m_centered, n - n_mean))
    beta = covariance / variance
    alpha = n_mean - beta * m_mean
    return beta, alpha


def epsilon_for_error_bound(beta: float, target_range: KeyRange, num_tuples: int,
                            error_bound: float) -> float:
    """Derive the confidence interval epsilon from ``error_bound``.

    Section 4.5: assuming uniformly distributed host values, a point query on
    the target column returns a host range of width ``2 * epsilon`` which is
    expected to cover ``2 * epsilon / (beta * (ub - lb)) * n`` host values.
    Setting that expectation equal to ``error_bound`` gives

        epsilon = beta * (ub - lb) * error_bound / (2 * n)

    Args:
        beta: Fitted slope (its absolute value is used).
        target_range: The leaf's sub-range ``r`` on the target column.
        num_tuples: Number of tuples covered by the leaf.
        error_bound: The user-defined expected false-positive count.

    Returns:
        A non-negative epsilon.  A zero slope or an empty leaf yields zero,
        which makes the model cover only exact matches — every other tuple
        becomes an outlier, matching the paper's description of the
        ``error_bound = 0`` extreme.
    """
    if num_tuples <= 0:
        return 0.0
    width = target_range.width
    return abs(beta) * width * error_bound / (2.0 * num_tuples)


def fit_linear_trimmed(m: np.ndarray, n: np.ndarray, trim_fraction: float,
                       iterations: int = 2) -> tuple[float, float]:
    """OLS fit that is robust to a small fraction of gross outliers.

    The confidence band derived from ``error_bound`` is extremely tight, so a
    plain OLS fit dragged by even 1% of large-magnitude noise would mark
    *every* clean tuple as an outlier and force needless splits.  The paper's
    evaluation (Figures 16-18, 27-30) shows the opposite behaviour — injected
    noise (up to 10%) lands in the outlier buffers while the model stays
    locked to the clean correlation — which requires the fit itself to ignore
    the noise.  We achieve that with an iterated trimmed fit: fit, drop the
    ``trim_fraction`` largest absolute residuals, refit, and repeat.  The
    second round matters when the noise fraction is close to the trim
    fraction: after the first refit the noise residuals are unambiguous and
    the second trim removes their remaining influence.  (Documented as a
    reproduction note in DESIGN.md / EXPERIMENTS.md.)

    Args:
        m: Target values.
        n: Host values.
        trim_fraction: Fraction of points (the largest residuals) excluded
            at each refit; typically the TRS-Tree ``outlier_ratio``.
        iterations: Number of trim-and-refit rounds.

    Returns:
        ``(beta, alpha)``.
    """
    beta, alpha = fit_linear(m, n)
    if trim_fraction <= 0.0 or len(m) < 8:
        return beta, alpha
    m = np.asarray(m, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    for _ in range(max(1, iterations)):
        residuals = np.abs(n - (beta * m + alpha))
        cutoff = np.quantile(residuals, 1.0 - trim_fraction)
        keep = residuals <= cutoff
        if keep.sum() < 2:
            break
        beta, alpha = fit_linear(m[keep], n[keep])
        if keep.all():
            break
    return beta, alpha


def fit_leaf_model(m: np.ndarray, n: np.ndarray, target_range: KeyRange,
                   error_bound: float,
                   trim_fraction: float = 0.0) -> LinearModel:
    """Fit the full leaf model (slope, intercept and epsilon) in one call.

    Args:
        m: Target values covered by the leaf.
        n: Host values aligned with ``m``.
        target_range: The leaf's sub-range on the target column.
        error_bound: User-defined expected false-positive count per point probe.
        trim_fraction: Robustness trim applied to the fit (0 disables).
    """
    if trim_fraction > 0.0:
        beta, alpha = fit_linear_trimmed(m, n, trim_fraction)
    else:
        beta, alpha = fit_linear(m, n)
    epsilon = epsilon_for_error_bound(beta, target_range, len(m), error_bound)
    return LinearModel(beta=beta, alpha=alpha, epsilon=epsilon)
