"""Leaf-model machinery used by TRS-Tree leaf nodes.

Each leaf models the host column ``N`` as an approximate function of the
target column ``M`` over the leaf's sub-range ``r`` with a constant-width
confidence band::

    n = f(m) +/- epsilon

The paper's model (Section 4.1) is linear, ``f(m) = beta * m + alpha``, with
``beta``/``alpha`` from a one-pass ordinary-least-squares fit and ``epsilon``
derived from the user's ``error_bound`` (Section 4.5).  On non-linear
correlations (the Sensor workload's power-law responses) a fixed linear band
either misses most tuples or, worse, balloons ``epsilon`` until a single leaf
probe drags in a large slice of the host domain as false positives.  This
module therefore supports *adaptive* leaf modeling: every leaf fits the
linear model **and** a log-linear model (``n ~ beta * log m + alpha``) **and**
a small piecewise-linear model, and keeps whichever needs the smallest band
to cover the same fraction of its tuples (equal-coverage band-area
minimisation).  All models satisfy the :class:`LeafModel` protocol, so the
tree, the insert/lookup paths and Hermit's false-positive accounting stay
model-agnostic.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.index.base import KeyRange


@runtime_checkable
class LeafModel(Protocol):
    """The surface every TRS-Tree leaf model exposes.

    A leaf model is a fitted mapping from target values to host values plus a
    constant confidence half-width ``epsilon``.  The tree only ever talks to
    this protocol — concrete families (linear, log-linear, piecewise-linear,
    outlier-only) are interchangeable.
    """

    epsilon: float

    def predict(self, m: float) -> float:
        """Predicted host value for target value ``m``."""
        ...

    def covers(self, m: float, n: float) -> bool:
        """Whether ``(m, n)`` lies inside the confidence band."""
        ...

    def covers_many(self, m: np.ndarray, n: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`covers`."""
        ...

    def host_range(self, target_range: KeyRange) -> KeyRange:
        """Host-column range covering all predictions over ``target_range``."""
        ...

    def host_range_many(self, lows: np.ndarray,
                        highs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`host_range` over aligned endpoint arrays."""
        ...


@dataclass(frozen=True)
class LinearModel:
    """A fitted leaf model ``n = beta * m + alpha +/- epsilon``."""

    beta: float
    alpha: float
    epsilon: float

    def predict(self, m: float) -> float:
        """Predicted host value for target value ``m``."""
        return self.beta * m + self.alpha

    def covers(self, m: float, n: float) -> bool:
        """Whether ``(m, n)`` lies inside the confidence band."""
        return abs(n - self.predict(m)) <= self.epsilon

    def covers_many(self, m: np.ndarray, n: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`covers`."""
        return np.abs(n - (self.beta * m + self.alpha)) <= self.epsilon

    def host_range(self, target_range: KeyRange) -> KeyRange:
        """Host-column range covering all predictions over ``target_range``.

        Handles both slope signs: for a negative slope the predicted endpoints
        swap, exactly as Algorithm 2 describes.
        """
        lo = self.predict(target_range.low)
        hi = self.predict(target_range.high)
        if lo > hi:
            lo, hi = hi, lo
        return band_range(lo, hi, self.epsilon)

    def host_range_many(self, lows: np.ndarray,
                        highs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`host_range`: one fused pass over a query batch.

        Same float expressions as the scalar path (``beta * m + alpha``,
        then :func:`band_range_many`), so the batched translation emits
        bitwise-identical host ranges.
        """
        at_low = self.beta * lows + self.alpha
        at_high = self.beta * highs + self.alpha
        return band_range_many(np.minimum(at_low, at_high),
                               np.maximum(at_low, at_high), self.epsilon)


@dataclass(frozen=True)
class LogLinearModel:
    """A leaf model ``n = beta * log(1 + m - shift) + alpha +/- epsilon``.

    ``shift`` anchors the logarithm at the leaf's lower bound so the feature
    is well-defined over the whole sub-range regardless of the target
    domain's sign; values below ``shift`` (out-of-domain inserts routed into
    an edge leaf) are clamped to the anchor, which makes the extrapolated
    prediction constant there — the same "stay sane outside the built
    domain" behaviour the linear model gets for free.
    """

    beta: float
    alpha: float
    epsilon: float
    shift: float

    def _feature(self, m: float) -> float:
        # Same ufunc as the vectorised path: math.log1p and np.log1p can
        # disagree by an ulp, which beta amplifies enough to flip a
        # band-edge covers() decision between the scalar and batched paths.
        return float(np.log1p(max(m - self.shift, 0.0)))

    def predict(self, m: float) -> float:
        """Predicted host value for target value ``m``."""
        return self.beta * self._feature(m) + self.alpha

    def covers(self, m: float, n: float) -> bool:
        """Whether ``(m, n)`` lies inside the confidence band."""
        return abs(n - self.predict(m)) <= self.epsilon

    def covers_many(self, m: np.ndarray, n: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`covers`."""
        features = log_feature(np.asarray(m, dtype=np.float64), self.shift)
        return np.abs(n - (self.beta * features + self.alpha)) <= self.epsilon

    def host_range(self, target_range: KeyRange) -> KeyRange:
        """Host-column range covering all predictions over ``target_range``.

        The model is monotone in ``m`` (the log feature is nondecreasing), so
        the extremes are at the range endpoints for either sign of ``beta``.
        """
        lo = self.predict(target_range.low)
        hi = self.predict(target_range.high)
        if lo > hi:
            lo, hi = hi, lo
        return band_range(lo, hi, self.epsilon)

    def host_range_many(self, lows: np.ndarray,
                        highs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`host_range` (monotone: extremes at the endpoints)."""
        at_low = self.beta * log_feature(lows, self.shift) + self.alpha
        at_high = self.beta * log_feature(highs, self.shift) + self.alpha
        return band_range_many(np.minimum(at_low, at_high),
                               np.maximum(at_low, at_high), self.epsilon)


@dataclass(frozen=True)
class PiecewiseLinearModel:
    """An equal-width piecewise-linear leaf model with one shared band.

    The leaf's target sub-range is split into ``len(betas)`` equal-width
    segments, each carrying its own OLS line; one ``epsilon`` bounds the band
    of every segment so the band *area* stays directly comparable with the
    single-line families.  The first and last segments extrapolate beyond the
    fitted range, mirroring the edge behaviour of the other models.
    """

    bounds: tuple[float, ...]
    betas: tuple[float, ...]
    alphas: tuple[float, ...]
    epsilon: float

    @property
    def num_segments(self) -> int:
        """Number of linear segments."""
        return len(self.betas)

    def _segment(self, m: float) -> int:
        # Comparisons against the stored bounds — the same partition the
        # fitting step used (piecewise_segment_indices).  A boundary value
        # must be scored by the segment it was fitted into, or coverage
        # drifts off the band quantile by a tuple and knife-edge split
        # decisions flip; a boundary value belongs to the right-hand
        # segment, like the tree's child routing.
        index = int(np.searchsorted(self.bounds[1:-1], m, side="right"))
        return min(index, self.num_segments - 1)

    def _segments_many(self, m: np.ndarray) -> np.ndarray:
        return piecewise_segment_indices(m, self.bounds)

    def predict(self, m: float) -> float:
        """Predicted host value for target value ``m``."""
        segment = self._segment(m)
        return self.betas[segment] * m + self.alphas[segment]

    def covers(self, m: float, n: float) -> bool:
        """Whether ``(m, n)`` lies inside the confidence band."""
        return abs(n - self.predict(m)) <= self.epsilon

    def covers_many(self, m: np.ndarray, n: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`covers`."""
        m = np.asarray(m, dtype=np.float64)
        segments = self._segments_many(m)
        betas = np.asarray(self.betas)[segments]
        alphas = np.asarray(self.alphas)[segments]
        return np.abs(n - (betas * m + alphas)) <= self.epsilon

    def host_range(self, target_range: KeyRange) -> KeyRange:
        """Host-column range covering all predictions over ``target_range``.

        Each segment is linear, so its extremes over the clipped overlap are
        at the overlap endpoints; the answer is the min/max over every
        overlapped segment, padded by ``epsilon``.  Independently fitted
        segments may be discontinuous at the boundaries — evaluating both
        sides of every interior boundary keeps the range a superset of all
        predictions.
        """
        first = self._segment(target_range.low)
        last = self._segment(target_range.high)
        lo = math.inf
        hi = -math.inf
        for segment in range(first, last + 1):
            seg_lo = target_range.low if segment == first \
                else self.bounds[segment]
            seg_hi = target_range.high if segment == last \
                else self.bounds[segment + 1]
            for m in (seg_lo, seg_hi):
                predicted = self.betas[segment] * m + self.alphas[segment]
                lo = min(lo, predicted)
                hi = max(hi, predicted)
        return band_range(lo, hi, self.epsilon)

    def host_range_many(self, lows: np.ndarray,
                        highs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`host_range` over aligned endpoint arrays.

        The scalar walk evaluates each overlapped segment at its clipped
        endpoints; those evaluation points are (a) the query endpoints under
        their own segments and (b) both sides of every interior boundary the
        query spans.  The boundary predictions are query-independent, so the
        batch path precomputes them once and folds each one in with a masked
        min/max — the per-query loop over segments disappears and only the
        (at most ``num_segments - 1``) boundary passes remain.
        """
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        first = self._segments_many(lows)
        last = self._segments_many(highs)
        betas = np.asarray(self.betas)
        alphas = np.asarray(self.alphas)
        at_low = betas[first] * lows + alphas[first]
        at_high = betas[last] * highs + alphas[last]
        lo = np.minimum(at_low, at_high)
        hi = np.maximum(at_low, at_high)
        for boundary in range(1, self.num_segments):
            spanned = (first < boundary) & (boundary <= last)
            if not spanned.any():
                continue
            value = self.bounds[boundary]
            left = self.betas[boundary - 1] * value + self.alphas[boundary - 1]
            right = self.betas[boundary] * value + self.alphas[boundary]
            lo = np.where(spanned, np.minimum(lo, min(left, right)), lo)
            hi = np.where(spanned, np.maximum(hi, max(left, right)), hi)
        return band_range_many(lo, hi, self.epsilon)


@dataclass(frozen=True)
class OutlierOnlyModel:
    """A degenerate model covering nothing: the leaf stores tuples exactly.

    Chosen when even the best candidate band would drag in more estimated
    false positives than ``max_fp_ratio`` allows *and* the node cannot split
    (too few tuples, or at ``max_height``).  Every tuple lands in the leaf's
    outlier buffer, lookups answer from the buffer alone, and the leaf emits
    no host range at all — the exact-but-buffered extreme the paper
    describes for ``error_bound = 0``.
    """

    epsilon: float = 0.0

    def predict(self, m: float) -> float:
        """No prediction: the band is empty."""
        return 0.0

    def covers(self, m: float, n: float) -> bool:
        """Never covers — every tuple is an outlier."""
        return False

    def covers_many(self, m: np.ndarray, n: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`covers` (all False)."""
        return np.zeros(len(m), dtype=bool)

    def host_range(self, target_range: KeyRange) -> KeyRange:
        """Empty-band host range; never emitted (the leaf covers no tuple)."""
        return KeyRange(0.0, 0.0)

    def host_range_many(self, lows: np.ndarray,
                        highs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`host_range`; never emitted (covers no tuple)."""
        zeros = np.zeros(len(lows), dtype=np.float64)
        return zeros, zeros.copy()


def log_feature(m: np.ndarray, shift: float) -> np.ndarray:
    """The log-linear feature ``log(1 + max(m - shift, 0))``, vectorised."""
    return np.log1p(np.maximum(m - shift, 0.0))


def band_range(lo: float, hi: float, epsilon: float) -> KeyRange:
    """The host range ``[lo - epsilon, hi + epsilon]``, rounding-padded.

    ``covers`` tests ``|n - predict(m)| <= epsilon`` while ``host_range``
    computes ``predict(m) +/- epsilon`` — two float expressions of the same
    real interval.  A tuple sitting exactly on the band edge (which the
    equal-coverage band construction makes routine: the chosen epsilon *is*
    one of the residuals) can satisfy the first while ``predict + epsilon``
    rounds below its host value, silently dropping it from the probe; under
    cancellation (``predict ~ -128``, ``epsilon ~ 131``, edge ~ 3) the gap
    reaches many ulps *of the result*, so the pad must scale with the
    operands, not the result.  Validation removes the sliver of extra host
    values the padding could admit.
    """
    scale = max(abs(lo), abs(hi), epsilon)
    pad = 4.0 * np.finfo(np.float64).eps * scale
    return KeyRange(lo - epsilon - pad, hi + epsilon + pad)


def band_range_many(lo: np.ndarray, hi: np.ndarray,
                    epsilon: float) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`band_range` — identical float expressions per element,
    so the batched translation path emits bitwise-identical host bounds.
    """
    scale = np.maximum(np.maximum(np.abs(lo), np.abs(hi)), epsilon)
    pad = 4.0 * np.finfo(np.float64).eps * scale
    return lo - epsilon - pad, hi + epsilon + pad


def fit_linear(m: np.ndarray, n: np.ndarray) -> tuple[float, float]:
    """One-pass OLS fit of ``n ~ beta * m + alpha``.

    Uses the closed-form simple-linear-regression solution the paper quotes:
    ``beta = cov(m, n) / var(m)`` and ``alpha = mean(n) - beta * mean(m)``.
    Degenerate inputs (fewer than two points, or zero variance in ``m``) fall
    back to a constant model ``beta = 0, alpha = mean(n)``.

    Returns:
        ``(beta, alpha)``.
    """
    if len(m) == 0:
        return 0.0, 0.0
    if len(m) == 1:
        return 0.0, float(n[0])
    m = np.asarray(m, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    m_mean = float(m.mean())
    n_mean = float(n.mean())
    m_centered = m - m_mean
    variance = float(np.dot(m_centered, m_centered))
    if variance == 0.0:
        return 0.0, n_mean
    covariance = float(np.dot(m_centered, n - n_mean))
    beta = covariance / variance
    alpha = n_mean - beta * m_mean
    return beta, alpha


def epsilon_for_error_bound(beta: float, target_range: KeyRange, num_tuples: int,
                            error_bound: float) -> float:
    """Derive the confidence interval epsilon from ``error_bound``.

    Section 4.5: assuming uniformly distributed host values, a point query on
    the target column returns a host range of width ``2 * epsilon`` which is
    expected to cover ``2 * epsilon / (beta * (ub - lb)) * n`` host values.
    Setting that expectation equal to ``error_bound`` gives

        epsilon = beta * (ub - lb) * error_bound / (2 * n)

    Args:
        beta: Fitted slope (its absolute value is used).
        target_range: The leaf's sub-range ``r`` on the target column.
        num_tuples: Number of tuples covered by the leaf.
        error_bound: The user-defined expected false-positive count.

    Returns:
        A non-negative epsilon.  A zero slope or an empty leaf yields zero,
        which makes the model cover only exact matches — every other tuple
        becomes an outlier, matching the paper's description of the
        ``error_bound = 0`` extreme.
    """
    if num_tuples <= 0:
        return 0.0
    width = target_range.width
    return abs(beta) * width * error_bound / (2.0 * num_tuples)


def epsilon_for_host_span(host_span: float, num_tuples: int,
                          error_bound: float) -> float:
    """Generalise :func:`epsilon_for_error_bound` to non-linear models.

    For a linear model the predicted host span over the leaf is
    ``|beta| * (ub - lb)``, so the Section 4.5 derivation is really

        epsilon = host_span * error_bound / (2 * n)

    with the uniform-host-density assumption expressed through ``host_span``
    directly.  Any model family can therefore derive its band from the total
    variation of its predictions over the leaf's sub-range.
    """
    if num_tuples <= 0:
        return 0.0
    return abs(host_span) * error_bound / (2.0 * num_tuples)


def fit_linear_trimmed(m: np.ndarray, n: np.ndarray, trim_fraction: float,
                       iterations: int = 2) -> tuple[float, float]:
    """OLS fit that is robust to a small fraction of gross outliers.

    The confidence band derived from ``error_bound`` is extremely tight, so a
    plain OLS fit dragged by even 1% of large-magnitude noise would mark
    *every* clean tuple as an outlier and force needless splits.  The paper's
    evaluation (Figures 16-18, 27-30) shows the opposite behaviour — injected
    noise (up to 10%) lands in the outlier buffers while the model stays
    locked to the clean correlation — which requires the fit itself to ignore
    the noise.  We achieve that with an iterated trimmed fit: fit, drop the
    ``trim_fraction`` largest absolute residuals, refit, and repeat.  The
    second round matters when the noise fraction is close to the trim
    fraction: after the first refit the noise residuals are unambiguous and
    the second trim removes their remaining influence.  (Documented as a
    reproduction note in DESIGN.md / EXPERIMENTS.md.)

    Args:
        m: Target values.
        n: Host values.
        trim_fraction: Fraction of points (the largest residuals) excluded
            at each refit; typically the TRS-Tree ``outlier_ratio``.
        iterations: Number of trim-and-refit rounds.

    Returns:
        ``(beta, alpha)``.
    """
    beta, alpha = fit_linear(m, n)
    if trim_fraction <= 0.0 or len(m) < 8:
        return beta, alpha
    m = np.asarray(m, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    for _ in range(max(1, iterations)):
        residuals = np.abs(n - (beta * m + alpha))
        cutoff = np.quantile(residuals, 1.0 - trim_fraction)
        keep = residuals <= cutoff
        if keep.sum() < 2:
            break
        beta, alpha = fit_linear(m[keep], n[keep])
        if keep.all():
            break
    return beta, alpha


def fit_leaf_model(m: np.ndarray, n: np.ndarray, target_range: KeyRange,
                   error_bound: float,
                   trim_fraction: float = 0.0) -> LinearModel:
    """Fit the paper's linear leaf model (slope, intercept, epsilon).

    This is the fixed-family fitter the original TRS-Tree uses; the adaptive
    build path goes through :func:`select_leaf_model` instead.

    Args:
        m: Target values covered by the leaf.
        n: Host values aligned with ``m``.
        target_range: The leaf's sub-range on the target column.
        error_bound: User-defined expected false-positive count per point probe.
        trim_fraction: Robustness trim applied to the fit (0 disables).
    """
    if trim_fraction > 0.0:
        beta, alpha = fit_linear_trimmed(m, n, trim_fraction)
    else:
        beta, alpha = fit_linear(m, n)
    epsilon = epsilon_for_error_bound(beta, target_range, len(m), error_bound)
    return LinearModel(beta=beta, alpha=alpha, epsilon=epsilon)


# ----------------------------------------------------------- model selection

# Segment counts tried by the piecewise-linear candidate: 4 segments when the
# leaf holds enough tuples to fit them stably, 2 otherwise.
PIECEWISE_MANY_SEGMENTS = 4
PIECEWISE_FEW_SEGMENTS = 2
PIECEWISE_MIN_TUPLES_PER_SEGMENT = 16

# Splitting is judged futile when the piecewise candidate — a dry run of the
# sub-ranges a split would create — cannot shrink the linear band below this
# fraction: residuals that survive segmentation are a noise floor, not
# curvature.
SPLIT_GAIN_THRESHOLD = 0.5

# A noise-floor band may widen only while its leaf-spanning candidate drag
# stays within this fraction of the max_fp_ratio split budget.  The two
# budgets answer different questions: max_fp_ratio is the pathology net that
# forces a split/demotion, while widening is a *voluntary* trade (fewer
# leaves and buffer entries for a few extra candidates) that is only worth
# taking when the band is thin relative to the leaf — measurement jitter at
# a per-mille of the host span, not injected gross noise at a third of it.
WIDEN_BUDGET_FRACTION = 0.1


@dataclass(frozen=True)
class LeafModelFit:
    """One candidate model plus the statistics the tree's build step needs.

    Attributes:
        model: The fitted model (band epsilon already derived from the
            error bound).
        kind: Family label (``"linear"``, ``"log"``, ``"piecewise"``).
        band_epsilon: Half-width the band would need to cover the coverage
            target — the equal-coverage band-area score (smaller is better;
            the models share the leaf width, so area is proportional to it).
    """

    model: LeafModel
    kind: str
    band_epsilon: float


def _coverage_epsilon(residuals: np.ndarray, coverage: float) -> float:
    """Band half-width needed to cover ``coverage`` of the tuples.

    Uses the ``higher`` quantile method (an actual order statistic) so that
    at least ``ceil(coverage * n)`` residuals are ``<=`` the returned value
    — the interpolated default can land half a tuple short of the coverage
    target, which is exactly enough to flip a knife-edge outlier-ratio
    split decision.
    """
    if residuals.size == 0:
        return 0.0
    return float(np.quantile(residuals, min(max(coverage, 0.0), 1.0),
                             method="higher"))


def _piecewise_segments(num_tuples: int) -> int:
    if num_tuples >= (PIECEWISE_MANY_SEGMENTS
                      * PIECEWISE_MIN_TUPLES_PER_SEGMENT):
        return PIECEWISE_MANY_SEGMENTS
    return PIECEWISE_FEW_SEGMENTS


def piecewise_segment_indices(m: np.ndarray,
                              bounds: tuple[float, ...]) -> np.ndarray:
    """Segment index per value — comparisons against the segment bounds.

    The one partition rule shared by fitting, residual scoring and the
    model's own ``covers_many``: searchsorted over the interior bounds, a
    value on a bound belonging to the right-hand segment (mirroring the
    tree's child routing).  Values outside ``[bounds[0], bounds[-1]]``
    clamp to the edge segments, which extrapolate.
    """
    segments = len(bounds) - 1
    if segments <= 1 or bounds[-1] <= bounds[0]:
        return np.zeros(len(m), dtype=np.int64)
    return np.searchsorted(np.asarray(bounds[1:-1]), m,
                           side="right").astype(np.int64)


def _fit_piecewise(m: np.ndarray, n: np.ndarray, target_range: KeyRange,
                   trim_fraction: float,
                   segments: int) -> tuple[tuple, tuple, tuple, np.ndarray]:
    """Fit one trimmed OLS line per equal-width segment.

    Segments with fewer than two points inherit the whole-leaf line so their
    extrapolated predictions stay anchored to the data.

    Returns:
        ``(bounds, betas, alphas, indices)`` — ``indices`` is the segment
        assignment used for the fit, so callers score residuals on exactly
        the fitting partition instead of re-deriving it.
    """
    width = target_range.width
    bounds = tuple(
        target_range.low + width * position / segments
        for position in range(segments)
    ) + (target_range.high,)
    fallback_beta, fallback_alpha = fit_linear_trimmed(m, n, trim_fraction)
    indices = piecewise_segment_indices(m, bounds)
    betas: list[float] = []
    alphas: list[float] = []
    for segment in range(segments):
        mask = indices == segment
        if int(mask.sum()) >= 2:
            beta, alpha = fit_linear_trimmed(m[mask], n[mask], trim_fraction)
        else:
            beta, alpha = fallback_beta, fallback_alpha
        betas.append(beta)
        alphas.append(alpha)
    return bounds, tuple(betas), tuple(alphas), indices


def _predicted_span(model: LeafModel, target_range: KeyRange) -> float:
    """Total predicted host variation over the leaf (band-free)."""
    if isinstance(model, PiecewiseLinearModel):
        span = 0.0
        for segment in range(model.num_segments):
            lo = model.betas[segment] * model.bounds[segment] \
                + model.alphas[segment]
            hi = model.betas[segment] * model.bounds[segment + 1] \
                + model.alphas[segment]
            span += abs(hi - lo)
        return span
    return abs(model.predict(target_range.high)
               - model.predict(target_range.low))


def _robust_host_span(n: np.ndarray, trim_fraction: float) -> float:
    """Observed host span with the trim fraction of extreme values removed.

    Gross outliers (sensor glitches) would otherwise inflate the span —
    and therefore deflate the density the false-positive budget is priced
    against.
    """
    if n.size == 0:
        return 0.0
    if trim_fraction > 0.0 and n.size >= 8:
        lo, hi = np.quantile(n, [0.5 * trim_fraction, 1.0 - 0.5 * trim_fraction])
        return float(hi - lo)
    return float(n.max() - n.min())


def select_leaf_model(m: np.ndarray, n: np.ndarray, target_range: KeyRange,
                      error_bound: float, trim_fraction: float = 0.0,
                      max_fp_ratio: float | None = None) -> LeafModelFit:
    """Fit the candidate model families and keep the tightest band.

    Selection rule: every candidate is scored by the band half-width it would
    need to cover ``1 - trim_fraction`` of the leaf's tuples (its
    equal-coverage band area — the candidates share the leaf's width, so
    area is proportional to the half-width).  The winner's *actual* epsilon
    is then derived from the error bound via :func:`epsilon_for_host_span`,
    keeping the paper's expected-false-positive semantics per point probe.

    When the coverage band exceeds the error-bound band, the leaf's
    residuals are dominated by something the error-bound derivation cannot
    see — either curvature (splitting helps: narrower sub-ranges reduce it
    quadratically) or an irreducible noise floor (splitting is futile: every
    child inherits the same jitter and the tree only multiplies leaves).
    The two are told apart by the piecewise candidate, whose segments *are*
    a dry run of a split: when even the segmented fit cannot halve the
    linear band, the residuals are a floor no amount of splitting will
    reduce.  With ``max_fp_ratio`` set, such a floor-bound band *widens* to
    its coverage quantile — but only when the whole quantile fits the
    widening budget ``2 * epsilon / host_span <=
    WIDEN_BUDGET_FRACTION * max_fp_ratio`` (scale-free: band width x the
    leaf's own host density, per covered tuple).  The trade is
    all-or-nothing: a band capped short of its coverage quantile would pay
    extra false positives on every probe and still buffer the stragglers,
    so gross injected noise right at the coverage boundary keeps the tight
    error-bound band and outlier entries instead.  Curvature-bound leaves
    never widen; they miss their coverage target and split through the
    outlier-ratio criterion — exactly the case splitting can fix.

    The linear family short-circuits the alternatives when its error-bound
    band already meets the coverage target — on linearly correlated leaves
    (the Stock workload, Synthetic-Linear) this keeps the build cost of the
    adaptive path identical to the fixed-family path.

    Args:
        m: Target values covered by the leaf.
        n: Host values aligned with ``m``.
        target_range: The leaf's sub-range on the target column.
        error_bound: Expected false-positive count per point probe.
        trim_fraction: Outlier fraction the band is allowed to leave out;
            also the robustness trim of every fit.
        max_fp_ratio: Tolerated false-positive excess of a widened band,
            relative to ``error_bound``; ``None`` disables widening (the
            band always comes straight from the error bound).
    """
    m = np.asarray(m, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    coverage = 1.0 - max(trim_fraction, 0.0)

    beta, alpha = (fit_linear_trimmed(m, n, trim_fraction)
                   if trim_fraction > 0.0 else fit_linear(m, n))
    linear_residuals = (np.abs(n - (beta * m + alpha)) if len(m)
                        else np.zeros(0))
    linear_band = _coverage_epsilon(linear_residuals, coverage)
    linear_epsilon = epsilon_for_error_bound(beta, target_range, len(m),
                                             error_bound)
    linear = LeafModelFit(
        model=LinearModel(beta=beta, alpha=alpha, epsilon=linear_epsilon),
        kind="linear", band_epsilon=linear_band,
    )
    # Fast path: the error-bound band already covers the target fraction, or
    # the leaf is too small for the alternatives to fit anything stable.
    if len(m) < 8 or linear_band <= linear_epsilon:
        return linear

    candidates = [linear]

    shift = target_range.low
    features = log_feature(m, shift)
    log_beta, log_alpha = fit_linear_trimmed(features, n, trim_fraction)
    log_residuals = np.abs(n - (log_beta * features + log_alpha))
    log_band = _coverage_epsilon(log_residuals, coverage)
    log_model = LogLinearModel(beta=log_beta, alpha=log_alpha,
                               epsilon=0.0, shift=shift)
    candidates.append(LeafModelFit(model=log_model, kind="log",
                                   band_epsilon=log_band))

    segments = _piecewise_segments(len(m))
    bounds, betas, alphas, indices = _fit_piecewise(m, n, target_range,
                                                    trim_fraction, segments)
    piecewise_model = PiecewiseLinearModel(bounds=bounds, betas=betas,
                                           alphas=alphas, epsilon=0.0)
    piecewise_residuals = np.abs(
        n - (np.asarray(betas)[indices] * m + np.asarray(alphas)[indices])
    )
    piecewise_band = _coverage_epsilon(piecewise_residuals, coverage)
    candidates.append(LeafModelFit(model=piecewise_model, kind="piecewise",
                                   band_epsilon=piecewise_band))

    # Smallest equal-coverage band wins; list order breaks ties in favour of
    # the cheaper family (linear < log < piecewise).
    best = min(candidates, key=lambda fit: fit.band_epsilon)
    span = _predicted_span(best.model, target_range)
    epsilon = epsilon_for_host_span(span, len(m), error_bound)
    splitting_is_futile = piecewise_band >= SPLIT_GAIN_THRESHOLD * linear_band
    if (max_fp_ratio is not None and splitting_is_futile
            and best.band_epsilon > epsilon):
        host_span = _robust_host_span(n, trim_fraction)
        if host_span > 0.0:
            # Widen to the coverage quantile iff a leaf-spanning probe's
            # candidate drag stays within the widening budget:
            # 2 * eps / host_span <= WIDEN_BUDGET_FRACTION * max_fp_ratio.
            # All-or-nothing on purpose: when even the coverage quantile
            # blows the budget (injected gross noise right at the coverage
            # boundary), a budget-capped band would not reach the coverage
            # target anyway — it would pay the extra false positives on
            # every probe and still buffer the stragglers, so the tight
            # error-bound band plus outlier entries is strictly better.
            budget = 0.5 * WIDEN_BUDGET_FRACTION * max_fp_ratio * host_span
            if best.band_epsilon <= budget:
                epsilon = best.band_epsilon
    return LeafModelFit(model=dataclasses.replace(best.model, epsilon=epsilon),
                        kind=best.kind, band_epsilon=best.band_epsilon)


def estimate_leaf_false_positives(model: LeafModel,
                                  covered_hosts: np.ndarray) -> float:
    """Estimated false-positive candidates a leaf-spanning probe drags in.

    The band's host width exceeds the predictions by ``2 * epsilon``; with
    the leaf's own host-value density (covered tuples over their observed
    host span — no catalog round-trip needed at build time) the extra
    candidates a probe covering the whole leaf picks up are::

        estimated_fp = 2 * epsilon * num_covered / host_span

    The host span is floored at ``epsilon`` itself: a band wider than the
    covered hosts it serves (a glitch-dragged fit covering one or two
    tuples) prices at least its own width, which caps the estimate at
    ``2 * num_covered`` — decisively over any sane ``max_fp_ratio`` —
    instead of letting a degenerate zero span hide the damage.
    """
    num_covered = int(len(covered_hosts))
    if num_covered == 0 or model.epsilon <= 0.0:
        return 0.0
    host_span = float(covered_hosts.max() - covered_hosts.min())
    host_span = max(host_span, model.epsilon)
    return 2.0 * model.epsilon * num_covered / host_span
