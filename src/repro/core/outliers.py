"""Outlier buffers of TRS-Tree leaf nodes.

A leaf's linear model does not have to cover every tuple in its range; tuples
whose host value falls outside the confidence band are *outliers* and are kept
in a per-leaf hash table mapping the target-column value to the tuple
identifiers (Section 4.1).  During a lookup the buffer is probed with the
query range and the matching identifiers are returned directly, bypassing the
host index.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from itertools import chain
from typing import Iterator

import numpy as np

from repro.index.base import KeyRange, tid_items
from repro.storage.identifiers import TupleId
from repro.storage.memory import DEFAULT_SIZE_MODEL, SizeModel

# Scalar-path cost of one batched range probe in flat-view
# entry-equivalents (two bisects plus per-call Python overhead); drives
# the same amortisation accounting as the B+-tree's segmented probes.
_PROBE_COST = 8


class OutlierBuffer:
    """Hash table from target-column value to tuple identifiers.

    Point probes (inserts/deletes and point queries) go straight through the
    hash map; range probes use a sorted view of the keys so a lookup costs
    ``O(log k + matches)`` instead of scanning the whole buffer — without
    this, a leaf holding the injected noise of a large table would be scanned
    in full by every range query, which is not how the paper's numbers behave
    (Hermit's throughput is stable up to 10% noise, Figures 16 and 27).
    """

    def __init__(self, size_model: SizeModel = DEFAULT_SIZE_MODEL) -> None:
        self._size_model = size_model
        self._entries: dict[float, list[TupleId]] = defaultdict(list)
        self._sorted_keys: list[float] = []
        self._count = 0
        # Flat view for lookup_many, dropped on any write; the debt counter
        # defers the O(k) flatten until batch traffic has paid for it
        # (mirrors BPlusTree._use_flat_view — demoted leaves can hold a
        # large fraction of the table here, so a cold flatten is not free).
        self._flat_view: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._flat_debt = 0

    def add(self, target_value: float, tid: TupleId) -> None:
        """Record ``tid`` as an outlier with target value ``target_value``."""
        if target_value not in self._entries:
            bisect.insort(self._sorted_keys, target_value)
        self._entries[target_value].append(tid)
        self._count += 1
        self._flat_view = None

    def add_many(self, target_values, tids) -> None:
        """Batched :meth:`add`: group by value, extend each bucket once.

        The sorted key view is rebuilt with a single merge of two sorted
        runs instead of one ``insort`` (O(k) memmove) per new key, which is
        what keeps bulk inserts into noisy leaves linear.
        """
        values = np.asarray(target_values, dtype=np.float64)
        items = tid_items(tids)
        count = int(values.size)
        if count == 0:
            return
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        run_starts = np.concatenate(
            [[0], np.flatnonzero(np.diff(sorted_values)) + 1]
        )
        run_stops = np.concatenate([run_starts[1:], [count]])
        positions = order.tolist()
        new_keys: list[float] = []
        # repro: ignore[REP004] -- iterates distinct-key runs, not elements;
        # bucket dicts have no array form to extend in one pass
        for start, stop in zip(run_starts.tolist(), run_stops.tolist()):
            value = float(sorted_values[start])
            if value not in self._entries:
                new_keys.append(value)
            self._entries[value].extend(
                items[positions[index]] for index in range(start, stop)
            )
        if new_keys:
            # Both runs are sorted, so Timsort merges them in one pass.
            self._sorted_keys = sorted(self._sorted_keys + new_keys)
        self._count += count
        self._flat_view = None

    def remove(self, target_value: float, tid: TupleId) -> bool:
        """Remove ``tid`` from the bucket of ``target_value``.

        Returns:
            True if the pair was present and removed, False otherwise.  The
            paper's delete path simply "removes the corresponding entry if
            exists", so a miss is not an error.
        """
        tids = self._entries.get(target_value)
        if not tids or tid not in tids:
            return False
        tids.remove(tid)
        if not tids:
            del self._entries[target_value]
            position = bisect.bisect_left(self._sorted_keys, target_value)
            if (position < len(self._sorted_keys)
                    and self._sorted_keys[position] == target_value):
                self._sorted_keys.pop(position)
        self._count -= 1
        self._flat_view = None
        return True

    def lookup(self, target_range: KeyRange) -> list[TupleId]:
        """Tuple identifiers whose target value lies in ``target_range``.

        The matching buckets are concatenated in a single C-level pass, so
        the result is one flat list that callers (the vectorized Hermit
        lookup) can hand to ``np.asarray`` without a second copy.
        """
        start = bisect.bisect_left(self._sorted_keys, target_range.low)
        stop = bisect.bisect_right(self._sorted_keys, target_range.high)
        if start == stop:
            return []
        entries = self._entries
        return list(chain.from_iterable(
            entries[key] for key in self._sorted_keys[start:stop]
        ))

    def _flattened(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sorted keys, per-key tid offsets and flat tids, cached until a write.

        The flat view is what makes :meth:`lookup_many` a pure array pass:
        tids are concatenated bucket-by-bucket in key order — exactly the
        order :meth:`lookup` emits — so a batch of range probes reduces to
        two ``searchsorted`` calls and one gather.  Rebuilt lazily after any
        mutation; lookups between writes (the common read-heavy pattern)
        share one rebuild.
        """
        if self._flat_view is None:
            keys = np.asarray(self._sorted_keys, dtype=np.float64)
            counts = np.fromiter(
                (len(self._entries[key]) for key in self._sorted_keys),
                dtype=np.int64, count=len(self._sorted_keys),
            )
            offsets = np.zeros(counts.size + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            flat = list(chain.from_iterable(
                self._entries[key] for key in self._sorted_keys
            ))
            tids = np.asarray(flat) if flat else np.empty(0, dtype=np.int64)
            self._flat_view = (keys, offsets, tids)
        return self._flat_view

    def lookup_many(self, lows: np.ndarray, highs: np.ndarray,
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`lookup`: one segmented result for many ranges.

        Returns ``(tids, offsets)`` in the ``repro.segments`` layout — query
        ``i`` owns ``tids[offsets[i]:offsets[i + 1]]``, in the same key-major
        bucket order as the scalar path.  Small batches on a cold buffer
        fall back to per-range :meth:`lookup` walks and accumulate debt
        until the flatten pays for itself (see ``_flat_view``).
        """
        from repro.segments import run_indices

        count = int(np.asarray(lows).size)
        if (self._flat_view is None
                and self._flat_debt + _PROBE_COST * count < self._count):
            segments: list[list[TupleId]] = []
            offsets = np.zeros(count + 1, dtype=np.int64)
            total = 0
            # repro: ignore[REP004] -- documented scalar fallback while the
            # flat-view debt counter says a cold flatten would cost more
            for position, (low, high) in enumerate(
                    zip(np.asarray(lows).tolist(), np.asarray(highs).tolist())):
                flat = self.lookup(KeyRange(low, high))
                segments.append(flat)
                total += len(flat)
                offsets[position + 1] = total
            self._flat_debt += 2 * total + _PROBE_COST * count
            merged = list(chain.from_iterable(segments))
            tids = (np.asarray(merged) if merged
                    else np.empty(0, dtype=np.int64))
            return tids, offsets
        keys, key_offsets, tids = self._flattened()
        starts = np.searchsorted(keys, lows, side="left")
        stops = np.searchsorted(keys, highs, side="right")
        indices, offsets = run_indices(key_offsets[starts], key_offsets[stops])
        return tids[indices], offsets

    def lookup_point(self, target_value: float) -> list[TupleId]:
        """Tuple identifiers stored exactly under ``target_value``."""
        return list(self._entries.get(target_value, ()))

    def items(self) -> Iterator[tuple[float, TupleId]]:
        """Iterate all (target value, tid) pairs."""
        for value, tids in self._entries.items():
            for tid in tids:
                yield value, tid

    def __len__(self) -> int:
        return self._count

    def __contains__(self, target_value: float) -> bool:
        return target_value in self._entries

    def clear(self) -> None:
        """Drop all outliers."""
        self._entries.clear()
        self._sorted_keys.clear()
        self._count = 0
        self._flat_view = None

    def memory_bytes(self) -> int:
        """Analytic size in bytes."""
        return self._size_model.hash_table_bytes(self._count)
