"""Outlier buffers of TRS-Tree leaf nodes.

A leaf's linear model does not have to cover every tuple in its range; tuples
whose host value falls outside the confidence band are *outliers* and are kept
in a per-leaf hash table mapping the target-column value to the tuple
identifiers (Section 4.1).  During a lookup the buffer is probed with the
query range and the matching identifiers are returned directly, bypassing the
host index.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from itertools import chain
from typing import Iterator

import numpy as np

from repro.index.base import KeyRange, tid_items
from repro.storage.identifiers import TupleId
from repro.storage.memory import DEFAULT_SIZE_MODEL, SizeModel


class OutlierBuffer:
    """Hash table from target-column value to tuple identifiers.

    Point probes (inserts/deletes and point queries) go straight through the
    hash map; range probes use a sorted view of the keys so a lookup costs
    ``O(log k + matches)`` instead of scanning the whole buffer — without
    this, a leaf holding the injected noise of a large table would be scanned
    in full by every range query, which is not how the paper's numbers behave
    (Hermit's throughput is stable up to 10% noise, Figures 16 and 27).
    """

    def __init__(self, size_model: SizeModel = DEFAULT_SIZE_MODEL) -> None:
        self._size_model = size_model
        self._entries: dict[float, list[TupleId]] = defaultdict(list)
        self._sorted_keys: list[float] = []
        self._count = 0

    def add(self, target_value: float, tid: TupleId) -> None:
        """Record ``tid`` as an outlier with target value ``target_value``."""
        if target_value not in self._entries:
            bisect.insort(self._sorted_keys, target_value)
        self._entries[target_value].append(tid)
        self._count += 1

    def add_many(self, target_values, tids) -> None:
        """Batched :meth:`add`: group by value, extend each bucket once.

        The sorted key view is rebuilt with a single merge of two sorted
        runs instead of one ``insort`` (O(k) memmove) per new key, which is
        what keeps bulk inserts into noisy leaves linear.
        """
        values = np.asarray(target_values, dtype=np.float64)
        items = tid_items(tids)
        count = int(values.size)
        if count == 0:
            return
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        run_starts = np.concatenate(
            [[0], np.flatnonzero(np.diff(sorted_values)) + 1]
        )
        run_stops = np.concatenate([run_starts[1:], [count]])
        positions = order.tolist()
        new_keys: list[float] = []
        for start, stop in zip(run_starts.tolist(), run_stops.tolist()):
            value = float(sorted_values[start])
            if value not in self._entries:
                new_keys.append(value)
            self._entries[value].extend(
                items[positions[index]] for index in range(start, stop)
            )
        if new_keys:
            # Both runs are sorted, so Timsort merges them in one pass.
            self._sorted_keys = sorted(self._sorted_keys + new_keys)
        self._count += count

    def remove(self, target_value: float, tid: TupleId) -> bool:
        """Remove ``tid`` from the bucket of ``target_value``.

        Returns:
            True if the pair was present and removed, False otherwise.  The
            paper's delete path simply "removes the corresponding entry if
            exists", so a miss is not an error.
        """
        tids = self._entries.get(target_value)
        if not tids or tid not in tids:
            return False
        tids.remove(tid)
        if not tids:
            del self._entries[target_value]
            position = bisect.bisect_left(self._sorted_keys, target_value)
            if (position < len(self._sorted_keys)
                    and self._sorted_keys[position] == target_value):
                self._sorted_keys.pop(position)
        self._count -= 1
        return True

    def lookup(self, target_range: KeyRange) -> list[TupleId]:
        """Tuple identifiers whose target value lies in ``target_range``.

        The matching buckets are concatenated in a single C-level pass, so
        the result is one flat list that callers (the vectorized Hermit
        lookup) can hand to ``np.asarray`` without a second copy.
        """
        start = bisect.bisect_left(self._sorted_keys, target_range.low)
        stop = bisect.bisect_right(self._sorted_keys, target_range.high)
        if start == stop:
            return []
        entries = self._entries
        return list(chain.from_iterable(
            entries[key] for key in self._sorted_keys[start:stop]
        ))

    def lookup_point(self, target_value: float) -> list[TupleId]:
        """Tuple identifiers stored exactly under ``target_value``."""
        return list(self._entries.get(target_value, ()))

    def items(self) -> Iterator[tuple[float, TupleId]]:
        """Iterate all (target value, tid) pairs."""
        for value, tids in self._entries.items():
            for tid in tids:
                yield value, tid

    def __len__(self) -> int:
        return self._count

    def __contains__(self, target_value: float) -> bool:
        return target_value in self._entries

    def clear(self) -> None:
        """Drop all outliers."""
        self._entries.clear()
        self._sorted_keys.clear()
        self._count = 0

    def memory_bytes(self) -> int:
        """Analytic size in bytes."""
        return self._size_model.hash_table_bytes(self._count)
