"""The Hermit secondary-indexing mechanism.

Hermit answers queries on a *target* column without a complete index on it.
It combines (Section 5):

1. a :class:`~repro.core.trs_tree.TRSTree` that translates the target-column
   predicate into host-column ranges plus outlier tuple identifiers,
2. the pre-existing *host index* on the correlated column,
3. an optional *primary index* probe when the RDBMS uses logical pointers, and
4. a *base-table validation* step that removes false positives.

The lookup pipeline is array-native end to end: host-index probes return
numpy tid arrays (:meth:`~repro.index.base.Index.range_search_many_array`),
candidate dedup is ``np.unique``, logical pointers are resolved through one
batched primary-index probe (:meth:`~repro.index.base.Index.search_many`) and
base-table validation is a single fancy-index + boolean mask
(:meth:`~repro.storage.table.Table.filter_in_range`).  The original
object-at-a-time path is kept as :meth:`HermitIndex.lookup_range_scalar` —
it is the reference semantics for the equivalence property tests and the
"before" side of the hot-path benchmark.  :meth:`HermitIndex.lookup_range_many`
answers a whole predicate batch with amortised per-call overhead.

The class keeps a per-phase time breakdown for every lookup so the benchmark
harness can regenerate the breakdown figures (Figures 10, 14, 24b).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DEFAULT_CONFIG, TRSTreeConfig
from repro.core.trs_tree import TRSTree
from repro.errors import QueryError
from repro.index.base import Index, KeyRange
from repro.segments import (
    interleave_segments,
    offsets_from_counts,
    segmented_sort,
    segmented_unique,
    split_segments,
)
from repro.storage.identifiers import PointerScheme, TupleId
from repro.storage.memory import DEFAULT_SIZE_MODEL, SizeModel
from repro.storage.table import Table


def resolve_tids_array(tids: np.ndarray, pointer_scheme: PointerScheme,
                       primary_index: Index | None,
                       breakdown: "LookupBreakdown") -> np.ndarray:
    """Map one tid array to row locations (lookup Step 3, batched).

    Physical pointers *are* locations; logical pointers are resolved through
    one batched primary-index probe, charged to the breakdown's
    primary-index phase.  Shared by Hermit, the Baseline and CM so the
    pointer-resolution rules live in exactly one place.
    """
    if pointer_scheme is PointerScheme.PHYSICAL:
        return tids.astype(np.int64, copy=False)
    assert primary_index is not None
    started = time.perf_counter()
    locations = np.asarray(primary_index.search_many(tids), dtype=np.int64)
    breakdown.primary_index_seconds += time.perf_counter() - started
    return locations


def resolve_tids_many(tid_arrays: list[np.ndarray],
                      pointer_scheme: PointerScheme,
                      primary_index: Index | None,
                      breakdown: "LookupBreakdown") -> list[np.ndarray]:
    """Per-query variant of :func:`resolve_tids_array` for the batch APIs.

    The primary-index phase clock is read once around the whole batch, not
    twice per query — under logical pointers this is the dominant phase and
    per-query clock reads would be exactly the overhead the batch APIs
    exist to amortise.
    """
    if pointer_scheme is PointerScheme.PHYSICAL:
        return [tids.astype(np.int64, copy=False) for tids in tid_arrays]
    assert primary_index is not None
    started = time.perf_counter()
    locations = [np.asarray(primary_index.search_many(tids), dtype=np.int64)
                 for tids in tid_arrays]
    breakdown.primary_index_seconds += time.perf_counter() - started
    return locations


def resolve_tids_segmented(tids: np.ndarray, offsets: np.ndarray,
                           pointer_scheme: PointerScheme,
                           primary_index: Index | None,
                           breakdown: "LookupBreakdown",
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Segmented variant of :func:`resolve_tids_array` for the batch executor.

    ``(tids, offsets)`` is the concatenated candidate array of a whole query
    batch (see ``repro.segments``).  Physical pointers keep the segmentation
    as-is; logical pointers resolve every candidate through *one*
    ``search_many_segmented`` primary-index pass, which rebuilds the offsets
    (a primary key may resolve to zero or several locations).
    """
    if pointer_scheme is PointerScheme.PHYSICAL:
        return tids.astype(np.int64, copy=False), offsets
    assert primary_index is not None
    started = time.perf_counter()
    locations, offsets = primary_index.search_many_segmented(tids, offsets)
    locations = np.asarray(locations, dtype=np.int64)
    breakdown.primary_index_seconds += time.perf_counter() - started
    return locations, offsets


def regroup_host_probes(host_values: np.ndarray, host_offsets: np.ndarray,
                        ranges_per_query: "list[int] | np.ndarray",
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Fold per-*range* host-probe segments into per-*query* segments.

    The correlation mechanisms translate each query into several host
    ranges; probing the flattened range list with one
    ``range_search_segmented`` call returns per-range segments in
    query-major order, so regrouping is just summing each query's run
    sizes — no data movement.
    """
    ranges_per_query = np.asarray(ranges_per_query, dtype=np.int64)
    range_sizes = np.diff(host_offsets)
    owner = np.repeat(np.arange(ranges_per_query.size, dtype=np.int64),
                      ranges_per_query)
    counts = np.bincount(owner, weights=range_sizes,
                         minlength=ranges_per_query.size).astype(np.int64)
    return host_values, offsets_from_counts(counts)


def probe_host_ranges_segmented(
    host_index: Index, host_ranges_per_query: "list[list[KeyRange]]",
) -> tuple[np.ndarray, np.ndarray]:
    """One segmented host-index pass over per-query host-range lists.

    The shared middle of CM's ``candidate_tids_many`` (Hermit now rides
    ``TRSTree.lookup_many``'s pre-coalesced batch output instead): flatten
    the per-query range lists, probe them all with a single
    ``range_search_segmented`` call, and fold the per-range segments back
    into per-query ones.
    """
    all_ranges: list[KeyRange] = []
    counts: list[int] = []
    for host_ranges in host_ranges_per_query:
        all_ranges.extend(host_ranges)
        counts.append(len(host_ranges))
    host_values, host_offsets = host_index.range_search_segmented(all_ranges)
    return regroup_host_probes(host_values, host_offsets, counts)


def coerce_ranges(predicates) -> list[KeyRange]:
    """Normalise a predicate batch to ``KeyRange`` objects."""
    return [
        predicate if isinstance(predicate, KeyRange)
        else KeyRange(float(predicate[0]), float(predicate[1]))
        for predicate in predicates
    ]


@dataclass
class LookupBreakdown:
    """Per-phase accounting of one or more Hermit/baseline lookups.

    Time is wall-clock seconds accumulated per phase; the counters allow the
    harness to compute false-positive ratios (Figure 17).
    """

    trs_seconds: float = 0.0
    host_index_seconds: float = 0.0
    primary_index_seconds: float = 0.0
    base_table_seconds: float = 0.0
    candidates: int = 0
    results: int = 0
    lookups: int = 0

    @property
    def total_seconds(self) -> float:
        """Total time across all phases."""
        return (
            self.trs_seconds + self.host_index_seconds
            + self.primary_index_seconds + self.base_table_seconds
        )

    @property
    def false_positive_ratio(self) -> float:
        """Fraction of candidate tuples that validation rejected."""
        if self.candidates == 0:
            return 0.0
        return (self.candidates - self.results) / self.candidates

    def fractions(self) -> dict[str, float]:
        """Phase shares of the total time, keyed like the paper's legends."""
        total = self.total_seconds
        if total == 0:
            return {"TRS-Tree": 0.0, "Host Index": 0.0,
                    "Primary Index": 0.0, "Base Table": 0.0}
        return {
            "TRS-Tree": self.trs_seconds / total,
            "Host Index": self.host_index_seconds / total,
            "Primary Index": self.primary_index_seconds / total,
            "Base Table": self.base_table_seconds / total,
        }

    def merge(self, other: "LookupBreakdown") -> None:
        """Accumulate another breakdown into this one."""
        self.trs_seconds += other.trs_seconds
        self.host_index_seconds += other.host_index_seconds
        self.primary_index_seconds += other.primary_index_seconds
        self.base_table_seconds += other.base_table_seconds
        self.candidates += other.candidates
        self.results += other.results
        self.lookups += other.lookups


@dataclass
class HermitLookupResult:
    """Result of one Hermit lookup.

    Attributes:
        locations: Matching row locations — an int64 numpy array on the
            vectorized path, a plain list on the scalar reference path.
            Both support ``len``, iteration, ``in`` and ``set(...)``.
        breakdown: Per-phase time accounting for this lookup.
    """

    locations: "np.ndarray | list[int]" = field(default_factory=list)
    breakdown: LookupBreakdown = field(default_factory=LookupBreakdown)


@dataclass
class BatchLookupResult:
    """Result of one batched lookup (``lookup_range_many``).

    Attributes:
        locations_per_query: One int64 location array per input predicate,
            in input order.
        breakdown: Per-phase time accounting accumulated over the batch
            (``lookups`` equals the number of predicates).
    """

    locations_per_query: list[np.ndarray] = field(default_factory=list)
    breakdown: LookupBreakdown = field(default_factory=LookupBreakdown)

    @property
    def total_results(self) -> int:
        """Total number of matching rows across the batch."""
        return sum(len(locations) for locations in self.locations_per_query)


def finish_batch_lookup(table: Table, target_column: str,
                        ranges: list[KeyRange],
                        tid_arrays: list[np.ndarray],
                        pointer_scheme: PointerScheme,
                        primary_index: Index | None,
                        breakdown: "LookupBreakdown",
                        cumulative: "LookupBreakdown") -> BatchLookupResult:
    """Shared tail of every mechanism's ``lookup_range_many``.

    After a mechanism has produced one candidate-tid array per predicate
    (each under its own phase accounting), the remaining pipeline is
    identical across Hermit, the Baseline and CM: batched pointer
    resolution, vectorized base-table validation, and candidate/result
    accounting merged into the cumulative breakdown.
    """
    locations = resolve_tids_many(tid_arrays, pointer_scheme, primary_index,
                                  breakdown)
    started = time.perf_counter()
    matches = [
        table.filter_in_range(locs, target_column,
                              predicate.low, predicate.high)
        for locs, predicate in zip(locations, ranges)
    ]
    breakdown.base_table_seconds += time.perf_counter() - started

    breakdown.candidates += sum(len(locs) for locs in locations)
    breakdown.results += sum(len(found) for found in matches)
    cumulative.merge(breakdown)
    return BatchLookupResult(locations_per_query=matches, breakdown=breakdown)


class HermitIndex:
    """A Hermit secondary "index" on ``target_column``.

    Args:
        table: The base table the index serves.
        target_column: Column the queries filter on (no complete index exists).
        host_column: Correlated column with an existing complete index.
        host_index: The complete index on ``host_column`` (keys are host
            values, entries are tuple identifiers under ``pointer_scheme``).
        primary_index: Index from primary-key value to row location; required
            when ``pointer_scheme`` is LOGICAL.
        pointer_scheme: Tuple-identifier scheme used by the indexes.
        config: TRS-Tree parameters.
        size_model: Analytic memory model.
    """

    def __init__(self, table: Table, target_column: str, host_column: str,
                 host_index: Index, primary_index: Index | None = None,
                 pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
                 config: TRSTreeConfig = DEFAULT_CONFIG,
                 size_model: SizeModel = DEFAULT_SIZE_MODEL) -> None:
        if pointer_scheme.needs_primary_lookup and primary_index is None:
            raise QueryError(
                "logical pointers require a primary index to resolve locations"
            )
        self.table = table
        self.target_column = target_column
        self.host_column = host_column
        self.host_index = host_index
        self.primary_index = primary_index
        self.pointer_scheme = pointer_scheme
        self.trs_tree = TRSTree(config, size_model)
        self._size_model = size_model
        self.cumulative = LookupBreakdown()

    # ----------------------------------------------------------- construction

    def build(self, parallelism: int = 1) -> None:
        """Construct the TRS-Tree from the current table contents."""
        slots, targets, hosts = self.table.project(
            [self.target_column, self.host_column]
        )
        tids = self._tids_for_slots(slots)
        value_range = None
        if len(targets):
            value_range = KeyRange(float(np.min(targets)), float(np.max(targets)))
        self.trs_tree.build(targets, hosts, tids, value_range, parallelism)

    def _tids_for_slots(self, slots: np.ndarray) -> np.ndarray:
        if self.pointer_scheme is PointerScheme.PHYSICAL:
            return slots
        primary = self.table.schema.primary_key
        return self.table.values(slots, primary)

    # ----------------------------------------------------------------- lookup

    def lookup_range(self, low: float, high: float) -> HermitLookupResult:
        """Answer ``low <= target_column <= high`` exactly (Figure 3 workflow).

        Candidates stay numpy arrays through all four phases: host-index
        probe, ``np.unique`` dedup, batched primary-index resolution and one
        fancy-index base-table validation.
        """
        predicate = KeyRange(low, high)
        breakdown = LookupBreakdown(lookups=1)

        started = time.perf_counter()
        trs_result = self.trs_tree.lookup(predicate)
        breakdown.trs_seconds += time.perf_counter() - started

        started = time.perf_counter()
        candidate_tids = self._candidate_array(trs_result)
        breakdown.host_index_seconds += time.perf_counter() - started

        locations = self._resolve_locations_array(candidate_tids, breakdown)

        started = time.perf_counter()
        matches = self.table.filter_in_range(
            locations, self.target_column, predicate.low, predicate.high
        )
        breakdown.base_table_seconds += time.perf_counter() - started

        breakdown.candidates += len(locations)
        breakdown.results += len(matches)
        self.cumulative.merge(breakdown)
        return HermitLookupResult(locations=matches, breakdown=breakdown)

    def lookup_range_many(self, predicates) -> BatchLookupResult:
        """Answer a batch of range predicates with amortised overhead.

        Args:
            predicates: A sequence of ``KeyRange`` objects or ``(low, high)``
                pairs.

        The per-phase clock is read once per phase per batch instead of
        twice per phase per query, and every per-query intermediate stays a
        numpy array; the bench harness uses this to measure the lookup path
        itself rather than Python call dispatch.
        """
        ranges = coerce_ranges(predicates)
        breakdown = LookupBreakdown(lookups=len(ranges))

        values, offsets = self.candidate_tids_many(ranges, breakdown)
        # The scalar path's per-query candidates are ``np.unique`` output;
        # keep the batch identical (sorted ascending, already deduplicated).
        values, offsets = segmented_sort(values, offsets)
        candidates = split_segments(values, offsets)

        return finish_batch_lookup(
            self.table, self.target_column, ranges, candidates,
            self.pointer_scheme, self.primary_index, breakdown, self.cumulative,
        )

    def lookup_point(self, value: float) -> HermitLookupResult:
        """Answer ``target_column == value`` exactly."""
        return self.lookup_range(value, value)

    # ------------------------------------------------------ planner interface

    def candidate_tids(self, key_range: KeyRange,
                       breakdown: LookupBreakdown) -> np.ndarray:
        """Steps 1–2 of the lookup only: deduplicated candidate tids.

        This is the planner's access-path entry point: it stops *before*
        pointer resolution and base-table validation so the planner can
        intersect candidate tid sets from several access paths and pay
        resolution + validation once, on the intersection.  The candidate
        set may contain false positives; the planner's final validation
        pass removes them.
        """
        started = time.perf_counter()
        trs_result = self.trs_tree.lookup(key_range)
        breakdown.trs_seconds += time.perf_counter() - started

        started = time.perf_counter()
        candidates = self._candidate_array(trs_result)
        breakdown.host_index_seconds += time.perf_counter() - started
        return candidates

    def candidate_tids_many(self, ranges: "list[KeyRange]",
                            breakdown: LookupBreakdown,
                            ) -> tuple[np.ndarray, np.ndarray]:
        """Segmented batch variant of :meth:`candidate_tids`.

        *One* TRS-Tree translation for the whole batch
        (:meth:`~repro.core.trs_tree.TRSTree.lookup_many` — the descent is
        vectorized across predicates, not run once per query), then *one*
        host-index pass over the flattened host ranges of the whole batch
        (``range_search_segmented``), per-range segments regrouped to
        per-query ones by summing run sizes — the candidate tids of B
        queries in a constant number of array passes.  Returns
        ``(values, offsets)``; see ``repro.segments``.

        The TRS-Tree unions each query's host ranges into a disjoint cover
        (Algorithm 2) and a complete host index stores each row once, so
        the host probes alone cannot produce within-query duplicates; a
        :func:`~repro.segments.segmented_unique` dedup pass runs only when
        outlier tids were spliced in (an outlier's host value may also fall
        inside a probed range).
        """
        started = time.perf_counter()
        batch = self.trs_tree.lookup_many(ranges)
        breakdown.trs_seconds += time.perf_counter() - started

        started = time.perf_counter()
        host_ranges = [
            KeyRange(low, high)
            for low, high in zip(batch.host_lows.tolist(),
                                 batch.host_highs.tolist())
        ]
        values, offsets = self.host_index.range_search_segmented(host_ranges)
        values, offsets = regroup_host_probes(values, offsets,
                                              batch.ranges_per_query())
        if batch.outlier_tids.size:
            values, offsets = interleave_segments(
                values, offsets, batch.outlier_tids, batch.outlier_offsets
            )
            values, offsets = segmented_unique(values, offsets)
        breakdown.host_index_seconds += time.perf_counter() - started
        return values, offsets

    # Assumed candidate inflation before the first lookup provides an
    # observed false-positive ratio; deliberately worse than an exact host
    # index so default-stats planning prefers complete indexes over Hermit.
    DEFAULT_FALSE_POSITIVE_RATIO = 0.25

    def estimate_candidates(self, key_range: KeyRange, stats) -> float:
        """Estimated candidate count for ``key_range`` (cost-model input).

        Args:
            key_range: The predicate on the target column.
            stats: Catalog :class:`~repro.engine.catalog.ColumnStats` of the
                target column (duck-typed: ``row_count`` and
                ``selectivity``).

        The exact-match estimate is inflated by the mechanism's observed
        false-positive ratio (confidence-interval widening plus outliers).
        Before any lookup has run, the TRS-Tree's *build-time* estimate
        (each leaf's band width x its own host density, aggregated by
        :meth:`~repro.core.trs_tree.TRSTree.estimated_fp_ratio`) stands in
        for the observation — but only ever to make Hermit look *worse*
        than :data:`DEFAULT_FALSE_POSITIVE_RATIO`: a tree whose chosen leaf
        models still admit wide bands is priced honestly from the start,
        while a clean tree keeps the conservative default until a real
        lookup confirms it.
        """
        if self.cumulative.candidates > 0:
            false_positives = min(self.cumulative.false_positive_ratio, 0.9)
        else:
            false_positives = self.DEFAULT_FALSE_POSITIVE_RATIO
            estimated = self.trs_tree.estimated_fp_ratio()
            if estimated is not None:
                false_positives = min(max(false_positives, estimated), 0.9)
        exact = stats.row_count * stats.selectivity(key_range)
        return exact / max(1.0 - false_positives, 0.1)

    def lookup_range_scalar(self, low: float, high: float) -> HermitLookupResult:
        """Object-at-a-time reference implementation of :meth:`lookup_range`.

        This is the seed code path (per-key primary probes, per-row
        validation), kept as the reference semantics for the equivalence
        property tests and as the "scalar" side of
        ``benchmarks/bench_hotpath_vectorized.py``.  The candidate
        generation, however, shares :meth:`_candidate_array` with the
        vectorized and batch paths: the legacy Python-``set``
        materialisation of the host probe (``set(range_search_many(...))``)
        duplicated the dedup rules in a second implementation that could
        drift, and the hot-path benchmark ratios were rebased when it was
        removed (the scalar side got faster; the race now isolates the
        per-row resolution + validation overhead, which is what the
        vectorized tail actually replaced).
        """
        predicate = KeyRange(low, high)
        breakdown = LookupBreakdown(lookups=1)

        started = time.perf_counter()
        trs_result = self.trs_tree.lookup(predicate)
        breakdown.trs_seconds += time.perf_counter() - started

        started = time.perf_counter()
        candidate_tids = self._candidate_array(trs_result).tolist()
        breakdown.host_index_seconds += time.perf_counter() - started

        locations = self._resolve_locations(candidate_tids, breakdown)

        started = time.perf_counter()
        matches = self._validate(locations, predicate)
        breakdown.base_table_seconds += time.perf_counter() - started

        breakdown.candidates += len(locations)
        breakdown.results += len(matches)
        self.cumulative.merge(breakdown)
        return HermitLookupResult(locations=matches, breakdown=breakdown)

    def _candidate_array(self, trs_result) -> np.ndarray:
        """Step 2: deduplicated candidate tids as one numpy array."""
        candidates = self.host_index.range_search_many_array(trs_result.host_ranges)
        outliers = trs_result.outlier_tid_array()
        if outliers.size:
            if candidates.size:
                candidates = np.concatenate([candidates, outliers])
            else:
                candidates = outliers
        if candidates.size:
            candidates = np.unique(candidates)
        return candidates

    def _resolve_locations_array(self, tids: np.ndarray,
                                 breakdown: LookupBreakdown) -> np.ndarray:
        """Map a tid array to row locations (Step 3, optional, batched)."""
        return resolve_tids_array(tids, self.pointer_scheme,
                                  self.primary_index, breakdown)

    def _resolve_locations(self, tids: "list[TupleId] | set[TupleId]",
                           breakdown: LookupBreakdown) -> list[int]:
        """Scalar reference of :meth:`_resolve_locations_array`."""
        if self.pointer_scheme is PointerScheme.PHYSICAL:
            return [int(tid) for tid in tids]
        started = time.perf_counter()
        locations: list[int] = []
        assert self.primary_index is not None
        for primary_key in tids:
            locations.extend(int(loc) for loc in self.primary_index.search(primary_key))
        breakdown.primary_index_seconds += time.perf_counter() - started
        return locations

    def _validate(self, locations: list[int], predicate: KeyRange) -> list[int]:
        """Scalar reference of the Step 4 validation (one row at a time)."""
        matches: list[int] = []
        for location in locations:
            if not self.table.is_live(location):
                continue
            value = self.table.value(location, self.target_column)
            if predicate.contains(float(value)):
                matches.append(location)
        return matches

    # ------------------------------------------------------------ maintenance

    def insert(self, row: dict, location: int) -> None:
        """Notify the index of a newly inserted row (already in the table)."""
        tid = self._tid_for(row, location)
        self.trs_tree.insert(
            float(row[self.target_column]), float(row[self.host_column]), tid
        )

    def insert_many(self, columns: dict, locations: np.ndarray) -> None:
        """Batched :meth:`insert`: column arrays in, one TRS-Tree pass.

        Args:
            columns: Column name → aligned value sequence for the new rows
                (must include the target and host columns, plus the primary
                key under logical pointers).
            locations: Row locations of the new rows, aligned with the
                columns.
        """
        targets = np.asarray(columns[self.target_column], dtype=np.float64)
        hosts = np.asarray(columns[self.host_column], dtype=np.float64)
        self.trs_tree.insert_many(
            targets, hosts, self._tids_for_batch(columns, locations)
        )

    def _tids_for_batch(self, columns: dict,
                        locations: np.ndarray) -> np.ndarray:
        """Batch counterpart of :meth:`_tid_for`."""
        if self.pointer_scheme is PointerScheme.PHYSICAL:
            return np.asarray(locations, dtype=np.int64)
        return np.asarray(columns[self.table.schema.primary_key],
                          dtype=np.float64)

    def delete(self, row: dict, location: int) -> None:
        """Notify the index that ``row`` at ``location`` was deleted."""
        tid = self._tid_for(row, location)
        self.trs_tree.delete(
            float(row[self.target_column]), float(row[self.host_column]), tid
        )

    def update(self, old_row: dict, new_row: dict, location: int) -> None:
        """Notify the index that a row changed in place.

        The old and new tuple identifiers are passed separately: under
        logical pointers a primary-key change renames the tid, and the
        delete half of the update must target the entry stored under the
        *old* identifier (probing with the new one would leave the stale
        outlier entry behind).
        """
        old_tid = self._tid_for(old_row, location)
        new_tid = self._tid_for(new_row, location)
        self.trs_tree.update(
            float(old_row[self.target_column]), float(old_row[self.host_column]),
            float(new_row[self.target_column]), float(new_row[self.host_column]),
            old_tid, new_tid=new_tid,
        )

    def _tid_for(self, row: dict, location: int) -> TupleId:
        if self.pointer_scheme is PointerScheme.PHYSICAL:
            return location
        return row[self.table.schema.primary_key]

    # --------------------------------------------------------- reorganization

    @property
    def pending_reorganizations(self) -> int:
        """Number of TRS-Tree nodes flagged for reorganization."""
        return self.trs_tree.pending_reorganizations

    def data_provider(self):
        """Return the base-table data provider used by reorganization.

        The table is projected lazily, at most once per returned provider:
        a single ``reorganize()`` pass may rebuild dozens of candidate nodes,
        and re-projecting the entire table per candidate turned the pass into
        O(candidates × table size).  The projected arrays (including resolved
        tids) are cached in the closure and re-sliced per candidate range.
        """
        cache: dict[str, np.ndarray] = {}

        def provider(key_range: KeyRange):
            if not cache:
                slots, targets, hosts = self.table.project(
                    [self.target_column, self.host_column]
                )
                cache["targets"] = targets
                cache["hosts"] = hosts
                cache["tids"] = self._tids_for_slots(slots)
            targets = cache["targets"]
            mask = (targets >= key_range.low) & (targets <= key_range.high)
            return targets[mask], cache["hosts"][mask], cache["tids"][mask]

        return provider

    def reorganize(self, max_candidates: int | None = None) -> int:
        """Run pending TRS-Tree reorganizations against the base table."""
        return self.trs_tree.reorganize(self.data_provider(), max_candidates)

    def reorganize_children(self, child_indices) -> None:
        """Force a rebuild of selected first-level subtrees (Figure 23)."""
        self.trs_tree.reorganize_children(self.data_provider(), child_indices)

    # ------------------------------------------------------------- accounting

    def memory_bytes(self) -> int:
        """Size of the Hermit structure itself (the TRS-Tree only).

        The host index and primary index are *pre-existing* structures shared
        with the rest of the database, exactly as in the paper's accounting.
        """
        return self.trs_tree.memory_bytes()

    def reset_breakdown(self) -> None:
        """Clear the cumulative breakdown counters."""
        self.cumulative = LookupBreakdown()
