"""Comparator mechanisms: the conventional B+-tree secondary index and CM."""

from repro.baselines.correlation_maps import CorrelationMap
from repro.baselines.secondary import BaselineSecondaryIndex

__all__ = ["BaselineSecondaryIndex", "CorrelationMap"]
