"""Correlation Maps (CM) — the appendix comparator.

CM (Kimura et al., VLDB 2009) also exploits a column correlation to avoid a
complete secondary index, but with a bucketised map instead of regression
models: the target and host domains are each divided into fixed-width buckets,
and the structure stores, for every target bucket, the set of host buckets
that contain at least one co-occurring value.  A lookup expands the predicate
to whole target buckets, unions the mapped host buckets into host ranges,
probes the host index and validates against the base table — so, like Hermit,
CM returns exact results but pays validation for its false positives.

The paper's appendix highlights two CM weaknesses that this implementation
deliberately preserves: (1) there is no outlier handling, so sparse noise
inflates the bucket mapping (every noisy tuple drags a host bucket into its
target bucket's set), and (2) deletions cannot cheaply shrink the mapping
(removing a pair might orphan a bucket link only discoverable by rescanning),
so deletes leave the mapping untouched — still correct, just less precise.
"""

from __future__ import annotations

import time
from collections import defaultdict

import numpy as np

from repro.core.hermit import (
    BatchLookupResult,
    HermitLookupResult,
    LookupBreakdown,
    coerce_ranges,
    finish_batch_lookup,
    probe_host_ranges_segmented,
    resolve_tids_array,
)
from repro.errors import ConfigurationError, QueryError
from repro.index.base import Index, KeyRange
from repro.storage.identifiers import PointerScheme
from repro.storage.memory import DEFAULT_SIZE_MODEL, SizeModel
from repro.storage.table import Table


class CorrelationMap:
    """A CM-style bucketised secondary access method on ``target_column``.

    Args:
        table: The base table.
        target_column: Column the queries filter on.
        host_column: Correlated column with an existing complete index.
        host_index: The complete index on ``host_column``.
        target_bucket_width: Width (in value units) of the target buckets —
            the paper's "bucket size in target column" (CM-16, CM-64, ...).
        host_bucket_width: Width of the host buckets.
        primary_index: Primary index, required for logical pointers.
        pointer_scheme: Tuple-identifier scheme of the host index entries.
        size_model: Analytic memory model.
    """

    def __init__(self, table: Table, target_column: str, host_column: str,
                 host_index: Index, target_bucket_width: float,
                 host_bucket_width: float, primary_index: Index | None = None,
                 pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
                 size_model: SizeModel = DEFAULT_SIZE_MODEL) -> None:
        if target_bucket_width <= 0 or host_bucket_width <= 0:
            raise ConfigurationError("bucket widths must be positive")
        if pointer_scheme.needs_primary_lookup and primary_index is None:
            raise QueryError(
                "logical pointers require a primary index to resolve locations"
            )
        self.table = table
        self.target_column = target_column
        self.host_column = host_column
        self.host_index = host_index
        self.primary_index = primary_index
        self.pointer_scheme = pointer_scheme
        self.target_bucket_width = float(target_bucket_width)
        self.host_bucket_width = float(host_bucket_width)
        self._size_model = size_model
        self._mapping: dict[int, set[int]] = defaultdict(set)
        self.cumulative = LookupBreakdown()

    # ----------------------------------------------------------- construction

    def build(self) -> None:
        """Populate the bucket mapping from the current table contents."""
        _, targets, hosts = self.table.project([self.target_column, self.host_column])
        self._mapping.clear()
        if len(targets) == 0:
            return
        target_buckets = np.floor(targets / self.target_bucket_width).astype(np.int64)
        host_buckets = np.floor(hosts / self.host_bucket_width).astype(np.int64)
        for target_bucket, host_bucket in zip(target_buckets, host_buckets):
            self._mapping[int(target_bucket)].add(int(host_bucket))

    # ----------------------------------------------------------------- lookup

    def lookup_range(self, low: float, high: float) -> HermitLookupResult:
        """Answer ``low <= target_column <= high`` exactly."""
        predicate = KeyRange(low, high)
        breakdown = LookupBreakdown(lookups=1)

        started = time.perf_counter()
        host_ranges = self._host_ranges_for(predicate)
        breakdown.trs_seconds += time.perf_counter() - started

        started = time.perf_counter()
        tids = self.host_index.range_search_many_array(host_ranges)
        if tids.size:
            tids = np.unique(tids)
        breakdown.host_index_seconds += time.perf_counter() - started

        locations = self._resolve_locations_array(tids, breakdown)

        started = time.perf_counter()
        matches = self.table.filter_in_range(
            locations, self.target_column, predicate.low, predicate.high
        )
        breakdown.base_table_seconds += time.perf_counter() - started

        breakdown.candidates += len(locations)
        breakdown.results += len(matches)
        self.cumulative.merge(breakdown)
        return HermitLookupResult(locations=matches, breakdown=breakdown)

    def lookup_range_many(self, predicates) -> BatchLookupResult:
        """Answer a batch of range predicates with amortised overhead.

        Exists so the bench harness measures CM under the same batch
        protocol as Hermit and the Baseline — otherwise the cross-mechanism
        figures would compare mechanism cost plus per-call dispatch on one
        side against mechanism cost alone on the other.
        """
        ranges = coerce_ranges(predicates)
        breakdown = LookupBreakdown(lookups=len(ranges))

        started = time.perf_counter()
        host_ranges_per_query = [self._host_ranges_for(predicate)
                                 for predicate in ranges]
        breakdown.trs_seconds += time.perf_counter() - started

        started = time.perf_counter()
        tid_arrays = []
        for host_ranges in host_ranges_per_query:
            tids = self.host_index.range_search_many_array(host_ranges)
            if tids.size:
                tids = np.unique(tids)
            tid_arrays.append(tids)
        breakdown.host_index_seconds += time.perf_counter() - started

        return finish_batch_lookup(
            self.table, self.target_column, ranges, tid_arrays,
            self.pointer_scheme, self.primary_index, breakdown, self.cumulative,
        )

    def lookup_point(self, value: float) -> HermitLookupResult:
        """Answer ``target_column == value``."""
        return self.lookup_range(value, value)

    # ------------------------------------------------------ planner interface

    def candidate_tids(self, key_range: KeyRange,
                       breakdown: LookupBreakdown) -> np.ndarray:
        """Candidate tids for the planner: bucket expansion + host probes only."""
        started = time.perf_counter()
        host_ranges = self._host_ranges_for(key_range)
        breakdown.trs_seconds += time.perf_counter() - started

        started = time.perf_counter()
        tids = self.host_index.range_search_many_array(host_ranges)
        if tids.size:
            tids = np.unique(tids)
        breakdown.host_index_seconds += time.perf_counter() - started
        return tids

    def candidate_tids_many(self, ranges: "list[KeyRange]",
                            breakdown: LookupBreakdown,
                            ) -> tuple[np.ndarray, np.ndarray]:
        """Segmented batch variant of :meth:`candidate_tids`.

        Bucket expansion stays per query (a Python dict walk per target
        bucket), but the host probes of the whole batch collapse into one
        ``range_search_segmented`` call over the flattened host-range list,
        regrouped per query.  No dedup pass is needed:
        ``_host_ranges_for`` unions its buckets into *disjoint* host ranges
        and a complete host index stores each row once, so a tid cannot
        appear twice within one query's probes.  Returns a
        ``(values, offsets)`` segmented array.
        """
        started = time.perf_counter()
        host_ranges_per_query = [self._host_ranges_for(key_range)
                                 for key_range in ranges]
        breakdown.trs_seconds += time.perf_counter() - started

        started = time.perf_counter()
        values, offsets = probe_host_ranges_segmented(self.host_index,
                                                      host_ranges_per_query)
        breakdown.host_index_seconds += time.perf_counter() - started
        return values, offsets

    # Assumed host-side candidate inflation of the bucket mapping: every
    # covered target bucket drags in whole host buckets, which typically
    # over-fetches more than Hermit's regression ranges do — this is what
    # ranks CM after Hermit under default statistics, exactly like the
    # pre-planner executor's fixed preference order.
    DEFAULT_HOST_INFLATION = 2.0

    def estimate_candidates(self, key_range: KeyRange, stats) -> float:
        """Estimated candidate count after bucket expansion.

        The predicate is first widened to whole target buckets (CM answers
        bucket-aligned queries only), then the exact-match estimate for the
        widened range is inflated by the assumed host-bucket over-fetch.
        """
        first = float(np.floor(key_range.low / self.target_bucket_width))
        last = float(np.floor(key_range.high / self.target_bucket_width))
        expanded = KeyRange(first * self.target_bucket_width,
                            (last + 1.0) * self.target_bucket_width)
        exact = stats.row_count * stats.selectivity(expanded)
        return min(float(stats.row_count),
                   exact * self.DEFAULT_HOST_INFLATION)

    def _host_ranges_for(self, predicate: KeyRange) -> list[KeyRange]:
        first = int(np.floor(predicate.low / self.target_bucket_width))
        last = int(np.floor(predicate.high / self.target_bucket_width))
        host_buckets: set[int] = set()
        for target_bucket in range(first, last + 1):
            host_buckets.update(self._mapping.get(target_bucket, ()))
        ranges = [
            KeyRange(bucket * self.host_bucket_width,
                     (bucket + 1) * self.host_bucket_width)
            for bucket in host_buckets
        ]
        return KeyRange.union(ranges)

    def _resolve_locations_array(self, tids: np.ndarray,
                                 breakdown: LookupBreakdown) -> np.ndarray:
        return resolve_tids_array(tids, self.pointer_scheme,
                                  self.primary_index, breakdown)

    # ------------------------------------------------------------ maintenance

    def insert(self, row: dict, location: int) -> None:
        """Extend the mapping for a newly inserted row."""
        target_bucket = int(np.floor(float(row[self.target_column])
                                     / self.target_bucket_width))
        host_bucket = int(np.floor(float(row[self.host_column])
                                   / self.host_bucket_width))
        self._mapping[target_bucket].add(host_bucket)

    def insert_many(self, columns: dict, locations) -> None:
        """Batched :meth:`insert`: vectorized bucketing, deduped link adds.

        Both bucket arrays are computed in one vectorized pass and only the
        *distinct* (target bucket, host bucket) pairs touch the mapping —
        a bulk insert of correlated rows typically collapses to a handful
        of set adds.  ``locations`` is accepted for interface uniformity;
        CM stores no tuple identifiers.
        """
        del locations
        targets = np.asarray(columns[self.target_column], dtype=np.float64)
        hosts = np.asarray(columns[self.host_column], dtype=np.float64)
        if targets.size == 0:
            return
        target_buckets = np.floor(targets / self.target_bucket_width)
        host_buckets = np.floor(hosts / self.host_bucket_width)
        links = np.unique(
            np.stack([target_buckets, host_buckets], axis=1), axis=0
        ).astype(np.int64)
        for target_bucket, host_bucket in links.tolist():
            self._mapping[target_bucket].add(host_bucket)

    def delete(self, row: dict, location: int) -> None:
        """Deletion keeps the mapping unchanged (documented CM limitation)."""

    def update(self, old_row: dict, new_row: dict, location: int) -> None:
        """Updates only extend the mapping for the new values."""
        self.insert(new_row, location)

    # ------------------------------------------------------------- accounting

    @property
    def num_bucket_links(self) -> int:
        """Number of (target bucket → host bucket) links stored."""
        return sum(len(buckets) for buckets in self._mapping.values())

    def memory_bytes(self) -> int:
        """Analytic size: one hash entry per bucket link plus per-bucket headers."""
        links = self.num_bucket_links
        buckets = len(self._mapping)
        return (
            self._size_model.hash_table_bytes(links)
            + buckets * self._size_model.node_header_bytes
        )

    def reset_breakdown(self) -> None:
        """Clear the cumulative breakdown counters."""
        self.cumulative = LookupBreakdown()
