"""Conventional B+-tree secondary indexing mechanism (the paper's "Baseline").

This is the comparator used in every throughput and memory experiment: a
complete B+-tree on the target column whose entries are tuple identifiers
under either pointer scheme.  Lookups go secondary index → (primary index) →
base table, and the per-phase breakdown mirrors Figures 11 and 15.

Like :class:`~repro.core.hermit.HermitIndex`, the lookup path is array-native
(tid arrays from the index, batched primary resolution, vectorized base-table
touch) so the Hermit-vs-Baseline comparison measures the mechanisms rather
than interpreter overhead; the object-at-a-time seed path survives as
:meth:`BaselineSecondaryIndex.lookup_range_scalar`, and
:meth:`BaselineSecondaryIndex.lookup_range_many` serves predicate batches.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.hermit import (
    BatchLookupResult,
    HermitLookupResult,
    LookupBreakdown,
    coerce_ranges,
    finish_batch_lookup,
    resolve_tids_array,
)
from repro.errors import QueryError
from repro.index.base import Index, KeyRange
from repro.index.bptree import BPlusTree
from repro.storage.identifiers import PointerScheme, TupleId
from repro.storage.memory import DEFAULT_SIZE_MODEL, SizeModel
from repro.storage.table import Table


class BaselineSecondaryIndex:
    """A complete B+-tree secondary index on ``target_column``.

    Exposes the same lookup/maintenance surface as
    :class:`~repro.core.hermit.HermitIndex` so the engine, the benchmarks and
    the property tests can swap the two mechanisms freely.

    Args:
        table: The base table.
        target_column: Column the index is built on.
        primary_index: Index from primary-key value to row location; required
            for the logical pointer scheme.
        pointer_scheme: Tuple-identifier scheme stored in the index.
        node_capacity: B+-tree node capacity (ignored when ``index`` is given).
        size_model: Analytic memory model.
        index: Backing index structure; defaults to a fresh
            :class:`~repro.index.bptree.BPlusTree`.  Passing a
            :class:`~repro.index.sorted_column.SortedColumnIndex` yields the
            read-optimised ``IndexMethod.SORTED_COLUMN`` mechanism — same
            lookup surface, searchsorted probes instead of tree descents.
    """

    def __init__(self, table: Table, target_column: str,
                 primary_index: Index | None = None,
                 pointer_scheme: PointerScheme = PointerScheme.PHYSICAL,
                 node_capacity: int = 32,
                 size_model: SizeModel = DEFAULT_SIZE_MODEL,
                 index: Index | None = None) -> None:
        if pointer_scheme.needs_primary_lookup and primary_index is None:
            raise QueryError(
                "logical pointers require a primary index to resolve locations"
            )
        self.table = table
        self.target_column = target_column
        self.primary_index = primary_index
        self.pointer_scheme = pointer_scheme
        self.index = index if index is not None else BPlusTree(
            node_capacity=node_capacity, size_model=size_model
        )
        self.cumulative = LookupBreakdown()

    # ----------------------------------------------------------- construction

    def build(self) -> None:
        """Bulk-load the B+-tree from the current table contents."""
        slots, targets = self.table.project([self.target_column])
        if self.pointer_scheme is PointerScheme.PHYSICAL:
            tids = slots
        else:
            tids = self.table.values(slots, self.table.schema.primary_key)
        pairs = [(float(key), self._native(tid)) for key, tid in zip(targets, tids)]
        self.index.bulk_load(pairs)

    # ----------------------------------------------------------------- lookup

    def lookup_range(self, low: float, high: float) -> HermitLookupResult:
        """Answer ``low <= target_column <= high`` (array-native path)."""
        predicate = KeyRange(low, high)
        breakdown = LookupBreakdown(lookups=1)

        started = time.perf_counter()
        tids = self.index.range_search_array(predicate)
        breakdown.host_index_seconds += time.perf_counter() - started

        locations = self._resolve_locations_array(tids, breakdown)

        started = time.perf_counter()
        # The baseline still touches the base table once per match to produce
        # the query result (Figures 11/15 charge this as "Base Table"); the
        # range filter is a no-op for in-range index entries, so this is one
        # vectorized liveness check plus one column gather.
        matches = self.table.filter_in_range(
            locations, self.target_column, predicate.low, predicate.high
        )
        breakdown.base_table_seconds += time.perf_counter() - started

        breakdown.candidates += len(locations)
        breakdown.results += len(matches)
        self.cumulative.merge(breakdown)
        return HermitLookupResult(locations=matches, breakdown=breakdown)

    def lookup_range_many(self, predicates) -> BatchLookupResult:
        """Answer a batch of range predicates with amortised overhead.

        Args:
            predicates: A sequence of ``KeyRange`` objects or ``(low, high)``
                pairs.
        """
        ranges = coerce_ranges(predicates)
        breakdown = LookupBreakdown(lookups=len(ranges))

        started = time.perf_counter()
        tid_arrays = [self.index.range_search_array(predicate)
                      for predicate in ranges]
        breakdown.host_index_seconds += time.perf_counter() - started

        return finish_batch_lookup(
            self.table, self.target_column, ranges, tid_arrays,
            self.pointer_scheme, self.primary_index, breakdown, self.cumulative,
        )

    def lookup_point(self, value: float) -> HermitLookupResult:
        """Answer ``target_column == value``."""
        return self.lookup_range(value, value)

    # ------------------------------------------------------ planner interface

    def candidate_tids(self, key_range: KeyRange,
                       breakdown: LookupBreakdown) -> np.ndarray:
        """Candidate tids for the planner — one array probe, no validation.

        A complete index produces no false positives, so its candidates are
        exactly the matching tids (modulo liveness, which the planner's
        validation pass checks anyway).
        """
        started = time.perf_counter()
        tids = self.index.range_search_array(key_range)
        breakdown.host_index_seconds += time.perf_counter() - started
        return tids

    def candidate_tids_many(self, ranges: "list[KeyRange]",
                            breakdown: LookupBreakdown,
                            ) -> tuple[np.ndarray, np.ndarray]:
        """Segmented batch variant of :meth:`candidate_tids`.

        Delegates straight to the backing index's ``range_search_segmented``
        — one probe pass per batch (fully vectorized on a sorted-column
        backing, a single flat leaf-walk loop on the B+-tree).  Returns a
        ``(values, offsets)`` segmented array (see ``repro.segments``).
        """
        started = time.perf_counter()
        values, offsets = self.index.range_search_segmented(ranges)
        breakdown.host_index_seconds += time.perf_counter() - started
        return values, offsets

    def estimate_candidates(self, key_range: KeyRange, stats) -> float:
        """Estimated candidate count: exact (a complete index has no FPs)."""
        return stats.row_count * stats.selectivity(key_range)

    def lookup_range_scalar(self, low: float, high: float) -> HermitLookupResult:
        """Object-at-a-time reference implementation of :meth:`lookup_range`.

        The seed code path, kept as the reference semantics for the
        equivalence property tests and the "scalar" side of the hot-path
        benchmark.
        """
        predicate = KeyRange(low, high)
        breakdown = LookupBreakdown(lookups=1)

        started = time.perf_counter()
        tids = self.index.range_search(predicate)
        breakdown.host_index_seconds += time.perf_counter() - started

        locations = self._resolve_locations(tids, breakdown)

        started = time.perf_counter()
        matches = [loc for loc in locations if self.table.is_live(loc)]
        # One base-table touch per match, exactly as the seed path did.
        for location in matches:
            self.table.value(location, self.target_column)
        breakdown.base_table_seconds += time.perf_counter() - started

        breakdown.candidates += len(locations)
        breakdown.results += len(matches)
        self.cumulative.merge(breakdown)
        return HermitLookupResult(locations=matches, breakdown=breakdown)

    def _resolve_locations_array(self, tids: np.ndarray,
                                 breakdown: LookupBreakdown) -> np.ndarray:
        return resolve_tids_array(tids, self.pointer_scheme,
                                  self.primary_index, breakdown)

    def _resolve_locations(self, tids: list[TupleId],
                           breakdown: LookupBreakdown) -> list[int]:
        if self.pointer_scheme is PointerScheme.PHYSICAL:
            return [int(tid) for tid in tids]
        started = time.perf_counter()
        locations: list[int] = []
        assert self.primary_index is not None
        for primary_key in tids:
            locations.extend(int(loc) for loc in self.primary_index.search(primary_key))
        breakdown.primary_index_seconds += time.perf_counter() - started
        return locations

    # ------------------------------------------------------------ maintenance

    def insert(self, row: dict, location: int) -> None:
        """Index a newly inserted row."""
        self.index.insert(float(row[self.target_column]), self._tid_for(row, location))

    def insert_many(self, columns: dict, locations: np.ndarray) -> None:
        """Batched :meth:`insert`: one sorted merge into the B+-tree.

        Args:
            columns: Column name → aligned value sequence for the new rows.
            locations: Row locations of the new rows, aligned with the
                columns.
        """
        keys = np.asarray(columns[self.target_column], dtype=np.float64)
        if self.pointer_scheme is PointerScheme.PHYSICAL:
            tids = np.asarray(locations, dtype=np.int64)
        else:
            tids = np.asarray(columns[self.table.schema.primary_key],
                              dtype=np.float64)
        self.index.insert_many(keys, tids)

    def delete(self, row: dict, location: int) -> None:
        """Remove an index entry for a deleted row."""
        self.index.delete(float(row[self.target_column]), self._tid_for(row, location))

    def update(self, old_row: dict, new_row: dict, location: int) -> None:
        """Re-index a row whose target value changed."""
        self.delete(old_row, location)
        self.insert(new_row, location)

    def _tid_for(self, row: dict, location: int) -> TupleId:
        if self.pointer_scheme is PointerScheme.PHYSICAL:
            return location
        return row[self.table.schema.primary_key]

    # ------------------------------------------------------------- accounting

    def memory_bytes(self) -> int:
        """Analytic size of the secondary index in bytes."""
        return self.index.memory_bytes()

    def reset_breakdown(self) -> None:
        """Clear the cumulative breakdown counters."""
        self.cumulative = LookupBreakdown()

    @staticmethod
    def _native(tid):
        return tid.item() if hasattr(tid, "item") else tid
