"""LRU buffer pool over the simulated disk manager.

Mirrors the PostgreSQL setup in the paper's Section 7.8: the benchmark
"reconfigured the buffer pool size to ensure that the B+-tree is fully cached
in memory", so the pool here is sized generously by default but still counts
hits and misses so experiments can reason about page traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import BufferPoolError
from repro.storage.disk import DiskManager
from repro.storage.pages import SlottedPage


@dataclass
class BufferPoolStatistics:
    """Hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of page requests served from the pool."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class _Frame:
    __slots__ = ("page", "pin_count", "dirty")

    def __init__(self, page: SlottedPage) -> None:
        self.page = page
        self.pin_count = 0
        self.dirty = False


class BufferPool:
    """A pin-counted LRU buffer pool.

    Args:
        disk: The backing disk manager.
        capacity: Maximum number of resident pages.
    """

    def __init__(self, disk: DiskManager, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise BufferPoolError("buffer pool capacity must be positive")
        self.disk = disk
        self.capacity = capacity
        self.stats = BufferPoolStatistics()
        self._frames: OrderedDict[int, _Frame] = OrderedDict()

    def new_page(self, capacity: int) -> SlottedPage:
        """Allocate a new page on disk and pin it in the pool."""
        page = self.disk.allocate_page(capacity)
        frame = _Frame(page)
        frame.pin_count = 1
        frame.dirty = True
        self._admit(page.page_id, frame)
        return page

    def fetch_page(self, page_id: int) -> SlottedPage:
        """Return a pinned page, reading it from disk on a miss."""
        if page_id in self._frames:
            self.stats.hits += 1
            frame = self._frames[page_id]
            self._frames.move_to_end(page_id)
        else:
            self.stats.misses += 1
            frame = _Frame(self.disk.read_page(page_id))
            self._admit(page_id, frame)
        frame.pin_count += 1
        return frame.page

    def unpin_page(self, page_id: int, dirty: bool = False) -> None:
        """Release one pin on ``page_id``; mark dirty if it was modified."""
        frame = self._frames.get(page_id)
        if frame is None or frame.pin_count <= 0:
            raise BufferPoolError(f"page {page_id} is not pinned")
        frame.pin_count -= 1
        frame.dirty = frame.dirty or dirty

    def flush_page(self, page_id: int) -> None:
        """Write a dirty page back to disk."""
        frame = self._frames.get(page_id)
        if frame is None:
            return
        if frame.dirty:
            self.disk.write_page(frame.page)
            frame.dirty = False

    def flush_all(self) -> None:
        """Write all dirty resident pages back to disk."""
        for page_id in list(self._frames):
            self.flush_page(page_id)

    @property
    def num_resident(self) -> int:
        """Number of pages currently resident in the pool."""
        return len(self._frames)

    # ---------------------------------------------------------------- private

    def _admit(self, page_id: int, frame: _Frame) -> None:
        if len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page_id] = frame
        self._frames.move_to_end(page_id)

    def _evict_one(self) -> None:
        for victim_id, victim in self._frames.items():
            if victim.pin_count == 0:
                if victim.dirty:
                    self.disk.write_page(victim.page)
                del self._frames[victim_id]
                self.stats.evictions += 1
                return
        raise BufferPoolError("all buffer pool frames are pinned")
