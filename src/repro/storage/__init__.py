"""Storage substrate: schemas, tables, tuple identifiers, pages, buffer pool.

This subpackage provides both substrates the paper evaluates on:

* the in-memory columnar :class:`~repro.storage.table.Table` used by the
  "DBMS-X" experiments, and
* the page-based :class:`~repro.storage.heap_file.HeapFile` behind a
  :class:`~repro.storage.buffer_pool.BufferPool` and a simulated
  :class:`~repro.storage.disk.DiskManager`, which stands in for PostgreSQL.
"""

from repro.storage.buffer_pool import BufferPool, BufferPoolStatistics
from repro.storage.disk import DiskManager, IOCostModel, IOStatistics
from repro.storage.heap_file import HeapFile
from repro.storage.identifiers import PointerScheme, RowLocation, TupleId
from repro.storage.memory import (
    BYTES_PER_GB,
    BYTES_PER_MB,
    DEFAULT_SIZE_MODEL,
    MemoryReport,
    SizeModel,
)
from repro.storage.pages import DEFAULT_PAGE_SIZE, SlottedPage, slots_per_page
from repro.storage.schema import (
    Column,
    ColumnStatistics,
    DataType,
    TableSchema,
    numeric_schema,
)
from repro.storage.table import Table

__all__ = [
    "BufferPool",
    "BufferPoolStatistics",
    "BYTES_PER_GB",
    "BYTES_PER_MB",
    "Column",
    "ColumnStatistics",
    "DataType",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_SIZE_MODEL",
    "DiskManager",
    "HeapFile",
    "IOCostModel",
    "IOStatistics",
    "MemoryReport",
    "PointerScheme",
    "RowLocation",
    "SizeModel",
    "SlottedPage",
    "Table",
    "TableSchema",
    "TupleId",
    "numeric_schema",
    "slots_per_page",
]
