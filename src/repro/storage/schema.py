"""Table schemas and column descriptors.

The engine stores data column-wise in numpy arrays, so the schema layer is
responsible for mapping logical column names to physical positions and for
describing the value domain of each column (used by the optimizer statistics
and by the memory model).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.errors import SchemaError


class DataType(enum.Enum):
    """Physical data types supported by the storage layer.

    The paper's workloads only use 8-byte numeric columns, but the schema layer
    also supports 64-bit integers and fixed-width strings so that the Stock
    workload can carry ticker symbols and dates.
    """

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"

    @property
    def numpy_dtype(self) -> np.dtype:
        """Return the numpy dtype used to store values of this type."""
        if self is DataType.INT64:
            return np.dtype(np.int64)
        if self is DataType.FLOAT64:
            return np.dtype(np.float64)
        return np.dtype(object)

    @property
    def byte_width(self) -> int:
        """Nominal width in bytes used by the analytic memory model."""
        if self is DataType.STRING:
            return 16
        return 8


@dataclass(frozen=True)
class Column:
    """A single column in a table schema.

    Attributes:
        name: Logical column name, unique within the table.
        dtype: Physical data type.
        nullable: Whether NULL (represented as ``np.nan`` for floats and a
            sentinel for ints) is permitted.  The Stock workload uses NULLs for
            missing readings.
    """

    name: str
    dtype: DataType = DataType.FLOAT64
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError("column name must be a non-empty string")


class TableSchema:
    """An ordered collection of columns plus the primary-key designation.

    Args:
        name: Table name.
        columns: Ordered column descriptors.
        primary_key: Name of the primary-key column.  Must be one of
            ``columns``.  The engine builds a primary index on it.
    """

    def __init__(self, name: str, columns: Iterable[Column], primary_key: str) -> None:
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        if not self.columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names")
        self._positions = {c.name: i for i, c in enumerate(self.columns)}
        if primary_key not in self._positions:
            raise SchemaError(
                f"primary key {primary_key!r} is not a column of table {name!r}"
            )
        self.primary_key = primary_key

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._positions

    def __repr__(self) -> str:
        cols = ", ".join(c.name for c in self.columns)
        return f"TableSchema({self.name!r}, [{cols}], pk={self.primary_key!r})"

    @property
    def column_names(self) -> list[str]:
        """Column names in physical order."""
        return [c.name for c in self.columns]

    def position_of(self, column_name: str) -> int:
        """Return the physical position of ``column_name``.

        Raises:
            SchemaError: If the column does not exist.
        """
        try:
            return self._positions[column_name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {column_name!r}"
            ) from None

    def column(self, column_name: str) -> Column:
        """Return the :class:`Column` descriptor for ``column_name``."""
        return self.columns[self.position_of(column_name)]

    def validate_row(self, row: dict) -> None:
        """Validate that ``row`` provides a value for every non-nullable column.

        Raises:
            SchemaError: If a required column is missing or an unknown column
                is supplied.
        """
        for key in row:
            if key not in self._positions:
                raise SchemaError(
                    f"row references unknown column {key!r} of table {self.name!r}"
                )
        for column in self.columns:
            if column.name not in row and not column.nullable:
                raise SchemaError(
                    f"row is missing non-nullable column {column.name!r}"
                )

    def row_byte_width(self) -> int:
        """Nominal row width in bytes, used by the analytic memory model."""
        return sum(c.dtype.byte_width for c in self.columns)


def numeric_schema(name: str, column_names: Iterable[str], primary_key: str,
                   dtype: DataType = DataType.FLOAT64) -> TableSchema:
    """Convenience constructor for the all-numeric tables the paper uses.

    Args:
        name: Table name.
        column_names: Ordered column names.
        primary_key: Primary-key column name.
        dtype: Data type shared by all columns.
    """
    columns = [Column(c, dtype=dtype) for c in column_names]
    return TableSchema(name, columns, primary_key=primary_key)


@dataclass
class ColumnStatistics:
    """Simple per-column statistics maintained by the engine.

    These mirror the "optimizer statistics" the paper relies on to obtain the
    target column's full value range for TRS-Tree construction.
    """

    count: int = 0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        """Fold one value into the statistics."""
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def observe_many(self, values: np.ndarray) -> None:
        """Fold a vector of values into the statistics."""
        if len(values) == 0:
            return
        self.count += int(len(values))
        lo = float(np.min(values))
        hi = float(np.max(values))
        if lo < self.minimum:
            self.minimum = lo
        if hi > self.maximum:
            self.maximum = hi

    @property
    def value_range(self) -> tuple[float, float]:
        """Return ``(min, max)``; raises if no values have been observed."""
        if self.count == 0:
            raise SchemaError("no values observed; value range is undefined")
        return (self.minimum, self.maximum)
