"""In-memory columnar base table.

This is the storage substrate of the "DBMS-X" side of the evaluation: an
append-only, column-oriented table whose columns are numpy arrays.  Rows are
addressed by their slot number (a :class:`~repro.storage.identifiers.RowLocation`);
deleting a row marks the slot dead rather than compacting, which mirrors how a
main-memory RDBMS with physical tuple pointers behaves.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import SchemaError, StorageError, TupleNotFoundError
from repro.storage.identifiers import RowLocation
from repro.storage.memory import DEFAULT_SIZE_MODEL, MemoryReport, SizeModel
from repro.storage.schema import ColumnStatistics, DataType, TableSchema

_INITIAL_CAPACITY = 64


class Table:
    """A columnar, slot-addressed, in-memory table.

    Args:
        schema: The table schema.
        size_model: Cost model used for analytic memory accounting.

    Rows are inserted as dictionaries mapping column names to values; missing
    nullable columns are stored as NaN (floats) / 0 (ints) / None (strings).
    """

    def __init__(self, schema: TableSchema,
                 size_model: SizeModel = DEFAULT_SIZE_MODEL) -> None:
        self.schema = schema
        self._size_model = size_model
        self._capacity = _INITIAL_CAPACITY
        self._columns: dict[str, np.ndarray] = {
            column.name: np.zeros(self._capacity, dtype=column.dtype.numpy_dtype)
            for column in schema
        }
        self._live = np.zeros(self._capacity, dtype=bool)
        self._next_slot = 0
        self._live_count = 0
        self.statistics: dict[str, ColumnStatistics] = {
            column.name: ColumnStatistics() for column in schema
        }

    # ------------------------------------------------------------------ write

    def insert(self, row: dict) -> RowLocation:
        """Insert one row and return its location.

        Raises:
            SchemaError: If the row does not match the schema.
        """
        self.schema.validate_row(row)
        slot = self._allocate_slot()
        for column in self.schema:
            value = row.get(column.name, self._null_value(column.dtype))
            self._columns[column.name][slot] = value
            if column.name in row and column.dtype is not DataType.STRING:
                self.statistics[column.name].observe(float(value))
        self._live[slot] = True
        self._live_count += 1
        return RowLocation(slot)

    def insert_many(self, rows: dict[str, Sequence]) -> list[RowLocation]:
        """Bulk-insert column-oriented data.

        Args:
            rows: Mapping from column name to an equal-length sequence of
                values.  Columns not supplied must be nullable.

        Returns:
            The locations of the inserted rows, in insertion order.
        """
        if not rows:
            return []
        lengths = {len(values) for values in rows.values()}
        if len(lengths) != 1:
            raise StorageError("insert_many received columns of unequal length")
        count = lengths.pop()
        if count == 0:
            return []
        for name in rows:
            if name not in self.schema:
                raise StorageError(
                    f"insert_many references unknown column {name!r}"
                )
        for column in self.schema:
            if column.name not in rows and not column.nullable:
                raise SchemaError(
                    f"insert_many is missing non-nullable column "
                    f"{column.name!r}"
                )
        start = self._next_slot
        self._reserve(start + count)
        for column in self.schema:
            target = self._columns[column.name]
            if column.name in rows:
                values = np.asarray(rows[column.name])
                target[start:start + count] = values
                if column.dtype is not DataType.STRING:
                    self.statistics[column.name].observe_many(
                        values.astype(np.float64)
                    )
            else:
                target[start:start + count] = self._null_value(column.dtype)
        self._live[start:start + count] = True
        self._next_slot = start + count
        self._live_count += count
        return [RowLocation(slot) for slot in range(start, start + count)]

    def delete(self, location: RowLocation | int) -> None:
        """Mark the row at ``location`` as deleted.

        Raises:
            TupleNotFoundError: If the slot is out of range or already dead.
        """
        slot = self._check_live(location)
        self._live[slot] = False
        self._live_count -= 1

    def update(self, location: RowLocation | int, changes: dict) -> None:
        """Update columns of a live row in place.

        Raises:
            TupleNotFoundError: If the slot does not hold a live row.
            StorageError: If ``changes`` references an unknown column.
        """
        slot = self._check_live(location)
        for name, value in changes.items():
            if name not in self.schema:
                raise StorageError(f"update references unknown column {name!r}")
            self._columns[name][slot] = value
            if self.schema.column(name).dtype is not DataType.STRING:
                self.statistics[name].observe(float(value))

    # ------------------------------------------------------------------- read

    def fetch(self, location: RowLocation | int) -> dict:
        """Return the full row stored at ``location`` as a dict."""
        slot = self._check_live(location)
        return {
            column.name: self._columns[column.name][slot].item()
            if column.dtype is not DataType.STRING
            else self._columns[column.name][slot]
            for column in self.schema
        }

    def value(self, location: RowLocation | int, column_name: str):
        """Return a single column value of a live row."""
        slot = self._check_live(location)
        self.schema.position_of(column_name)
        value = self._columns[column_name][slot]
        return value.item() if hasattr(value, "item") else value

    def values(self, locations: Iterable[RowLocation | int],
               column_name: str) -> np.ndarray:
        """Vectorised fetch of one column for many row locations.

        Dead slots are not checked here (hot path); callers that may hold
        stale locations should use :meth:`is_live` first.
        """
        self.schema.position_of(column_name)
        slots = np.fromiter((int(loc) for loc in locations), dtype=np.int64)
        return self._columns[column_name][slots]

    def column_array(self, column_name: str) -> np.ndarray:
        """Return the live values of a column along with their slots.

        Returns:
            A read-only view of the column restricted to live slots, aligned
            with :meth:`live_slots`.
        """
        self.schema.position_of(column_name)
        return self._columns[column_name][: self._next_slot][
            self._live[: self._next_slot]
        ]

    def live_slots(self) -> np.ndarray:
        """Slot numbers of all live rows, ascending."""
        return np.flatnonzero(self._live[: self._next_slot])

    def is_live(self, location: RowLocation | int) -> bool:
        """Whether ``location`` refers to a live row."""
        slot = int(location)
        return 0 <= slot < self._next_slot and bool(self._live[slot])

    def liveness(self, slots: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`is_live`: a boolean mask aligned with ``slots``.

        Out-of-range slots are reported dead rather than raising, matching
        the scalar method; one fancy-index replaces per-row ``_check_live``
        calls on the lookup hot path.
        """
        slots = np.asarray(slots, dtype=np.int64)
        return self._live_mask(slots)[1]

    def filter_in_range(self, slots: np.ndarray, column_name: str,
                        low: float, high: float) -> np.ndarray:
        """Slots of live rows whose ``column_name`` value is in ``[low, high]``.

        This is the vectorized base-table validation step of the Hermit
        lookup: one fancy-index gather plus one boolean mask replace the
        per-row ``_check_live`` + ``.item()`` + ``contains`` sequence of the
        scalar path.  Input order is preserved; dead or out-of-range slots
        are silently dropped (they are simply not matches).
        """
        self.schema.position_of(column_name)
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size == 0:
            return slots
        if slots.size <= 8:
            # Point lookups resolve to a handful of candidates; a direct loop
            # beats the fixed cost of clip + three mask kernels there.
            live, column = self._live, self._columns[column_name]
            keep = [slot for slot in slots.tolist()
                    if 0 <= slot < self._next_slot and live[slot]
                    and low <= column[slot] <= high]
            return np.asarray(keep, dtype=np.int64)
        clipped, mask = self._live_mask(slots)
        values = self._columns[column_name][clipped]
        mask &= (values >= low) & (values <= high)
        return slots[mask]

    def in_range_mask(self, slots: np.ndarray, column_name: str,
                      lows: "np.ndarray | float",
                      highs: "np.ndarray | float") -> np.ndarray:
        """Boolean mask of live rows whose value lies in per-slot bounds.

        The segmented counterpart of :meth:`filter_in_range`: ``lows`` and
        ``highs`` may be arrays aligned with ``slots`` (each candidate is
        checked against *its own query's* predicate), so one call validates
        the concatenated candidates of a whole query batch.  Dead and
        out-of-range slots are masked out, matching the scalar method.
        """
        self.schema.position_of(column_name)
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size == 0:
            return np.zeros(0, dtype=bool)
        clipped, mask = self._live_mask(slots)
        values = self._columns[column_name][clipped]
        return mask & (values >= lows) & (values <= highs)

    def scan(self, column_names: Sequence[str] | None = None) -> Iterator[tuple[int, dict]]:
        """Iterate ``(slot, row)`` pairs over live rows.

        Args:
            column_names: Restrict the projected columns; all columns if None.
        """
        names = list(column_names) if column_names is not None else self.schema.column_names
        for name in names:
            self.schema.position_of(name)
        for slot in self.live_slots():
            yield int(slot), {name: self._columns[name][slot].item()
                              if self.schema.column(name).dtype is not DataType.STRING
                              else self._columns[name][slot]
                              for name in names}

    def project(self, column_names: Sequence[str]) -> tuple[np.ndarray, ...]:
        """Project live rows onto ``column_names`` as aligned numpy arrays.

        The first element of the returned tuple is always the slot array;
        subsequent elements are the requested columns.  This is the bulk path
        used by TRS-Tree construction ("ProjectTable" in Algorithm 1).
        """
        slots = self.live_slots()
        arrays = [slots]
        for name in column_names:
            self.schema.position_of(name)
            arrays.append(self._columns[name][slots])
        return tuple(arrays)

    # ------------------------------------------------------------- accounting

    @property
    def num_rows(self) -> int:
        """Number of live rows."""
        return self._live_count

    @property
    def num_slots(self) -> int:
        """Number of allocated slots (live + dead)."""
        return self._next_slot

    def value_range(self, column_name: str) -> tuple[float, float]:
        """The observed (min, max) of a column, from the optimizer statistics."""
        return self.statistics[column_name].value_range

    def memory_bytes(self) -> int:
        """Analytic size of the base table in bytes."""
        return self._size_model.table_bytes(
            self._next_slot, self.schema.row_byte_width()
        )

    def memory_report(self) -> MemoryReport:
        """Memory report with a single ``table`` component."""
        report = MemoryReport()
        report.add("table", self.memory_bytes())
        return report

    # ---------------------------------------------------------------- private

    def _allocate_slot(self) -> int:
        self._reserve(self._next_slot + 1)
        slot = self._next_slot
        self._next_slot += 1
        return slot

    def _reserve(self, capacity: int) -> None:
        if capacity <= self._capacity:
            return
        new_capacity = self._capacity
        while new_capacity < capacity:
            new_capacity *= 2
        for name, array in self._columns.items():
            grown = np.zeros(new_capacity, dtype=array.dtype)
            grown[: self._next_slot] = array[: self._next_slot]
            self._columns[name] = grown
        grown_live = np.zeros(new_capacity, dtype=bool)
        grown_live[: self._next_slot] = self._live[: self._next_slot]
        self._live = grown_live
        self._capacity = new_capacity

    def _live_mask(self, slots: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(in-bounds-clipped slots, live mask) for a slot array.

        Clipping only keeps the fancy index in bounds; clipped positions are
        masked out by the bounds check.
        """
        clipped = np.clip(slots, 0, max(0, self._next_slot - 1))
        mask = (slots >= 0) & (slots < self._next_slot) & self._live[clipped]
        return clipped, mask

    def _check_live(self, location: RowLocation | int) -> int:
        slot = int(location)
        if not (0 <= slot < self._next_slot) or not self._live[slot]:
            raise TupleNotFoundError(f"slot {slot} does not hold a live row")
        return slot

    @staticmethod
    def _null_value(dtype: DataType):
        if dtype is DataType.FLOAT64:
            return np.nan
        if dtype is DataType.INT64:
            return 0
        return None
