"""In-memory columnar base table.

This is the storage substrate of the "DBMS-X" side of the evaluation: an
append-only, column-oriented table whose columns are numpy arrays.  Rows are
addressed by their slot number (a :class:`~repro.storage.identifiers.RowLocation`);
deleting a row marks the slot dead rather than compacting, which mirrors how a
main-memory RDBMS with physical tuple pointers behaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import SchemaError, StorageError, TupleNotFoundError
from repro.storage.identifiers import RowLocation
from repro.storage.memory import DEFAULT_SIZE_MODEL, MemoryReport, SizeModel
from repro.storage.schema import Column, ColumnStatistics, DataType, TableSchema

_INITIAL_CAPACITY = 64


@dataclass
class TableSnapshot:
    """A copy of a table's physical state, as captured by :meth:`Table.snapshot`.

    Attributes:
        columns: Column name → array of the first ``next_slot`` values
            (dead slots included, so row locations stay stable across a
            checkpoint/restore round trip).
        live: Liveness bitmap aligned with the column arrays.
        next_slot: Number of allocated slots.
        statistics: Column name → ``(count, minimum, maximum)`` of the
            running optimizer statistics — these observe *all* values ever
            inserted (deleted rows included), so they cannot be rebuilt
            from the live data and must travel with the snapshot.
    """

    columns: dict[str, np.ndarray]
    live: np.ndarray
    next_slot: int
    statistics: dict[str, tuple[int, float, float]]


class Table:
    """A columnar, slot-addressed, in-memory table.

    Args:
        schema: The table schema.
        size_model: Cost model used for analytic memory accounting.

    Rows are inserted as dictionaries mapping column names to values; missing
    nullable columns are stored as NaN (floats) / 0 (ints) / None (strings).
    """

    def __init__(self, schema: TableSchema,
                 size_model: SizeModel = DEFAULT_SIZE_MODEL) -> None:
        self.schema = schema
        self._size_model = size_model
        self._capacity = _INITIAL_CAPACITY
        self._columns: dict[str, np.ndarray] = {
            column.name: np.zeros(self._capacity, dtype=column.dtype.numpy_dtype)
            for column in schema
        }
        self._live = np.zeros(self._capacity, dtype=bool)
        self._next_slot = 0
        self._live_count = 0
        self.statistics: dict[str, ColumnStatistics] = {
            column.name: ColumnStatistics() for column in schema
        }

    # ------------------------------------------------------------------ write

    def insert(self, row: dict) -> RowLocation:
        """Insert one row and return its location.

        Validation and value coercion happen before any slot is touched, so
        a rejected row leaves the table (including its running statistics)
        exactly as it was.

        Raises:
            SchemaError: If the row does not match the schema or a value
                cannot be coerced to its column's dtype.
        """
        self.schema.validate_row(row)
        prepared = []
        for column in self.schema:
            if column.name in row:
                stored, stats_value = self._coerce_value(column, row[column.name])
            else:
                stored, stats_value = self._null_value(column.dtype), None
            prepared.append((column.name, stored, stats_value))
        slot = self._allocate_slot()
        for name, stored, stats_value in prepared:
            self._columns[name][slot] = stored
            if stats_value is not None:
                self.statistics[name].observe(stats_value)
        self._live[slot] = True
        self._live_count += 1
        return RowLocation(slot)

    def insert_many(self, rows: dict[str, Sequence]) -> list[RowLocation]:
        """Bulk-insert column-oriented data.

        Args:
            rows: Mapping from column name to an equal-length sequence of
                values.  Columns not supplied must be nullable.

        Returns:
            The locations of the inserted rows, in insertion order.
        """
        count = self.validate_insert_columns(rows)
        if count == 0:
            return []
        # Coerce every supplied column before touching any storage or
        # statistics: a batch rejected here (bad dtype, unparsable string)
        # leaves the table bit-identical to before the call.
        prepared: list[tuple[str, object, np.ndarray | None]] = []
        for column in self.schema:
            if column.name not in rows:
                prepared.append((column.name, None, None))
                continue
            if column.dtype is DataType.STRING:
                prepared.append((column.name, rows[column.name], None))
                continue
            raw = np.asarray(rows[column.name])
            target_dtype = column.dtype.numpy_dtype
            try:
                coerced = (raw if raw.dtype == target_dtype
                           else raw.astype(target_dtype))
                observed = raw.astype(np.float64, copy=False)
            except (ValueError, TypeError) as error:
                raise SchemaError(
                    f"column {column.name!r} cannot coerce to "
                    f"{column.dtype.value}: {error}"
                ) from error
            prepared.append((column.name, coerced, observed))
        start = self._next_slot
        self._reserve(start + count)
        for name, values, observed in prepared:
            target = self._columns[name]
            if values is None:
                target[start:start + count] = self._null_value(
                    self.schema.column(name).dtype
                )
            else:
                target[start:start + count] = values
                if observed is not None:
                    self.statistics[name].observe_many(observed)
        self._live[start:start + count] = True
        self._next_slot = start + count
        self._live_count += count
        return [RowLocation(slot) for slot in range(start, start + count)]

    def validate_insert_columns(self, rows: dict[str, Sequence]) -> int:
        """Schema-check an ``insert_many`` batch without mutating anything.

        Returns the row count of the batch (0 for an empty one).  This is
        the pre-mutation validation gate: the write-ahead log calls it
        before a batch is logged so a record is only ever written for an
        operation that the table will accept.

        Raises:
            StorageError: On unequal column lengths or unknown columns.
            SchemaError: If a non-nullable column is missing.
        """
        if not rows:
            return 0
        lengths = {len(values) for values in rows.values()}
        if len(lengths) != 1:
            raise StorageError("insert_many received columns of unequal length")
        count = lengths.pop()
        if count == 0:
            return 0
        for name in rows:
            if name not in self.schema:
                raise StorageError(
                    f"insert_many references unknown column {name!r}"
                )
        for column in self.schema:
            if column.name not in rows and not column.nullable:
                raise SchemaError(
                    f"insert_many is missing non-nullable column "
                    f"{column.name!r}"
                )
        return count

    def validate_insert_many(self, rows: dict[str, Sequence]) -> int:
        """Full dry run of :meth:`insert_many`: schema *and* dtype checks.

        The write-ahead log uses this as its pre-logging gate — it must
        reject everything :meth:`insert_many` would reject (including
        values that fail dtype coercion), so a logged batch is guaranteed
        to replay successfully.

        Returns the row count of the batch (0 for an empty one).

        Raises:
            StorageError: On unequal column lengths or unknown columns.
            SchemaError: On a missing non-nullable column or an uncoercible
                value.
        """
        count = self.validate_insert_columns(rows)
        if count == 0:
            return 0
        for column in self.schema:
            if column.name not in rows or column.dtype is DataType.STRING:
                continue
            raw = np.asarray(rows[column.name])
            target_dtype = column.dtype.numpy_dtype
            try:
                if raw.dtype != target_dtype:
                    raw.astype(target_dtype)
                raw.astype(np.float64, copy=False)
            except (ValueError, TypeError) as error:
                raise SchemaError(
                    f"column {column.name!r} cannot coerce to "
                    f"{column.dtype.value}: {error}"
                ) from error
        return count

    def delete(self, location: RowLocation | int) -> None:
        """Mark the row at ``location`` as deleted.

        Raises:
            TupleNotFoundError: If the slot is out of range or already dead.
        """
        slot = self._check_live(location)
        self._live[slot] = False
        self._live_count -= 1

    def update(self, location: RowLocation | int, changes: dict) -> None:
        """Update columns of a live row in place.

        Every change is validated and coerced *before* the first column is
        written: a rejected update (unknown column, uncoercible value)
        leaves the row, and the running statistics, untouched — previously
        a failure on the second change could leave the first one applied.

        Raises:
            TupleNotFoundError: If the slot does not hold a live row.
            StorageError: If ``changes`` references an unknown column.
            SchemaError: If a value cannot be coerced to its column's dtype.
        """
        slot = self._check_live(location)
        prepared = self.validate_changes(changes)
        for name, (stored, stats_value) in prepared.items():
            self._columns[name][slot] = stored
            if stats_value is not None:
                self.statistics[name].observe(stats_value)

    def validate_changes(self, changes: dict) -> dict[str, tuple]:
        """Validate and coerce an update's changes without mutating anything.

        Returns:
            Column name → ``(stored value, observed float or None)``, ready
            to apply.  Callers that need the post-coercion value before the
            write happens (the primary-key re-keying check, the write-ahead
            log) use this as the pre-mutation gate.

        Raises:
            StorageError: If a change references an unknown column.
            SchemaError: If a value cannot be coerced to its column's dtype.
        """
        prepared: dict[str, tuple] = {}
        for name, value in changes.items():
            if name not in self.schema:
                raise StorageError(f"update references unknown column {name!r}")
            prepared[name] = self._coerce_value(self.schema.column(name), value)
        return prepared

    # ------------------------------------------------------------------- read

    def fetch(self, location: RowLocation | int) -> dict:
        """Return the full row stored at ``location`` as a dict."""
        slot = self._check_live(location)
        return {
            column.name: self._columns[column.name][slot].item()
            if column.dtype is not DataType.STRING
            else self._columns[column.name][slot]
            for column in self.schema
        }

    def value(self, location: RowLocation | int, column_name: str):
        """Return a single column value of a live row."""
        slot = self._check_live(location)
        self.schema.position_of(column_name)
        value = self._columns[column_name][slot]
        return value.item() if hasattr(value, "item") else value

    def values(self, locations: Iterable[RowLocation | int],
               column_name: str) -> np.ndarray:
        """Vectorised fetch of one column for many row locations.

        Dead slots are not checked here (hot path); callers that may hold
        stale locations should use :meth:`is_live` first.
        """
        self.schema.position_of(column_name)
        slots = np.fromiter((int(loc) for loc in locations), dtype=np.int64)
        return self._columns[column_name][slots]

    def column_array(self, column_name: str) -> np.ndarray:
        """Return the live values of a column along with their slots.

        Returns:
            A read-only view of the column restricted to live slots, aligned
            with :meth:`live_slots`.
        """
        self.schema.position_of(column_name)
        return self._columns[column_name][: self._next_slot][
            self._live[: self._next_slot]
        ]

    def live_slots(self) -> np.ndarray:
        """Slot numbers of all live rows, ascending."""
        return np.flatnonzero(self._live[: self._next_slot])

    def is_live(self, location: RowLocation | int) -> bool:
        """Whether ``location`` refers to a live row."""
        slot = int(location)
        return 0 <= slot < self._next_slot and bool(self._live[slot])

    def liveness(self, slots: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`is_live`: a boolean mask aligned with ``slots``.

        Out-of-range slots are reported dead rather than raising, matching
        the scalar method; one fancy-index replaces per-row ``_check_live``
        calls on the lookup hot path.
        """
        slots = np.asarray(slots, dtype=np.int64)
        return self._live_mask(slots)[1]

    def filter_in_range(self, slots: np.ndarray, column_name: str,
                        low: float, high: float) -> np.ndarray:
        """Slots of live rows whose ``column_name`` value is in ``[low, high]``.

        This is the vectorized base-table validation step of the Hermit
        lookup: one fancy-index gather plus one boolean mask replace the
        per-row ``_check_live`` + ``.item()`` + ``contains`` sequence of the
        scalar path.  Input order is preserved; dead or out-of-range slots
        are silently dropped (they are simply not matches).
        """
        self.schema.position_of(column_name)
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size == 0:
            return slots
        if slots.size <= 8:
            # Point lookups resolve to a handful of candidates; a direct loop
            # beats the fixed cost of clip + three mask kernels there.
            live, column = self._live, self._columns[column_name]
            keep = [slot for slot in slots.tolist()
                    if 0 <= slot < self._next_slot and live[slot]
                    and low <= column[slot] <= high]
            return np.asarray(keep, dtype=np.int64)
        clipped, mask = self._live_mask(slots)
        values = self._columns[column_name][clipped]
        mask &= (values >= low) & (values <= high)
        return slots[mask]

    def in_range_mask(self, slots: np.ndarray, column_name: str,
                      lows: "np.ndarray | float",
                      highs: "np.ndarray | float") -> np.ndarray:
        """Boolean mask of live rows whose value lies in per-slot bounds.

        The segmented counterpart of :meth:`filter_in_range`: ``lows`` and
        ``highs`` may be arrays aligned with ``slots`` (each candidate is
        checked against *its own query's* predicate), so one call validates
        the concatenated candidates of a whole query batch.  Dead and
        out-of-range slots are masked out, matching the scalar method.
        """
        self.schema.position_of(column_name)
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size == 0:
            return np.zeros(0, dtype=bool)
        clipped, mask = self._live_mask(slots)
        values = self._columns[column_name][clipped]
        return mask & (values >= lows) & (values <= highs)

    def scan(self, column_names: Sequence[str] | None = None) -> Iterator[tuple[int, dict]]:
        """Iterate ``(slot, row)`` pairs over live rows.

        Args:
            column_names: Restrict the projected columns; all columns if None.
        """
        names = list(column_names) if column_names is not None else self.schema.column_names
        for name in names:
            self.schema.position_of(name)
        for slot in self.live_slots():
            yield int(slot), {name: self._columns[name][slot].item()
                              if self.schema.column(name).dtype is not DataType.STRING
                              else self._columns[name][slot]
                              for name in names}

    def project(self, column_names: Sequence[str]) -> tuple[np.ndarray, ...]:
        """Project live rows onto ``column_names`` as aligned numpy arrays.

        The first element of the returned tuple is always the slot array;
        subsequent elements are the requested columns.  This is the bulk path
        used by TRS-Tree construction ("ProjectTable" in Algorithm 1).
        """
        slots = self.live_slots()
        arrays = [slots]
        for name in column_names:
            self.schema.position_of(name)
            arrays.append(self._columns[name][slots])
        return tuple(arrays)

    # ------------------------------------------------------------- accounting

    @property
    def num_rows(self) -> int:
        """Number of live rows."""
        return self._live_count

    @property
    def num_slots(self) -> int:
        """Number of allocated slots (live + dead)."""
        return self._next_slot

    def value_range(self, column_name: str) -> tuple[float, float]:
        """The observed (min, max) of a column, from the optimizer statistics."""
        return self.statistics[column_name].value_range

    def memory_bytes(self) -> int:
        """Analytic size of the base table in bytes."""
        return self._size_model.table_bytes(
            self._next_slot, self.schema.row_byte_width()
        )

    def memory_report(self) -> MemoryReport:
        """Memory report with a single ``table`` component."""
        report = MemoryReport()
        report.add("table", self.memory_bytes())
        return report

    # ---------------------------------------------------------------- private

    def _allocate_slot(self) -> int:
        self._reserve(self._next_slot + 1)
        slot = self._next_slot
        self._next_slot += 1
        return slot

    def _reserve(self, capacity: int) -> None:
        if capacity <= self._capacity:
            return
        new_capacity = self._capacity
        while new_capacity < capacity:
            new_capacity *= 2
        for name, array in self._columns.items():
            grown = np.zeros(new_capacity, dtype=array.dtype)
            grown[: self._next_slot] = array[: self._next_slot]
            self._columns[name] = grown
        grown_live = np.zeros(new_capacity, dtype=bool)
        grown_live[: self._next_slot] = self._live[: self._next_slot]
        self._live = grown_live
        self._capacity = new_capacity

    def _live_mask(self, slots: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(in-bounds-clipped slots, live mask) for a slot array.

        Clipping only keeps the fancy index in bounds; clipped positions are
        masked out by the bounds check.
        """
        clipped = np.clip(slots, 0, max(0, self._next_slot - 1))
        mask = (slots >= 0) & (slots < self._next_slot) & self._live[clipped]
        return clipped, mask

    def _check_live(self, location: RowLocation | int) -> int:
        slot = int(location)
        if not (0 <= slot < self._next_slot) or not self._live[slot]:
            raise TupleNotFoundError(f"slot {slot} does not hold a live row")
        return slot

    def _coerce_value(self, column: Column, value) -> tuple:
        """Coerce one value to its column's stored dtype, without mutating.

        Returns:
            ``(stored value, float observed by the statistics or None)``.
            The coercion uses numpy assignment semantics (``2.7`` into an
            INT64 column stores ``2``) while the statistics observe the raw
            value, matching the behaviour of the apply loops.

        Raises:
            SchemaError: If the value cannot be stored in the column.
        """
        if column.dtype is DataType.STRING:
            return value, None
        scratch = np.empty(1, dtype=column.dtype.numpy_dtype)
        try:
            scratch[0] = value
            observed = float(value)
        except (ValueError, TypeError, OverflowError) as error:
            raise SchemaError(
                f"value {value!r} cannot be stored in column "
                f"{column.name!r} ({column.dtype.value})"
            ) from error
        return scratch[0], observed

    # ------------------------------------------------------------- durability

    def snapshot(self) -> TableSnapshot:
        """Copy the table's physical state for a checkpoint."""
        n = self._next_slot
        return TableSnapshot(
            columns={name: array[:n].copy()
                     for name, array in self._columns.items()},
            live=self._live[:n].copy(),
            next_slot=n,
            statistics={name: (stats.count, stats.minimum, stats.maximum)
                        for name, stats in self.statistics.items()},
        )

    def restore_snapshot(self, columns: dict[str, Sequence], live: Sequence,
                         next_slot: int,
                         statistics: dict[str, tuple] | None = None) -> None:
        """Restore physical state captured by :meth:`snapshot` (recovery).

        Only valid on a freshly created, empty table: restoring is the
        checkpoint-load half of recovery, never a general overwrite.

        Raises:
            StorageError: If the table is not empty or the snapshot does
                not line up with the schema.
        """
        if self._next_slot:
            raise StorageError(
                "restore_snapshot requires an empty table "
                f"(this one has {self._next_slot} allocated slots)"
            )
        live = np.asarray(live, dtype=bool)
        if len(live) != next_slot:
            raise StorageError("snapshot liveness length != next_slot")
        for column in self.schema:
            if column.name not in columns:
                raise StorageError(
                    f"snapshot is missing column {column.name!r}"
                )
            if len(columns[column.name]) != next_slot:
                raise StorageError(
                    f"snapshot column {column.name!r} length != next_slot"
                )
        self._reserve(max(next_slot, 1))
        for column in self.schema:
            self._columns[column.name][:next_slot] = np.asarray(
                columns[column.name], dtype=column.dtype.numpy_dtype
            )
        self._live[:next_slot] = live
        self._next_slot = next_slot
        self._live_count = int(live.sum())
        for name, (count, minimum, maximum) in (statistics or {}).items():
            if name in self.statistics:
                self.statistics[name] = ColumnStatistics(
                    count=int(count), minimum=float(minimum),
                    maximum=float(maximum),
                )

    @staticmethod
    def _null_value(dtype: DataType):
        if dtype is DataType.FLOAT64:
            return np.nan
        if dtype is DataType.INT64:
            return 0
        return None
