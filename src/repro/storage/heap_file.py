"""Page-based heap table for the disk-based substrate.

Stores tuples of a :class:`~repro.storage.schema.TableSchema` in slotted pages
behind a :class:`~repro.storage.buffer_pool.BufferPool`.  Row locations are
``page_id * slots_per_page + slot`` so that the same integer identifiers flow
through the indexes regardless of substrate.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import PageError, TupleNotFoundError
from repro.storage.buffer_pool import BufferPool
from repro.storage.identifiers import decode_page_slot, encode_page_slot
from repro.storage.pages import slots_per_page
from repro.storage.schema import TableSchema


class HeapFile:
    """A heap of fixed-width tuples stored in buffered pages.

    Args:
        schema: Table schema; determines the per-page tuple capacity.
        buffer_pool: Pool through which every page access goes.
    """

    def __init__(self, schema: TableSchema, buffer_pool: BufferPool) -> None:
        self.schema = schema
        self.pool = buffer_pool
        self.slots_per_page = slots_per_page(
            schema.row_byte_width(), buffer_pool.disk.page_size
        )
        self._page_ids: list[int] = []
        self._num_rows = 0

    # ------------------------------------------------------------------ write

    def insert(self, row: dict) -> int:
        """Insert a row and return its encoded location."""
        self.schema.validate_row(row)
        payload = tuple(row.get(column.name) for column in self.schema)
        page = self._page_with_space()
        slot = page.insert(payload)
        self.pool.unpin_page(page.page_id, dirty=True)
        self._num_rows += 1
        return encode_page_slot(page.page_id, slot, self.slots_per_page)

    def insert_many(self, rows: Sequence[dict]) -> list[int]:
        """Insert many rows, returning their locations in order."""
        return [self.insert(row) for row in rows]

    def delete(self, location: int) -> None:
        """Delete the row at ``location``.

        Raises:
            TupleNotFoundError: If ``location`` is out of range or does not
                hold a live tuple.
        """
        page_id, slot = self._decode(location)
        page = self.pool.fetch_page(page_id)
        try:
            page.delete(slot)
        except PageError:
            raise TupleNotFoundError(
                f"location {location} does not hold a live tuple"
            ) from None
        finally:
            self.pool.unpin_page(page_id, dirty=True)
        self._num_rows -= 1

    # ------------------------------------------------------------------- read

    def fetch(self, location: int) -> dict:
        """Fetch the row at ``location`` as a dict.

        Raises:
            TupleNotFoundError: If ``location`` is out of range or does not
                hold a live tuple.
        """
        payload = self._read(location)
        return {column.name: payload[i] for i, column in enumerate(self.schema)}

    def value(self, location: int, column_name: str):
        """Fetch a single column of the row at ``location``.

        Raises:
            TupleNotFoundError: If ``location`` is out of range or does not
                hold a live tuple.
        """
        position = self.schema.position_of(column_name)
        return self._read(location)[position]

    def _read(self, location: int) -> tuple:
        """Read the raw tuple at ``location``, typed-error on dead slots."""
        page_id, slot = self._decode(location)
        page = self.pool.fetch_page(page_id)
        try:
            return page.read(slot)
        except PageError:
            raise TupleNotFoundError(
                f"location {location} does not hold a live tuple"
            ) from None
        finally:
            self.pool.unpin_page(page_id)

    def scan(self) -> Iterator[tuple[int, dict]]:
        """Iterate ``(location, row)`` pairs over all live rows."""
        for page_id in self._page_ids:
            page = self.pool.fetch_page(page_id)
            try:
                for slot, payload in enumerate(page.rows):
                    if payload is None:
                        continue
                    location = encode_page_slot(page_id, slot, self.slots_per_page)
                    yield location, {
                        column.name: payload[i]
                        for i, column in enumerate(self.schema)
                    }
            finally:
                self.pool.unpin_page(page_id)

    @property
    def num_rows(self) -> int:
        """Number of live rows."""
        return self._num_rows

    @property
    def num_pages(self) -> int:
        """Number of heap pages allocated."""
        return len(self._page_ids)

    # ---------------------------------------------------------------- private

    def _page_with_space(self):
        if self._page_ids:
            last_id = self._page_ids[-1]
            page = self.pool.fetch_page(last_id)
            if not page.is_full:
                return page
            self.pool.unpin_page(last_id)
        page = self.pool.new_page(self.slots_per_page)
        self._page_ids.append(page.page_id)
        return page

    def _decode(self, location: int) -> tuple[int, int]:
        page_id, slot = decode_page_slot(int(location), self.slots_per_page)
        if page_id not in set(self._page_ids):
            raise TupleNotFoundError(f"location {location} is not in this heap file")
        return page_id, slot
