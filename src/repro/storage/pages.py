"""Slotted heap pages for the disk-based substrate.

The PostgreSQL side of the evaluation (Figure 24) accesses tuples through a
page-structured heap behind a buffer pool.  To keep the simulation honest we
model pages with a fixed byte budget: each page holds at most
``capacity = (page_size - header) // row_width`` tuples, and every access to a
tuple must first bring its page into the buffer pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PageError

DEFAULT_PAGE_SIZE = 8192
PAGE_HEADER_BYTES = 24
SLOT_POINTER_BYTES = 4


def slots_per_page(row_byte_width: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Number of tuples of width ``row_byte_width`` that fit in one page."""
    usable = page_size - PAGE_HEADER_BYTES
    per_row = row_byte_width + SLOT_POINTER_BYTES
    capacity = usable // per_row
    if capacity <= 0:
        raise PageError(
            f"row width {row_byte_width} does not fit in a {page_size}-byte page"
        )
    return capacity


@dataclass
class SlottedPage:
    """A heap page holding fixed-width tuples in slots.

    Attributes:
        page_id: Identifier of the page within its file.
        capacity: Maximum number of tuples the page can hold.
        rows: Slot-indexed tuple payloads (``None`` marks a free/deleted slot).
    """

    page_id: int
    capacity: int
    rows: list[tuple | None] = field(default_factory=list)

    @property
    def num_live(self) -> int:
        """Number of occupied slots."""
        return sum(1 for row in self.rows if row is not None)

    @property
    def is_full(self) -> bool:
        """Whether no further tuple can be appended."""
        return len(self.rows) >= self.capacity and all(
            row is not None for row in self.rows
        )

    def insert(self, row: tuple) -> int:
        """Insert ``row`` into the first free slot and return the slot number.

        Raises:
            PageError: If the page is full.
        """
        for slot, existing in enumerate(self.rows):
            if existing is None:
                self.rows[slot] = row
                return slot
        if len(self.rows) >= self.capacity:
            raise PageError(f"page {self.page_id} is full")
        self.rows.append(row)
        return len(self.rows) - 1

    def read(self, slot: int) -> tuple:
        """Return the tuple stored in ``slot``.

        Raises:
            PageError: If the slot is out of range or empty.
        """
        if not (0 <= slot < len(self.rows)) or self.rows[slot] is None:
            raise PageError(f"page {self.page_id} has no live tuple in slot {slot}")
        return self.rows[slot]

    def delete(self, slot: int) -> None:
        """Free ``slot``.

        Raises:
            PageError: If the slot is out of range or already empty.
        """
        self.read(slot)
        self.rows[slot] = None

    def update(self, slot: int, row: tuple) -> None:
        """Overwrite the tuple in ``slot`` with ``row``."""
        self.read(slot)
        self.rows[slot] = row
