"""Analytic memory accounting.

The paper's central claim is about *space*: a TRS-Tree is orders of magnitude
smaller than a complete B+-tree over the same column.  Measuring the resident
size of Python objects would tell us more about CPython's allocator than about
the data structures, so every structure in this library instead reports its
size through a shared analytic :class:`SizeModel` that charges the same costs
the paper's C++ implementation would pay: 8-byte keys, 8-byte pointers, node
headers, and hash-table bucket overheads.

All figures that report "Memory (MB/GB)" (Figures 5, 7, 18, 19, 20, 23, 28,
30) are produced from these estimates, which makes the Hermit/Baseline/CM
ratios directly comparable to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field


BYTES_PER_MB = 1024.0 * 1024.0
BYTES_PER_GB = 1024.0 * 1024.0 * 1024.0


@dataclass(frozen=True)
class SizeModel:
    """Cost constants used to estimate data-structure sizes.

    Attributes:
        key_bytes: Size of an index key (the paper uses 8-byte numerics).
        pointer_bytes: Size of a child pointer / tuple identifier.
        node_header_bytes: Fixed per-node overhead (type tag, count, latch).
        hash_entry_overhead_bytes: Per-entry overhead of a hash table beyond
            the key and value themselves (bucket pointer + load-factor slack).
        leaf_model_bytes: Size of one linear-regression model in a TRS-Tree
            leaf: slope, intercept, epsilon, range bounds (5 doubles).
    """

    key_bytes: int = 8
    pointer_bytes: int = 8
    node_header_bytes: int = 24
    hash_entry_overhead_bytes: int = 16
    leaf_model_bytes: int = 40

    def btree_bytes(self, num_entries: int, node_capacity: int = 16) -> int:
        """Estimate the size of a B+-tree holding ``num_entries`` entries.

        Leaf nodes store (key, pointer) pairs; internal nodes store keys plus
        child pointers.  A fill factor of 0.7 approximates the steady state of
        a bulk-loaded-then-maintained tree.

        Args:
            num_entries: Number of indexed entries.
            node_capacity: Entries per node before splitting.
        """
        if num_entries <= 0:
            return self.node_header_bytes
        fill = 0.7
        entry_bytes = self.key_bytes + self.pointer_bytes
        leaf_nodes = max(1, int(num_entries / (node_capacity * fill)) + 1)
        leaf_bytes = leaf_nodes * self.node_header_bytes + num_entries * entry_bytes
        # Internal levels shrink geometrically by the node capacity.
        internal_bytes = 0
        level_nodes = leaf_nodes
        while level_nodes > 1:
            level_nodes = max(1, int(level_nodes / (node_capacity * fill)) + 1)
            internal_bytes += level_nodes * (
                self.node_header_bytes
                + node_capacity * (self.key_bytes + self.pointer_bytes)
            )
            if level_nodes == 1:
                break
        return leaf_bytes + internal_bytes

    def hash_table_bytes(self, num_entries: int) -> int:
        """Estimate the size of a hash table mapping keys to identifiers."""
        if num_entries <= 0:
            return self.node_header_bytes
        per_entry = (
            self.key_bytes + self.pointer_bytes + self.hash_entry_overhead_bytes
        )
        return self.node_header_bytes + num_entries * per_entry

    def sorted_array_bytes(self, num_entries: int) -> int:
        """Estimate the size of a sorted-array index (packed key/tid pairs)."""
        if num_entries <= 0:
            return self.node_header_bytes
        return self.node_header_bytes + num_entries * (
            self.key_bytes + self.pointer_bytes
        )

    def table_bytes(self, num_rows: int, row_byte_width: int) -> int:
        """Estimate the size of a base table."""
        return self.node_header_bytes + num_rows * row_byte_width

    def trs_leaf_bytes(self, num_outliers: int) -> int:
        """Estimate the size of one TRS-Tree leaf node."""
        return (
            self.node_header_bytes
            + self.leaf_model_bytes
            + self.hash_table_bytes(num_outliers)
        )

    def trs_internal_bytes(self, fanout: int) -> int:
        """Estimate the size of one TRS-Tree internal node."""
        return self.node_header_bytes + fanout * self.pointer_bytes + 2 * self.key_bytes


DEFAULT_SIZE_MODEL = SizeModel()


@dataclass
class MemoryReport:
    """A labelled collection of memory usages, in bytes.

    Used to build the "space breakdown" bars of Figures 5b, 7b and 20b: the
    base table, the pre-existing indexes, and the newly created indexes.
    """

    components: dict[str, int] = field(default_factory=dict)

    def add(self, label: str, num_bytes: int) -> None:
        """Accumulate ``num_bytes`` under ``label``."""
        self.components[label] = self.components.get(label, 0) + int(num_bytes)

    @property
    def total_bytes(self) -> int:
        """Total bytes across all components."""
        return sum(self.components.values())

    @property
    def total_mb(self) -> float:
        """Total size in MiB."""
        return self.total_bytes / BYTES_PER_MB

    def fraction(self, label: str) -> float:
        """Fraction of the total contributed by ``label`` (0 if total is 0)."""
        total = self.total_bytes
        if total == 0:
            return 0.0
        return self.components.get(label, 0) / total

    def merged(self, other: "MemoryReport") -> "MemoryReport":
        """Return a new report combining this one with ``other``."""
        merged = MemoryReport(dict(self.components))
        for label, num_bytes in other.components.items():
            merged.add(label, num_bytes)
        return merged

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{label}={num_bytes / BYTES_PER_MB:.2f}MB"
            for label, num_bytes in sorted(self.components.items())
        )
        return f"MemoryReport({parts}, total={self.total_mb:.2f}MB)"
