"""Tuple identifier schemes.

The paper (Section 5.1) distinguishes two ways a secondary index can refer to
a tuple:

* **Logical pointers** — the secondary index stores the tuple's *primary key*;
  every secondary-index lookup must then traverse the primary index to obtain
  the tuple location (MySQL/InnoDB style).
* **Physical pointers** — the secondary index stores the tuple's *location*
  directly (PostgreSQL style), avoiding the primary-index hop but requiring
  index maintenance whenever a tuple moves.

Hermit must work with both, and the evaluation reports every throughput figure
under both schemes, so the identifier scheme is a first-class concept here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PointerScheme(enum.Enum):
    """Which identifier a secondary index stores for each key."""

    LOGICAL = "logical"
    PHYSICAL = "physical"

    @property
    def needs_primary_lookup(self) -> bool:
        """Whether resolving an identifier requires a primary-index probe."""
        return self is PointerScheme.LOGICAL


@dataclass(frozen=True, order=True)
class RowLocation:
    """Physical location of a tuple: a row slot in the base table.

    For the in-memory columnar table this is simply the row position.  For the
    page-based heap file it is encoded as ``(page_id, slot)`` flattened into a
    single integer so that both substrates share one identifier type.
    """

    slot: int

    def __int__(self) -> int:
        return self.slot


# Type aliases used throughout the code base.  A *tuple identifier* is either a
# primary-key value (logical scheme) or a RowLocation slot (physical scheme);
# both are carried as plain Python ints/floats to keep hot paths cheap.
TupleId = int | float


def encode_page_slot(page_id: int, slot: int, slots_per_page: int) -> int:
    """Flatten ``(page_id, slot)`` into a single integer row location."""
    return page_id * slots_per_page + slot


def decode_page_slot(location: int, slots_per_page: int) -> tuple[int, int]:
    """Inverse of :func:`encode_page_slot`."""
    return divmod(location, slots_per_page)
