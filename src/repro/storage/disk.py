"""Simulated disk manager and I/O cost model.

The paper's disk-based experiments run against a real NVMe SSD through
PostgreSQL.  This substrate replaces the device with an in-memory page store
that *counts* every page read and write and charges them against an
:class:`IOCostModel`.  Benchmarks then report throughput over *simulated time*
(CPU time plus charged I/O latency), which reproduces the shape of Figure 24 —
host-index probes and heap fetches dominating, TRS-Tree lookup negligible —
without depending on the machine the reproduction happens to run on.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.storage.pages import DEFAULT_PAGE_SIZE, SlottedPage


@dataclass
class IOCostModel:
    """Latency charged per simulated I/O, in microseconds.

    Defaults approximate a PCIe NVMe SSD doing 8 KiB random reads with an OS
    page-cache miss: ~90us read, ~30us write.
    """

    read_latency_us: float = 90.0
    write_latency_us: float = 30.0


@dataclass
class IOStatistics:
    """Counters of simulated I/O activity."""

    page_reads: int = 0
    page_writes: int = 0
    pages_allocated: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.page_reads = 0
        self.page_writes = 0
        self.pages_allocated = 0


class DiskManager:
    """An in-memory "disk" of slotted pages with I/O accounting.

    Args:
        page_size: Logical page size in bytes (accounting only).
        cost_model: Latency model used to convert counters into simulated time.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE,
                 cost_model: IOCostModel | None = None) -> None:
        self.page_size = page_size
        self.cost_model = cost_model or IOCostModel()
        self.stats = IOStatistics()
        self._pages: dict[int, SlottedPage] = {}
        self._next_page_id = 0

    def allocate_page(self, capacity: int) -> SlottedPage:
        """Allocate a fresh page with ``capacity`` tuple slots."""
        page = SlottedPage(page_id=self._next_page_id, capacity=capacity)
        self._pages[page.page_id] = page
        self._next_page_id += 1
        self.stats.pages_allocated += 1
        return copy.deepcopy(page)

    def read_page(self, page_id: int) -> SlottedPage:
        """Read a page from "disk", charging one read.

        Returns a copy: mutations only reach the disk through
        :meth:`write_page`, exactly as with a real buffer pool.

        Raises:
            StorageError: If the page was never allocated.
        """
        if page_id not in self._pages:
            raise StorageError(f"page {page_id} has not been allocated")
        self.stats.page_reads += 1
        return copy.deepcopy(self._pages[page_id])

    def write_page(self, page: SlottedPage) -> None:
        """Write a page back to "disk", charging one write."""
        if page.page_id not in self._pages:
            raise StorageError(f"page {page.page_id} has not been allocated")
        self.stats.page_writes += 1
        self._pages[page.page_id] = copy.deepcopy(page)

    @property
    def num_pages(self) -> int:
        """Number of allocated pages."""
        return len(self._pages)

    def simulated_io_seconds(self) -> float:
        """Total simulated I/O latency accumulated so far, in seconds."""
        micros = (
            self.stats.page_reads * self.cost_model.read_latency_us
            + self.stats.page_writes * self.cost_model.write_latency_us
        )
        return micros / 1e6

    def disk_bytes(self) -> int:
        """Total bytes occupied on the simulated device."""
        return self.num_pages * self.page_size
