"""Repo-specific static analysis: ``python -m repro.analysis src tests``.

The framework lives in :mod:`repro.analysis.framework`, the invariant
rules in :mod:`repro.analysis.rules`, and the CLI in ``__main__``.  The
dynamic counterpart — the epoch-lock discipline detector — is
``EpochManager(debug=True)`` in :mod:`repro.engine.epochs`.
"""

from repro.analysis.framework import (
    Finding,
    Module,
    Rule,
    all_rules,
    analyze_modules,
    analyze_paths,
    register,
)

__all__ = [
    "Finding",
    "Module",
    "Rule",
    "all_rules",
    "analyze_modules",
    "analyze_paths",
    "register",
]
