"""The rule catalogue.  Importing this package registers every rule.

See ``docs/static_analysis.md`` for the invariant each rule protects and
``repro.analysis.framework`` for how to add one.
"""

from repro.analysis.rules.broad_except import BroadExceptRationale
from repro.analysis.rules.durability_order import DurabilityOrdering
from repro.analysis.rules.epoch_static import EpochDiscipline
from repro.analysis.rules.flat_view import FlatViewInvalidation
from repro.analysis.rules.hot_path import HotPathPurity
from repro.analysis.rules.result_cache_discipline import ResultCacheDiscipline
from repro.analysis.rules.sharding_protocol import ShardingProtocolHygiene

__all__ = [
    "BroadExceptRationale",
    "DurabilityOrdering",
    "EpochDiscipline",
    "FlatViewInvalidation",
    "HotPathPurity",
    "ResultCacheDiscipline",
    "ShardingProtocolHygiene",
]
