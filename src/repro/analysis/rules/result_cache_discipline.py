"""REP007: mutators of lock-owning cache state must hold the lock.

``ResultCache`` (``src/repro/cache/result_cache.py``) is probed and
filled from the engine's *read* path, where many reader threads run
concurrently under the shared epoch side.  The epoch protocol therefore
cannot serialise its bookkeeping — the cache owns a mutex instead, and
the discipline is structural: **every** method that mutates cache state
either takes ``with self._lock:`` somewhere in its body, runs under the
epoch *write* side (``with self.epochs.write():``), or is a
``*_locked``-suffixed helper whose contract is "only called while the
lock is already held".  A mutator that forgets all three corrupts the
LRU order or the byte accounting under concurrent serving load — the
kind of bug that only surfaces as an impossible stats snapshot hours
into a soak run.

The rule applies to any class whose ``__init__`` assigns *both*
``self._lock`` and ``self._entries`` (the lock-owning cache shape; the
serving server owns a lock but no entry map, the B+-tree owns entries
but no lock — neither is in scope).  Mutation detection mirrors REP001:
assigning, augmenting or deleting one of the cache-state attributes
below, or calling a mutating container method on one.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import (
    Finding,
    Module,
    Rule,
    iter_methods,
    register,
    self_attr_target,
)

#: Attributes that make up guarded cache state.
CACHE_STATE = frozenset({
    "_entries", "_bytes", "_hits", "_misses", "_stale_evictions",
    "_lru_evictions", "_admission_deferrals", "_per_table",
    "_seen", "_seen_old",
})

#: Container methods that mutate in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "move_to_end",
})


def _mutated_state(method: ast.FunctionDef) -> set[str]:
    """Cache-state attributes this method mutates, by name."""
    mutated: set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                base = (target.value if isinstance(target, ast.Subscript)
                        else target)
                attr = self_attr_target(base)
                if attr in CACHE_STATE:
                    mutated.add(attr)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                base = (target.value if isinstance(target, ast.Subscript)
                        else target)
                attr = self_attr_target(base)
                if attr in CACHE_STATE:
                    mutated.add(attr)
        elif isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATING_METHODS):
                attr = self_attr_target(node.func.value)
                if attr in CACHE_STATE:
                    mutated.add(attr)
    return mutated


def _holds_lock(method: ast.FunctionDef) -> bool:
    """Whether the body contains ``with self._lock:`` or the write side.

    Like REP001's clear-site check this is reachability-insensitive: the
    cheap discipline is to take the lock unconditionally around every
    mutation, which every current site does.
    """
    for node in ast.walk(method):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            expr = item.context_expr
            if self_attr_target(expr) == "_lock":
                return True
            if (isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "write"
                    and self_attr_target(expr.func.value) == "epochs"):
                return True
    return False


@register
class ResultCacheDiscipline(Rule):
    rule_id = "REP007"
    name = "result-cache-discipline"
    description = ("methods mutating lock-owning cache state must hold "
                   "self._lock, run under the epoch write side, or be "
                   "_locked-suffixed helpers")

    def check_module(self, module: Module) -> Iterator[Finding]:
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            methods = list(iter_methods(class_node))
            init = next((m for m in methods if m.name == "__init__"), None)
            if init is None:
                continue
            assigned = {
                self_attr_target(target)
                for node in ast.walk(init) if isinstance(node, ast.Assign)
                for target in node.targets
            }
            if not {"_lock", "_entries"} <= assigned:
                continue
            for method in methods:
                if method.name == "__init__":
                    continue
                if method.name.endswith("_locked"):
                    continue
                mutated = _mutated_state(method)
                if mutated and not _holds_lock(method):
                    attrs = ", ".join(sorted(mutated))
                    yield Finding(
                        rule=self.rule_id,
                        message=(
                            f"{class_node.name}.{method.name} mutates "
                            f"{attrs} without taking self._lock (or the "
                            f"epoch write side) — concurrent probes would "
                            f"corrupt the cache bookkeeping"
                        ),
                        path=module.path, line=method.lineno,
                    )
