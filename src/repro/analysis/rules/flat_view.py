"""REP001: mutators of flat-view caches must drop the cache.

``BPlusTree`` and ``OutlierBuffer`` keep a cached *flat view* of their
entries (``self._flat_view``) that turns batched lookups into pure array
passes.  The cache is only correct while the underlying entries are
unchanged, so **every** method that mutates entry state must end the
cache's life with ``self._flat_view = None`` — the invariant behind the
scattered assignment sites in ``src/repro/index/bptree.py`` and
``src/repro/core/outliers.py``.  A new mutator that forgets the drop
produces silently stale batch results, which no test notices until a
workload happens to interleave that mutator with ``*_many`` lookups.

The rule applies to any class whose ``__init__`` assigns
``self._flat_view``.  A method counts as a mutator when it assigns,
augments or deletes one of the entry-state attributes below, or calls a
mutating container method on one; it satisfies the invariant when its
body contains ``self._flat_view = None`` on some path (the rule is
reachability-insensitive by design — the cheap discipline is to clear
unconditionally, which every current site does).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import (
    Finding,
    Module,
    Rule,
    iter_methods,
    register,
    self_attr_target,
)

#: Attributes that hold entry state feeding the flat view.
ENTRY_STATE = frozenset({
    "_entries", "_sorted_keys", "_count", "_num_entries", "_root", "_height",
})

#: Container methods that mutate in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault",
})


def _mutated_state(method: ast.FunctionDef) -> set[str]:
    """Entry-state attributes this method mutates, by name."""
    mutated: set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                attr = self_attr_target(target)
                if attr in ENTRY_STATE:
                    mutated.add(attr)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                base = (target.value if isinstance(target, ast.Subscript)
                        else target)
                attr = self_attr_target(base)
                if attr in ENTRY_STATE:
                    mutated.add(attr)
        elif isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATING_METHODS):
                attr = self_attr_target(node.func.value)
                if attr in ENTRY_STATE:
                    mutated.add(attr)
    return mutated


def _clears_flat_view(method: ast.FunctionDef) -> bool:
    """Whether the method contains ``self._flat_view = None``."""
    for node in ast.walk(method):
        if not isinstance(node, ast.Assign):
            continue
        if not (isinstance(node.value, ast.Constant)
                and node.value.value is None):
            continue
        for target in node.targets:
            if self_attr_target(target) == "_flat_view":
                return True
    return False


@register
class FlatViewInvalidation(Rule):
    rule_id = "REP001"
    name = "flat-view-invalidation"
    description = ("methods mutating flat-view-backed entry state must "
                   "clear self._flat_view")

    def check_module(self, module: Module) -> Iterator[Finding]:
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            methods = list(iter_methods(class_node))
            init = next((m for m in methods if m.name == "__init__"), None)
            if init is None or not any(
                self_attr_target(t) == "_flat_view"
                for node in ast.walk(init) if isinstance(node, ast.Assign)
                for t in node.targets
            ):
                continue
            for method in methods:
                if method.name == "__init__":
                    continue
                mutated = _mutated_state(method)
                if mutated and not _clears_flat_view(method):
                    attrs = ", ".join(sorted(mutated))
                    yield Finding(
                        rule=self.rule_id,
                        message=(
                            f"{class_node.name}.{method.name} mutates "
                            f"{attrs} without dropping self._flat_view — "
                            f"batched lookups would serve a stale cache"
                        ),
                        path=module.path, line=method.lineno,
                    )
