"""REP006: broad excepts only with a written-down reason.

A bare ``except:``, ``except Exception:`` or ``except BaseException:``
swallows programming errors along with the failure it meant to catch.
The repo allows them only at genuine fault boundaries — the shard worker
shipping any failure to the router, the server's dispatch thread that
must never die, the WAL decoder converting any decode failure into
``WalCorruptionError`` — and the convention (modelled by
``sharding/worker.py`` and ``serving/server.py``) is that each such site
carries ``# noqa: BLE001`` *with a trailing rationale*::

    except BaseException as error:  # noqa: BLE001 - ship to the router

The rule flags every broad handler without one (a repro suppression
``# repro: ignore[REP006] -- ...`` works too).  A bare ``noqa`` with no
reason does not count: the reason is the point.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.framework import Finding, Module, Rule, register

BROAD_NAMES = frozenset({"Exception", "BaseException"})

_NOQA_RE = re.compile(
    r"#\s*noqa:\s*(?P<codes>[A-Z0-9, ]+?)(?P<rationale>\s*[-–—:]{1,2}\s*\S.*)?$"
)


def _broad_exception_name(handler: ast.ExceptHandler) -> str | None:
    """'Exception'/'BaseException'/'bare' when the handler is broad."""
    node = handler.type
    if node is None:
        return "bare"
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in BROAD_NAMES:
            return candidate.id
    return None


def _has_noqa_rationale(module: Module, line: int) -> bool:
    comment = module.comments.get(line)
    if comment is None:
        return False
    match = _NOQA_RE.search(comment)
    if match is None or "BLE001" not in match.group("codes"):
        return False
    rationale = match.group("rationale")
    return bool(rationale and rationale.strip(" -–—:"))


@register
class BroadExceptRationale(Rule):
    rule_id = "REP006"
    name = "broad-except-rationale"
    description = ("broad except handlers need '# noqa: BLE001 - reason' "
                   "or a repro suppression with rationale")

    def check_module(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_exception_name(node)
            if broad is None:
                continue
            if _has_noqa_rationale(module, node.lineno):
                continue
            label = ("a bare except" if broad == "bare"
                     else f"except {broad}")
            yield Finding(
                rule=self.rule_id,
                message=(
                    f"{label} without a rationale — narrow it to the "
                    f"failures this boundary really absorbs, or add "
                    f"'# noqa: BLE001 - <why>'"
                ),
                path=module.path, line=node.lineno,
            )
