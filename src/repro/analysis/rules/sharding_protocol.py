"""REP005: every sharding command sent has a registered dispatcher arm.

The sharded engine speaks a tiny message protocol: the router sends
``(command, payload)`` pairs and every worker — process transport and
inline transport alike — routes them through the shared
``dispatch_command`` function in ``repro/sharding/worker.py``.  A
command string sent by the router but missing from the dispatcher is a
protocol hole: the process worker answers with an ``unknown command``
error at runtime, on whichever code path first exercises it.

This is a cross-module rule.  Per module (sharding modules only) it
collects:

* **registered** commands — string constants compared against a name
  ``command`` (the dispatcher's ``if command == "...":`` chain, plus the
  transport loop's ``"close"`` arm);
* **sent** commands — string-constant command arguments of ``.send`` /
  ``._call`` / ``._broadcast`` calls, including the ``(command,
  payload)`` tuple form.

Replies travel the other direction inside a fixed two-status envelope —
``("ok", result)`` / ``("error", error)`` — which is part of the
protocol itself, not a command set, so those two strings are exempt.

:meth:`finalize` then reports every sent command with no registration.
When the analyzed set contains no registrations at all (e.g. a single
file passed on the CLI), the rule stays quiet rather than flagging every
send — it can only judge the protocol when it can see the dispatcher.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.analysis.framework import Finding, Module, Rule, register

SEND_ATTRS = frozenset({"send", "_call", "_broadcast"})

#: ``_call(shard_index, command, ...)`` carries the command second.
COMMAND_ARG_INDEX = {"send": 0, "_broadcast": 0, "_call": 1}

#: The worker→router reply envelope; fixed by the protocol, not commands.
REPLY_STATUSES = frozenset({"ok", "error"})


def _is_sharding_module(module: Module) -> bool:
    normalized = module.path.replace("\\", "/")
    return "sharding/" in normalized


def _registered_commands(module: Module) -> set[str]:
    registered: set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not (isinstance(node.left, ast.Name)
                and node.left.id == "command"):
            continue
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.Eq, ast.In)):
                continue
            values = (comparator.elts
                      if isinstance(comparator, (ast.Tuple, ast.List,
                                                 ast.Set))
                      else [comparator])
            for value in values:
                if isinstance(value, ast.Constant) and isinstance(
                        value.value, str):
                    registered.add(value.value)
    return registered


def _sent_commands(module: Module) -> list[tuple[str, int]]:
    sent: list[tuple[str, int]] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr in SEND_ATTRS):
            continue
        position = COMMAND_ARG_INDEX[node.func.attr]
        if len(node.args) <= position:
            continue
        argument = node.args[position]
        # ``connection.send((command, payload))`` tuple form.
        if (isinstance(argument, ast.Tuple) and argument.elts
                and node.func.attr == "send"):
            argument = argument.elts[0]
        if (isinstance(argument, ast.Constant)
                and isinstance(argument.value, str)
                and argument.value not in REPLY_STATUSES):
            sent.append((argument.value, node.lineno))
    return sent


@register
class ShardingProtocolHygiene(Rule):
    rule_id = "REP005"
    name = "sharding-protocol"
    description = ("every command sent to shard workers must be "
                   "registered in the shared dispatcher")

    def finalize(self, modules: Sequence[Module]) -> Iterator[Finding]:
        registered: set[str] = set()
        sends: list[tuple[Module, str, int]] = []
        for module in modules:
            if not _is_sharding_module(module):
                continue
            registered |= _registered_commands(module)
            for command, line in _sent_commands(module):
                sends.append((module, command, line))
        if not registered:
            return
        for module, command, line in sends:
            if command not in registered:
                yield Finding(
                    rule=self.rule_id,
                    message=(
                        f"command {command!r} is sent to shard workers "
                        f"but has no arm in the shared dispatcher "
                        f"(dispatch_command) — workers will answer "
                        f"'unknown command' at runtime"
                    ),
                    path=module.path, line=line,
                )
