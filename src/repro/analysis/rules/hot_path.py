"""REP004: hot batch paths stay vectorized.

The engine's batch throughput (PR 8) comes precisely from replacing
per-element Python loops with array passes — ``np.searchsorted`` over a
flat view instead of B tree descents, one segmented gather instead of B
list appends.  A per-element ``for`` loop over array-shaped data quietly
reintroduces the O(B) Python overhead the batch API exists to remove,
and no correctness test will ever object.

Scope — a function is *hot* when any of:

* its module carries a ``# repro: hot-module`` marker comment
  (``repro/segments.py`` and ``repro/engine/executor.py`` ship marked);
* it is a ``*_many`` / ``*_segmented`` method in an index module
  (``repro/index/``) or the outlier buffer (``repro/core/outliers.py``)
  — the vectorized entry points of every mechanism.

Inside a hot function the rule flags ``for`` statements whose iterable
is array-shaped: a bare parameter of the function (directly or through
``enumerate`` / ``zip`` / ``reversed``), anything dereferencing
``.tolist`` / ``.size`` / ``.shape`` / ``.item``, or ``np.nditer`` /
``np.ndenumerate``.  Comprehensions are deliberately not flagged — a
single C-level comprehension building a result list is often the
materialisation boundary itself.

Legitimate scalar fallbacks (the documented cold-buffer paths that
amortise flat-view construction) stay, suppressed per site::

    # repro: ignore[REP004] -- documented scalar fallback below the
    #                          flat-view debt threshold
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import (
    Finding,
    Module,
    Rule,
    dotted_name,
    register,
)

HOT_MODULE_MARKER = "hot-module"
HOT_METHOD_SUFFIXES = ("_many", "_segmented")
HOT_PATH_FRAGMENTS = ("repro/index/", "repro/core/outliers.py")

ARRAY_ATTRS = frozenset({"tolist", "size", "shape", "item"})
WRAPPER_CALLS = frozenset({"enumerate", "zip", "reversed"})


def _parameters(function: ast.FunctionDef) -> frozenset[str]:
    args = function.args
    names = [arg.arg for arg in
             args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    return frozenset(name for name in names if name != "self")


def _loop_reason(loop: ast.For, params: frozenset[str]) -> str | None:
    """Why this loop's iterable looks array-shaped, or None."""
    iterable = loop.iter
    for node in ast.walk(iterable):
        if isinstance(node, ast.Attribute) and node.attr in ARRAY_ATTRS:
            return f"iterable dereferences .{node.attr}"
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in ("np.nditer", "np.ndenumerate",
                        "numpy.nditer", "numpy.ndenumerate"):
                return f"iterable is {name}"
    candidates = [iterable]
    if (isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in WRAPPER_CALLS):
        candidates = list(iterable.args)
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in params:
            return f"iterates the batch parameter {candidate.id!r}"
    return None


def _is_hot_path(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(fragment in normalized for fragment in HOT_PATH_FRAGMENTS)


@register
class HotPathPurity(Rule):
    rule_id = "REP004"
    name = "hot-path-vectorization"
    description = ("no per-element Python for loops over array-shaped "
                   "data in hot batch paths")

    def check_module(self, module: Module) -> Iterator[Finding]:
        module_hot = HOT_MODULE_MARKER in module.markers
        path_hot = _is_hot_path(module.path)
        if not module_hot and not path_hot:
            return
        for function in ast.walk(module.tree):
            if not isinstance(function, ast.FunctionDef):
                continue
            hot = module_hot or (
                path_hot
                and function.name.endswith(HOT_METHOD_SUFFIXES)
            )
            if not hot:
                continue
            params = _parameters(function)
            for node in ast.walk(function):
                if not isinstance(node, ast.For):
                    continue
                reason = _loop_reason(node, params)
                if reason is None:
                    continue
                yield Finding(
                    rule=self.rule_id,
                    message=(
                        f"per-element loop in hot path {function.name} "
                        f"({reason}) — batch work belongs in array "
                        f"passes; suppress with a rationale if this is a "
                        f"documented scalar fallback"
                    ),
                    path=module.path, line=node.lineno,
                )
