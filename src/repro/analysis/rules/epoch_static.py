"""REP003: static epoch discipline on the ``Database`` facade.

Every public read of a database with an :class:`EpochManager` must run
under the shared side and every mutation under the exclusive side —
otherwise a concurrent writer can interleave with the read half-way
through index maintenance (the torn read the protocol exists to
prevent).  The dynamic checker (``EpochManager(debug=True)``, see
``engine/epochs.py``) catches violations that actually execute; this
rule catches them at review time, before a workload has to trip them.

Scope: classes whose ``__init__`` assigns ``self.epochs``.  Three
checks per method:

1. **Unlocked engine access** (public methods only — private helpers run
   under their caller's acquisition by convention): calls that touch
   shared engine state (``self.catalog.table_entry`` / ``.tables``,
   ``self.planner.plan`` / ``.plan_many``, ``self._durability
   .checkpoint``) must sit lexically inside a ``with self.epochs.read()``
   or ``write()`` block.
2. **Mutation under the shared side**: no mutation call (``log_*``
   hooks, catalog mutators, table/index apply calls) inside a
   ``read()`` block that is not nested in a ``write()``.
3. **Static upgrade**: no ``with self.epochs.write()`` lexically inside
   a ``with self.epochs.read()`` — the runtime raises on this, but it
   should never survive review in the first place.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import (
    Finding,
    Module,
    Rule,
    call_attr,
    dotted_name,
    iter_methods,
    register,
    self_attr_target,
)

#: dotted receiver -> attributes that read shared engine state.
ENGINE_READS = {
    "self.catalog": frozenset({"table_entry", "tables"}),
    "self.planner": frozenset({"plan", "plan_many"}),
    "self._durability": frozenset({"checkpoint"}),
}

#: Attributes whose call mutates engine state.
MUTATION_ATTRS = frozenset({
    "add_table", "add_index", "drop_index", "bump_data_epoch",
    "insert", "insert_many", "delete", "update", "build", "bulk_load",
})


def _epoch_side(node: ast.With) -> str | None:
    """'read'/'write' when the with-statement acquires self.epochs."""
    for item in node.items:
        call = item.context_expr
        if not isinstance(call, ast.Call):
            continue
        attr = call_attr(call)
        if attr in ("read", "write") and isinstance(call.func, ast.Attribute):
            if self_attr_target(call.func.value) == "epochs":
                return attr
    return None


def _uses_epochs(class_node: ast.ClassDef) -> bool:
    init = next((m for m in iter_methods(class_node)
                 if m.name == "__init__"), None)
    if init is None:
        return False
    return any(
        self_attr_target(target) == "epochs"
        for node in ast.walk(init) if isinstance(node, ast.Assign)
        for target in node.targets
    )


class _MethodVisitor(ast.NodeVisitor):
    """Walk one method tracking the lexical epoch-acquisition stack."""

    def __init__(self) -> None:
        self.stack: list[str] = []
        # (node, acquisition stack at the node) for every call/with seen.
        self.calls: list[tuple[ast.Call, tuple[str, ...]]] = []
        self.upgrades: list[ast.With] = []

    def visit_With(self, node: ast.With) -> None:
        side = _epoch_side(node)
        if side is None:
            self.generic_visit(node)
            return
        if side == "write" and "read" in self.stack:
            self.upgrades.append(node)
        self.stack.append(side)
        self.generic_visit(node)
        self.stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append((node, tuple(self.stack)))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs get their own locking context; don't descend.
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]


@register
class EpochDiscipline(Rule):
    rule_id = "REP003"
    name = "epoch-discipline"
    description = ("public Database reads hold the shared epoch side, "
                   "mutations the exclusive side, and never upgrade")

    def check_module(self, module: Module) -> Iterator[Finding]:
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            if not _uses_epochs(class_node):
                continue
            for method in iter_methods(class_node):
                if method.name == "__init__":
                    continue
                yield from self._check_method(module, class_node, method)

    def _check_method(self, module: Module, class_node: ast.ClassDef,
                      method: ast.FunctionDef) -> Iterator[Finding]:
        visitor = _MethodVisitor()
        for statement in method.body:
            visitor.visit(statement)
        public = not method.name.startswith("_")
        label = f"{class_node.name}.{method.name}"

        for node in visitor.upgrades:
            yield Finding(
                rule=self.rule_id,
                message=(f"{label} acquires the write side inside a read "
                         f"block — a read-to-write upgrade deadlocks "
                         f"against the thread's own read"),
                path=module.path, line=node.lineno,
            )

        for call, stack in visitor.calls:
            attr = call_attr(call)
            if attr is None:
                continue
            receiver = (dotted_name(call.func.value)
                        if isinstance(call.func, ast.Attribute) else None)
            touches = any(
                receiver == wanted_receiver and attr in attrs
                for wanted_receiver, attrs in ENGINE_READS.items()
            )
            if public and touches and not stack:
                yield Finding(
                    rule=self.rule_id,
                    message=(f"{label} calls {receiver}.{attr} outside the "
                             f"epoch protocol — a concurrent writer can "
                             f"interleave with this access"),
                    path=module.path, line=call.lineno,
                )
            mutates = attr in MUTATION_ATTRS or attr.startswith("log_")
            if mutates and stack and "write" not in stack:
                yield Finding(
                    rule=self.rule_id,
                    message=(f"{label} calls the mutation {attr!r} under "
                             f"the shared (read) side — mutations need the "
                             f"exclusive side"),
                    path=module.path, line=call.lineno,
                )
