"""REP002: durability ordering — validate, then log, then apply.

The write-ahead protocol (``docs/durability.md``) only works if every
logged operation is guaranteed to succeed on replay and every applied
mutation is guaranteed to be in the log.  That pins the source order of
every ``Database`` method that calls a ``log_*`` hook:

1. **Validation before the append** — everything that can reject the
   operation (``validate_*`` calls, ``fetch`` of the target row, explicit
   ``raise`` guards) must run before the first ``log_*`` call, so the WAL
   never holds a record that fails to re-apply.
2. **The append before the mutation** — no table/index/catalog apply
   call (``insert_many``, ``delete``, ``update``, ``build``,
   ``bulk_load``, ``add_table``, ``add_index``, ``drop_index``,
   ``bump_data_epoch``) may precede the first ``log_*`` call, so a crash
   cannot leave an applied-but-unlogged mutation.

The rule scopes itself to methods that call an attribute starting with
``log_`` (the durability hooks) and compares statement line numbers —
the engine's DML bodies are straight-line enough that source order is
execution order, and keeping them that way is itself part of the
discipline.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import (
    Finding,
    Module,
    Rule,
    call_attr,
    register,
)

#: Calls that apply a mutation to engine state.
APPLY_ATTRS = frozenset({
    "insert", "insert_many", "delete", "update", "build", "bulk_load",
    "add_table", "add_index", "drop_index", "bump_data_epoch",
})

#: Calls that validate the operation (besides explicit ``raise`` guards).
VALIDATE_PREFIX = "validate"
VALIDATE_ATTRS = frozenset({"fetch"})


@register
class DurabilityOrdering(Rule):
    rule_id = "REP002"
    name = "durability-ordering"
    description = ("WAL-logged methods must validate before the log_* "
                   "append and apply mutations only after it")

    def check_module(self, module: Module) -> Iterator[Finding]:
        for function in ast.walk(module.tree):
            if not isinstance(function, ast.FunctionDef):
                continue
            log_lines: list[int] = []
            apply_calls: list[tuple[int, str]] = []
            validate_lines: list[int] = []
            for node in ast.walk(function):
                if isinstance(node, ast.Raise):
                    validate_lines.append(node.lineno)
                    continue
                if not isinstance(node, ast.Call):
                    continue
                attr = call_attr(node)
                if attr is None:
                    continue
                if attr.startswith("log_"):
                    log_lines.append(node.lineno)
                elif attr in APPLY_ATTRS:
                    apply_calls.append((node.lineno, attr))
                if attr.startswith(VALIDATE_PREFIX) or attr in VALIDATE_ATTRS:
                    validate_lines.append(node.lineno)
            if not log_lines:
                continue
            first_log = min(log_lines)
            for line, attr in apply_calls:
                if line < first_log:
                    yield Finding(
                        rule=self.rule_id,
                        message=(
                            f"{function.name} applies {attr!r} on line "
                            f"{line} before the WAL append on line "
                            f"{first_log} — a crash in between loses the "
                            f"mutation from the log"
                        ),
                        path=module.path, line=line,
                    )
            if not any(line < first_log for line in validate_lines):
                yield Finding(
                    rule=self.rule_id,
                    message=(
                        f"{function.name} appends to the WAL (line "
                        f"{first_log}) without validating first — the log "
                        f"may record an operation that fails on replay"
                    ),
                    path=module.path, line=first_log,
                )
