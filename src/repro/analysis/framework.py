"""The invariant-linter framework: rules, findings, suppressions.

``repro.analysis`` is a repo-specific static-analysis subsystem: a small
pluggable AST-checker framework plus the rules under
``repro.analysis.rules`` that encode the engine's hand-maintained
invariants (flat-view invalidation, validate→log→apply ordering, epoch
discipline, hot-path vectorization purity, sharding protocol hygiene).
General-purpose lint stays with ruff; everything here is an invariant a
generic linter cannot know about.

The moving parts:

* :class:`Finding` — one structured diagnostic: rule id, message,
  ``path:line`` location.
* :class:`Rule` — base class.  Per-module rules override
  :meth:`Rule.check_module`; cross-module rules (the sharding dispatch
  check) collect state per module and report from :meth:`Rule.finalize`,
  which runs once after every module has been visited.
* :class:`Module` — a parsed file: source, AST, real comments (extracted
  with :mod:`tokenize`, so string literals containing comment-looking
  text — e.g. lint-fixture snippets in tests — are never misread),
  suppressions and markers.
* Suppressions — ``# repro: ignore[REP004] -- why this is fine`` on the
  flagged line, or standalone on the line above.  The rationale after
  ``--`` is **mandatory**, and a suppression that stops matching any
  finding is itself reported (:data:`HYGIENE_RULE_ID`): the policy is
  explicit per-site waivers with reasons, never silent allowlists.
* Markers — ``# repro: hot-module`` opts a whole module into the
  vectorization-purity rule's scope (see ``rules/hot_path.py``).

Adding a rule: subclass :class:`Rule` in a module under
``repro.analysis.rules``, decorate it with :func:`register`, and import
it from ``rules/__init__.py``.  Give it a fresh ``REPnnn`` id, a fixture
test that proves it fires, and a near-miss fixture that proves it stays
quiet (see ``tests/test_analysis_rules.py``).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Rule id used for the linter's own hygiene findings: unparsable files,
#: suppressions without a rationale, suppressions that match nothing and
#: suppressions naming unknown rules.  Not suppressible.
HYGIENE_RULE_ID = "REP000"

_SUPPRESSION_RE = re.compile(
    r"repro:\s*ignore\[(?P<ids>[A-Za-z0-9_,\s]+)\]"
    r"(?:\s*--\s*(?P<rationale>.*\S))?"
)
_MARKER_RE = re.compile(r"repro:\s*(?P<marker>[a-z][a-z-]*)\s*$")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: which rule fired, where, and why."""

    rule: str
    message: str
    path: str
    line: int

    def render(self) -> str:
        """The canonical one-line form, ``path:line: RULE message``."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class Suppression:
    """One inline ``# repro: ignore[...]`` waiver."""

    line: int
    rule_ids: tuple[str, ...]
    rationale: str | None
    standalone: bool  # comment-only line (covers the line below)
    used: bool = False


@dataclass
class Module:
    """A parsed source file plus everything rules need to inspect it."""

    path: str
    source: str
    tree: ast.Module
    comments: dict[int, str] = field(default_factory=dict)
    suppressions: dict[int, Suppression] = field(default_factory=dict)
    markers: frozenset[str] = frozenset()

    @classmethod
    def from_source(cls, source: str, path: str = "<memory>") -> "Module":
        """Parse ``source``; ``path`` drives display and rule scoping.

        Raises:
            SyntaxError: If the source does not parse — the analyzer turns
                this into a :data:`HYGIENE_RULE_ID` finding.
        """
        tree = ast.parse(source, filename=path)
        comments = _extract_comments(source)
        suppressions: dict[int, Suppression] = {}
        markers: set[str] = set()
        for line, (text, standalone) in comments.items():
            match = _SUPPRESSION_RE.search(text)
            if match:
                rule_ids = tuple(
                    part.strip() for part in match.group("ids").split(",")
                    if part.strip()
                )
                suppressions[line] = Suppression(
                    line=line, rule_ids=rule_ids,
                    rationale=match.group("rationale"),
                    standalone=standalone,
                )
                continue
            match = _MARKER_RE.search(text)
            if match:
                markers.add(match.group("marker"))
        return cls(
            path=path, source=source, tree=tree,
            comments={line: text for line, (text, _) in comments.items()},
            suppressions=suppressions, markers=frozenset(markers),
        )

    @classmethod
    def from_path(cls, path: Path, display: str | None = None) -> "Module":
        """Load and parse a file from disk."""
        source = path.read_text(encoding="utf-8")
        return cls.from_source(source, display or str(path))

    def suppression_for(self, line: int) -> Suppression | None:
        """The suppression covering ``line``.

        Either inline on the line itself, or in the standalone comment
        block immediately above it (the rationale may wrap onto plain
        continuation comment lines below the ``repro: ignore`` line).
        """
        direct = self.suppressions.get(line)
        if direct is not None:
            return direct
        current = line - 1
        while current > 0:
            suppression = self.suppressions.get(current)
            if suppression is not None:
                return suppression if suppression.standalone else None
            comment = self.comments.get(current)
            if comment is None or current not in self._standalone_lines():
                return None
            current -= 1
        return None

    def _standalone_lines(self) -> frozenset[int]:
        lines = self.source.splitlines()
        return frozenset(
            line for line in self.comments
            if line <= len(lines)
            and not lines[line - 1].split("#", 1)[0].strip()
        )


def _extract_comments(source: str) -> dict[int, tuple[str, bool]]:
    """Real comments per line, via tokenize: ``{line: (text, standalone)}``.

    Tokenizing (rather than regex over raw lines) is what keeps comment
    syntax inside string literals — lint-rule fixtures embed plenty —
    from registering as live suppressions in the embedding file.
    """
    comments: dict[int, tuple[str, bool]] = {}
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            line, column = token.start
            prefix = lines[line - 1][:column] if line <= len(lines) else ""
            comments[line] = (token.string, not prefix.strip())
    except tokenize.TokenError:
        # A tokenization failure past some point just truncates the
        # comment map; the AST parse error (if any) is reported separately.
        pass
    return comments


class Rule:
    """Base class for one invariant check.

    Subclasses set ``rule_id`` / ``name`` / ``description`` and override
    :meth:`check_module` (per-file rules) and/or :meth:`finalize`
    (cross-module rules, called once after every module was visited).
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def check_module(self, module: Module) -> Iterator[Finding]:
        """Yield findings for one module."""
        return iter(())

    def finalize(self, modules: Sequence[Module]) -> Iterator[Finding]:
        """Yield findings that need the whole module set."""
        return iter(())


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule_class.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.rule_id}")
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    import repro.analysis.rules  # noqa: F401 - imports register the rules

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def known_rule_ids() -> frozenset[str]:
    """Every registered rule id (plus the hygiene pseudo-rule)."""
    import repro.analysis.rules  # noqa: F401 - imports register the rules

    return frozenset(_REGISTRY) | {HYGIENE_RULE_ID}


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def load_modules(files: Sequence[Path],
                 root: Path | None = None) -> tuple[list[Module], list[Finding]]:
    """Parse ``files``; unparsable ones become hygiene findings."""
    modules: list[Module] = []
    errors: list[Finding] = []
    for file_path in files:
        display = file_path
        if root is not None:
            try:
                display = file_path.relative_to(root)
            except ValueError:
                display = file_path
        try:
            modules.append(Module.from_path(file_path, str(display)))
        except SyntaxError as error:
            errors.append(Finding(
                rule=HYGIENE_RULE_ID,
                message=f"file does not parse: {error.msg}",
                path=str(display), line=error.lineno or 1,
            ))
    return modules, errors


def analyze_modules(modules: Sequence[Module],
                    rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Run ``rules`` over ``modules`` and apply the suppression policy.

    Returns the surviving findings plus any suppression-hygiene findings
    (missing rationale, unknown rule id, unused suppression), sorted by
    location.  A finding is suppressed when a matching
    ``# repro: ignore[<rule>]`` sits on its line or standalone on the
    line above — but a suppression without a rationale suppresses
    nothing.
    """
    if rules is None:
        rules = all_rules()
    known = known_rule_ids() | {rule.rule_id for rule in rules}
    by_path = {module.path: module for module in modules}

    raw: list[Finding] = []
    for rule in rules:
        for module in modules:
            raw.extend(rule.check_module(module))
        raw.extend(rule.finalize(modules))

    survivors: list[Finding] = []
    for finding in raw:
        module = by_path.get(finding.path)
        suppression = (module.suppression_for(finding.line)
                       if module is not None else None)
        if (suppression is not None
                and finding.rule in suppression.rule_ids
                and finding.rule != HYGIENE_RULE_ID
                and suppression.rationale):
            suppression.used = True
            continue
        survivors.append(finding)

    for module in modules:
        for suppression in module.suppressions.values():
            if not suppression.rationale:
                survivors.append(Finding(
                    rule=HYGIENE_RULE_ID,
                    message=("suppression without a rationale: write "
                             "'# repro: ignore[RULE] -- why it is safe'"),
                    path=module.path, line=suppression.line,
                ))
            unknown = [rule_id for rule_id in suppression.rule_ids
                       if rule_id not in known]
            for rule_id in unknown:
                survivors.append(Finding(
                    rule=HYGIENE_RULE_ID,
                    message=f"suppression names unknown rule {rule_id!r}",
                    path=module.path, line=suppression.line,
                ))
            if suppression.rationale and not suppression.used and not unknown:
                survivors.append(Finding(
                    rule=HYGIENE_RULE_ID,
                    message=("unused suppression (no matching finding on "
                             "this line): delete it"),
                    path=module.path, line=suppression.line,
                ))

    return sorted(survivors, key=lambda f: (f.path, f.line, f.rule))


def analyze_paths(paths: Iterable[Path], rules: Sequence[Rule] | None = None,
                  root: Path | None = None) -> list[Finding]:
    """Convenience wrapper: expand paths, parse, analyze."""
    files = iter_python_files(paths)
    modules, errors = load_modules(files, root=root)
    return sorted(errors + analyze_modules(modules, rules=rules),
                  key=lambda f: (f.path, f.line, f.rule))


# ---------------------------------------------------------------- AST helpers
# Shared by several rules; kept here so each rule module stays focused on
# its invariant.

def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_attr(node: ast.Call) -> str | None:
    """The attribute name of ``<receiver>.<attr>(...)``, else None."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def self_attr_target(node: ast.AST) -> str | None:
    """``x`` when ``node`` is the attribute ``self.x``, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def iter_methods(class_node: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    """Direct function members of a class (sync defs only)."""
    for node in class_node.body:
        if isinstance(node, ast.FunctionDef):
            yield node
