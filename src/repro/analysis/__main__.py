"""CLI: ``python -m repro.analysis [paths ...]``.

Runs every registered invariant rule over the given files/directories
(default: ``src tests benchmarks``, falling back to the current
directory) and prints one ``path:line: RULE message`` line per finding.

Exit status: 0 when clean, 1 when findings survive suppression, 2 on
usage errors.  ``--select`` restricts to a comma-separated rule-id list;
``--list-rules`` prints the catalogue.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.framework import all_rules, analyze_paths

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific AST invariant linter.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids to run")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    options = parser.parse_args(argv)

    rules = all_rules()
    if options.list_rules:
        for rule in rules:
            print(f"{rule.rule_id} {rule.name}: {rule.description}")
        return 0

    if options.select:
        wanted = {rule_id.strip() for rule_id in options.select.split(",")}
        unknown = wanted - {rule.rule_id for rule in rules}
        if unknown:
            print(f"unknown rule ids: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.rule_id in wanted]

    if options.paths:
        paths = [Path(path) for path in options.paths]
    else:
        paths = [Path(name) for name in DEFAULT_PATHS if Path(name).exists()]
        if not paths:
            paths = [Path(".")]
    missing = [path for path in paths if not path.exists()]
    if missing:
        print(f"no such path: {', '.join(str(p) for p in missing)}",
              file=sys.stderr)
        return 2

    findings = analyze_paths(paths, rules=rules, root=Path.cwd())
    for finding in findings:
        print(finding.render())
    if findings:
        count = len(findings)
        plural = "s" if count != 1 else ""
        print(f"{count} finding{plural}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
