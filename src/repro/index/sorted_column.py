"""Sorted-column index: a ``searchsorted``-backed array index.

The structure is two parallel numpy arrays — keys (sorted ascending) and the
tuple identifiers stored under them — probed with ``np.searchsorted``.  Point
and range lookups are O(log n) binary searches followed by a contiguous slice,
which makes it the cheapest possible host index for the vectorized Hermit
lookup path: a range probe returns a *view* of the tid array with no per-entry
Python object traffic at all.

It is a read-optimised structure.  :meth:`bulk_load` builds it in one
``argsort``; incremental :meth:`insert`/:meth:`delete` keep the arrays sorted
with ``np.insert``/``np.delete`` and therefore cost O(n) per operation, which
is acceptable for the paper's read-heavy workloads (maintenance traffic is
orders of magnitude rarer than lookups) but makes it the wrong choice for
write-heavy tables — use the B+-tree there.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import KeyNotFoundError, StorageError
from repro.index.base import Index, KeyRange
from repro.segments import empty_offsets, run_indices
from repro.storage.identifiers import TupleId
from repro.storage.memory import DEFAULT_SIZE_MODEL, SizeModel


class SortedColumnIndex(Index):
    """A non-unique sorted-array index mapping numeric keys to tuple ids.

    Args:
        size_model: Analytic cost model for :meth:`memory_bytes`.
    """

    def __init__(self, size_model: SizeModel = DEFAULT_SIZE_MODEL) -> None:
        super().__init__()
        self._size_model = size_model
        self._keys = np.empty(0, dtype=np.float64)
        self._tids = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------ write

    def bulk_load(self, pairs: Iterable[tuple[float, TupleId]]) -> None:
        """Build the index from (key, tid) pairs in one stable argsort.

        Raises:
            StorageError: If the index already holds entries (rebuilding in
                place would silently discard them).
        """
        if self._keys.size:
            raise StorageError(
                "bulk_load on a non-empty SortedColumnIndex would discard "
                f"{self._keys.size} existing entries; build a fresh index"
            )
        materialised = list(pairs)
        if not materialised:
            return
        keys = np.asarray([key for key, _ in materialised], dtype=np.float64)
        tids = np.asarray([tid for _, tid in materialised])
        self.load_arrays(keys, tids)

    def load_arrays(self, keys: np.ndarray, tids: np.ndarray) -> None:
        """Bulk-load directly from aligned numpy arrays (zero-copy fast path).

        Raises:
            StorageError: If the arrays disagree in length or the index is
                already populated.
        """
        if self._keys.size:
            raise StorageError(
                "load_arrays on a non-empty SortedColumnIndex would discard "
                f"{self._keys.size} existing entries; build a fresh index"
            )
        keys = np.asarray(keys, dtype=np.float64)
        tids = np.asarray(tids)
        if keys.shape != tids.shape:
            raise StorageError("keys and tids must have equal length")
        order = np.argsort(keys, kind="stable")
        self._keys = keys[order]
        self._tids = tids[order]

    def insert(self, key: float, tid: TupleId) -> None:
        """Insert ``key -> tid``, keeping the arrays sorted (O(n))."""
        self.stats.inserts += 1
        key = float(key)
        if (np.issubdtype(self._tids.dtype, np.integer)
                and isinstance(tid, float) and not tid.is_integer()):
            # Logical pointers are primary-key values and may be fractional.
            self._tids = self._tids.astype(np.float64)
        position = int(np.searchsorted(self._keys, key, side="right"))
        self._keys = np.insert(self._keys, position, key)
        self._tids = np.insert(self._tids, position, tid)

    def insert_many(self, keys: Sequence[float] | np.ndarray,
                    tids: Sequence[TupleId] | np.ndarray) -> None:
        """Batched insert: sort the batch once, merge it in one pass.

        ``np.searchsorted`` locates every insertion point at once and a
        single ``np.insert`` splices the whole batch, so a bulk write costs
        O(n + m log m) instead of the O(n·m) of m scalar inserts.
        """
        keys = np.asarray(keys, dtype=np.float64)
        tids = np.asarray(tids)
        if keys.shape != tids.shape:
            raise StorageError("keys and tids must have equal length")
        if keys.size == 0:
            return
        self.stats.inserts += int(keys.size)
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        tids = tids[order]
        if not self._keys.size:
            self._keys = keys
            self._tids = tids
            return
        # Logical pointers are primary-key values and may be fractional.
        dtype = np.result_type(self._tids.dtype, tids.dtype)
        positions = np.searchsorted(self._keys, keys, side="right")
        self._keys = np.insert(self._keys, positions, keys)
        self._tids = np.insert(self._tids.astype(dtype, copy=False),
                               positions, tids)

    def delete(self, key: float, tid: TupleId) -> None:
        """Remove one occurrence of ``key -> tid`` (O(n)).

        Raises:
            KeyNotFoundError: If the pair is not present.
        """
        self.stats.deletes += 1
        key = float(key)
        start, stop = self._bounds(key, key)
        if start == stop:
            raise KeyNotFoundError(f"key {key!r} is not in the index")
        run = self._tids[start:stop]
        matches = np.flatnonzero(run == tid)
        if not matches.size:
            raise KeyNotFoundError(f"tid {tid!r} is not stored under key {key!r}")
        position = start + int(matches[0])
        self._keys = np.delete(self._keys, position)
        self._tids = np.delete(self._tids, position)

    # ------------------------------------------------------------------- read

    def search(self, key: float) -> list[TupleId]:
        """Return all tuple ids stored under ``key`` (empty list if absent)."""
        self.stats.lookups += 1
        start, stop = self._bounds(float(key), float(key))
        return self._tids[start:stop].tolist()

    def search_many(self, keys: Sequence[float] | np.ndarray) -> np.ndarray:
        """Batched point probe: one vectorized double-searchsorted.

        The result may be a read-only view of the index's internal array.
        """
        keys = np.asarray(keys, dtype=np.float64)
        self.stats.lookups += int(keys.size)
        if not keys.size or not self._keys.size:
            return np.empty(0, dtype=self._tids.dtype)
        starts = np.searchsorted(self._keys, keys, side="left")
        stops = np.searchsorted(self._keys, keys, side="right")
        runs = [self._run(start, stop) for start, stop in zip(starts, stops)
                if stop > start]
        if not runs:
            return np.empty(0, dtype=self._tids.dtype)
        if len(runs) == 1:
            return runs[0]
        return np.concatenate(runs)

    def range_search(self, key_range: KeyRange) -> list[TupleId]:
        """Return all tuple ids whose key lies in the closed ``key_range``."""
        self.stats.range_lookups += 1
        start, stop = self._bounds(key_range.low, key_range.high)
        return self._tids[start:stop].tolist()

    def range_search_array(self, key_range: KeyRange) -> np.ndarray:
        """Contiguous tid slice for a closed range: two binary searches.

        The result is a zero-copy *read-only* view of the index's internal
        tid array — writing through it would silently corrupt the key → tid
        association, so the view is locked.
        """
        self.stats.range_lookups += 1
        start, stop = self._bounds(key_range.low, key_range.high)
        return self._run(start, stop)

    def range_search_many_array(self, ranges: Sequence[KeyRange]) -> np.ndarray:
        """Union over several ranges with one vectorized searchsorted pair."""
        if not ranges:
            return np.empty(0, dtype=self._tids.dtype)
        self.stats.range_lookups += len(ranges)
        lows = np.asarray([key_range.low for key_range in ranges])
        highs = np.asarray([key_range.high for key_range in ranges])
        starts = np.searchsorted(self._keys, lows, side="left")
        stops = np.searchsorted(self._keys, highs, side="right")
        runs = [self._run(start, stop) for start, stop in zip(starts, stops)
                if stop > start]
        if not runs:
            return np.empty(0, dtype=self._tids.dtype)
        if len(runs) == 1:
            return runs[0]
        return np.concatenate(runs)

    def range_search_segmented(
        self, ranges: Sequence[KeyRange],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Segmented multi-range probe: two searchsorted calls, one gather.

        Every range's bounds are located in one vectorized ``searchsorted``
        pair and the matching tid runs are pulled out with a single
        multi-arange fancy index — a whole batch of range probes costs a
        constant number of numpy passes, no per-range Python at all.
        """
        if not ranges:
            return np.empty(0, dtype=self._tids.dtype), empty_offsets(0)
        self.stats.range_lookups += len(ranges)
        lows = np.fromiter((key_range.low for key_range in ranges),
                           dtype=np.float64, count=len(ranges))
        highs = np.fromiter((key_range.high for key_range in ranges),
                            dtype=np.float64, count=len(ranges))
        starts = np.searchsorted(self._keys, lows, side="left")
        stops = np.searchsorted(self._keys, highs, side="right")
        indices, offsets = run_indices(starts, stops)
        return self._tids[indices], offsets

    def items(self) -> Iterator[tuple[float, TupleId]]:
        """Iterate all (key, tid) pairs in key order."""
        for key, tid in zip(self._keys.tolist(), self._tids.tolist()):
            yield key, tid

    # ------------------------------------------------------------- accounting

    @property
    def num_entries(self) -> int:
        """Number of (key, tid) entries stored."""
        return int(self._keys.size)

    def memory_bytes(self) -> int:
        """Analytic size in bytes (two packed parallel arrays)."""
        return self._size_model.sorted_array_bytes(self.num_entries)

    # ---------------------------------------------------------------- private

    def _bounds(self, low: float, high: float) -> tuple[int, int]:
        start = int(np.searchsorted(self._keys, low, side="left"))
        stop = int(np.searchsorted(self._keys, high, side="right"))
        return start, stop

    def _run(self, start: int, stop: int) -> np.ndarray:
        """Read-only zero-copy view of one contiguous tid run."""
        run = self._tids[start:stop].view()
        run.flags.writeable = False
        return run
