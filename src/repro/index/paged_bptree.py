"""Page-based B+-tree over the buffer pool.

This is the secondary/host index of the disk-based substrate (the PostgreSQL
stand-in used for Figure 24).  Every tree node occupies exactly one page of the
simulated disk, so each node visited during a descent or a leaf-chain scan
costs one buffer-pool request — a hit when cached, a charged page read when
not.  This is what makes the simulated cost breakdown of disk-based lookups
meaningful.

Node payloads are stored as the single "row" of their page:
``("L", keys, value_lists, next_leaf_page)`` for leaves and
``("I", keys, child_page_ids)`` for internal nodes.
"""

from __future__ import annotations

from typing import Iterator

import bisect

from repro.errors import KeyNotFoundError
from repro.index.base import Index, KeyRange
from repro.storage.buffer_pool import BufferPool
from repro.storage.identifiers import TupleId
from repro.storage.memory import DEFAULT_SIZE_MODEL, SizeModel

_LEAF = "L"
_INTERNAL = "I"


class PagedBPlusTree(Index):
    """A non-unique B+-tree whose nodes live in buffer-pool pages.

    Args:
        buffer_pool: Pool providing access to the simulated disk.
        node_capacity: Maximum number of keys per node before it splits.
        size_model: Analytic model for :meth:`memory_bytes` (in-memory
            footprint of the cached portion; the on-disk footprint is
            ``num_pages * page_size``).
    """

    def __init__(self, buffer_pool: BufferPool, node_capacity: int = 64,
                 size_model: SizeModel = DEFAULT_SIZE_MODEL) -> None:
        super().__init__()
        if node_capacity < 4:
            raise ValueError("node_capacity must be at least 4")
        self.pool = buffer_pool
        self.node_capacity = node_capacity
        self._size_model = size_model
        self._num_entries = 0
        self._height = 1
        self._num_nodes = 1
        self._root_page = self._new_node(_LEAF, [], [], None)

    # ----------------------------------------------------------- node storage

    def _new_node(self, kind: str, keys: list, payload: list,
                  next_leaf: int | None) -> int:
        page = self.pool.new_page(capacity=1)
        page.rows = [(kind, keys, payload, next_leaf)]
        self.pool.unpin_page(page.page_id, dirty=True)
        return page.page_id

    def _read_node(self, page_id: int) -> tuple[str, list, list, int | None]:
        page = self.pool.fetch_page(page_id)
        try:
            kind, keys, payload, next_leaf = page.rows[0]
        finally:
            self.pool.unpin_page(page_id)
        return kind, keys, payload, next_leaf

    def _write_node(self, page_id: int, kind: str, keys: list, payload: list,
                    next_leaf: int | None) -> None:
        page = self.pool.fetch_page(page_id)
        try:
            page.rows[0] = (kind, keys, payload, next_leaf)
        finally:
            self.pool.unpin_page(page_id, dirty=True)

    # ------------------------------------------------------------------ write

    def insert(self, key: float, tid: TupleId) -> None:
        """Insert ``key -> tid``."""
        self.stats.inserts += 1
        old_root = self._root_page
        split = self._insert_recursive(self._root_page, float(key), tid)
        if split is not None:
            separator, right_page = split
            self._root_page = self._new_node(
                _INTERNAL, [separator], [old_root, right_page], None
            )
            self._num_nodes += 1
            self._height += 1
        self._num_entries += 1

    def delete(self, key: float, tid: TupleId) -> None:
        """Remove one occurrence of ``key -> tid``.

        Raises:
            KeyNotFoundError: If the pair is not present.
        """
        self.stats.deletes += 1
        key = float(key)
        leaf_page = self._find_leaf(key)
        kind, keys, values, next_leaf = self._read_node(leaf_page)
        index = bisect.bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            tids = values[index]
            if tid not in tids:
                raise KeyNotFoundError(f"tid {tid!r} is not stored under {key!r}")
            tids.remove(tid)
            if not tids:
                keys.pop(index)
                values.pop(index)
            self._write_node(leaf_page, kind, keys, values, next_leaf)
            self._num_entries -= 1
            return
        raise KeyNotFoundError(f"key {key!r} is not in the index")

    # ------------------------------------------------------------------- read

    def search(self, key: float) -> list[TupleId]:
        """Return all tuple ids stored under ``key``."""
        self.stats.lookups += 1
        key = float(key)
        leaf_page = self._find_leaf(key)
        _, keys, values, _ = self._read_node(leaf_page)
        index = bisect.bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            return list(values[index])
        return []

    def range_search(self, key_range: KeyRange) -> list[TupleId]:
        """Return all tuple ids whose key lies in the closed ``key_range``."""
        self.stats.range_lookups += 1
        results: list[TupleId] = []
        leaf_page: int | None = self._find_leaf(key_range.low)
        while leaf_page is not None:
            _, keys, values, next_leaf = self._read_node(leaf_page)
            start = bisect.bisect_left(keys, key_range.low)
            for index in range(start, len(keys)):
                if keys[index] > key_range.high:
                    return results
                results.extend(values[index])
            leaf_page = next_leaf
        return results

    def items(self) -> Iterator[tuple[float, TupleId]]:
        """Iterate all (key, tid) pairs in key order."""
        leaf_page: int | None = self._leftmost_leaf()
        while leaf_page is not None:
            _, keys, values, next_leaf = self._read_node(leaf_page)
            for key, tids in zip(keys, values):
                for tid in tids:
                    yield key, tid
            leaf_page = next_leaf

    # ------------------------------------------------------------- accounting

    @property
    def num_entries(self) -> int:
        """Number of (key, tid) entries stored."""
        return self._num_entries

    @property
    def num_nodes(self) -> int:
        """Number of tree nodes (= pages) allocated."""
        return self._num_nodes

    @property
    def height(self) -> int:
        """Number of levels, including the leaf level."""
        return self._height

    def memory_bytes(self) -> int:
        """Analytic size in bytes, charged like the in-memory B+-tree."""
        return self._size_model.btree_bytes(self._num_entries, self.node_capacity)

    def disk_bytes(self) -> int:
        """On-disk footprint of the tree."""
        return self._num_nodes * self.pool.disk.page_size

    # ---------------------------------------------------------------- private

    def _find_leaf(self, key: float) -> int:
        page_id = self._root_page
        while True:
            kind, keys, payload, _ = self._read_node(page_id)
            if kind == _LEAF:
                return page_id
            index = bisect.bisect_right(keys, key)
            page_id = payload[index]

    def _leftmost_leaf(self) -> int:
        page_id = self._root_page
        while True:
            kind, _, payload, _ = self._read_node(page_id)
            if kind == _LEAF:
                return page_id
            page_id = payload[0]

    def _insert_recursive(self, page_id: int, key: float,
                          tid: TupleId) -> tuple[float, int] | None:
        kind, keys, payload, next_leaf = self._read_node(page_id)
        if kind == _LEAF:
            index = bisect.bisect_left(keys, key)
            if index < len(keys) and keys[index] == key:
                payload[index].append(tid)
                self._write_node(page_id, kind, keys, payload, next_leaf)
                return None
            keys.insert(index, key)
            payload.insert(index, [tid])
            if len(keys) <= self.node_capacity:
                self._write_node(page_id, kind, keys, payload, next_leaf)
                return None
            return self._split_leaf(page_id, keys, payload, next_leaf)

        index = bisect.bisect_right(keys, key)
        split = self._insert_recursive(payload[index], key, tid)
        if split is None:
            return None
        separator, right_page = split
        keys.insert(index, separator)
        payload.insert(index + 1, right_page)
        if len(keys) <= self.node_capacity:
            self._write_node(page_id, kind, keys, payload, None)
            return None
        return self._split_internal(page_id, keys, payload)

    def _split_leaf(self, page_id: int, keys: list, values: list,
                    next_leaf: int | None) -> tuple[float, int]:
        middle = len(keys) // 2
        right_page = self._new_node(_LEAF, keys[middle:], values[middle:], next_leaf)
        self._num_nodes += 1
        self._write_node(page_id, _LEAF, keys[:middle], values[:middle], right_page)
        return keys[middle], right_page

    def _split_internal(self, page_id: int, keys: list,
                        children: list) -> tuple[float, int]:
        middle = len(keys) // 2
        separator = keys[middle]
        right_page = self._new_node(
            _INTERNAL, keys[middle + 1:], children[middle + 1:], None
        )
        self._num_nodes += 1
        self._write_node(page_id, _INTERNAL, keys[:middle], children[:middle + 1], None)
        return separator, right_page
