"""Page-based B+-tree over the buffer pool.

This is the secondary/host index of the disk-based substrate (the PostgreSQL
stand-in used for Figure 24).  Every tree node occupies exactly one page of the
simulated disk, so each node visited during a descent or a leaf-chain scan
costs one buffer-pool request — a hit when cached, a charged page read when
not.  This is what makes the simulated cost breakdown of disk-based lookups
meaningful.

Node payloads are stored as the single "row" of their page:
``("L", keys, value_lists, next_leaf_page)`` for leaves and
``("I", keys, child_page_ids)`` for internal nodes.
"""

from __future__ import annotations

from itertools import chain
from typing import Iterator, Sequence

import bisect

import numpy as np

from repro.errors import KeyNotFoundError, StorageError
from repro.index.base import Index, KeyRange, tid_items
from repro.storage.buffer_pool import BufferPool
from repro.storage.identifiers import TupleId
from repro.storage.memory import DEFAULT_SIZE_MODEL, SizeModel

_LEAF = "L"
_INTERNAL = "I"


class PagedBPlusTree(Index):
    """A non-unique B+-tree whose nodes live in buffer-pool pages.

    Args:
        buffer_pool: Pool providing access to the simulated disk.
        node_capacity: Maximum number of keys per node before it splits.
        size_model: Analytic model for :meth:`memory_bytes` (in-memory
            footprint of the cached portion; the on-disk footprint is
            ``num_pages * page_size``).
    """

    def __init__(self, buffer_pool: BufferPool, node_capacity: int = 64,
                 size_model: SizeModel = DEFAULT_SIZE_MODEL) -> None:
        super().__init__()
        if node_capacity < 4:
            raise ValueError("node_capacity must be at least 4")
        self.pool = buffer_pool
        self.node_capacity = node_capacity
        self._size_model = size_model
        self._num_entries = 0
        self._height = 1
        self._num_nodes = 1
        self._root_page = self._new_node(_LEAF, [], [], None)

    # ----------------------------------------------------------- node storage

    def _new_node(self, kind: str, keys: list, payload: list,
                  next_leaf: int | None) -> int:
        page = self.pool.new_page(capacity=1)
        page.rows = [(kind, keys, payload, next_leaf)]
        self.pool.unpin_page(page.page_id, dirty=True)
        return page.page_id

    def _read_node(self, page_id: int) -> tuple[str, list, list, int | None]:
        page = self.pool.fetch_page(page_id)
        try:
            kind, keys, payload, next_leaf = page.rows[0]
        finally:
            self.pool.unpin_page(page_id)
        return kind, keys, payload, next_leaf

    def _write_node(self, page_id: int, kind: str, keys: list, payload: list,
                    next_leaf: int | None) -> None:
        page = self.pool.fetch_page(page_id)
        try:
            page.rows[0] = (kind, keys, payload, next_leaf)
        finally:
            self.pool.unpin_page(page_id, dirty=True)

    # ------------------------------------------------------------------ write

    def insert(self, key: float, tid: TupleId) -> None:
        """Insert ``key -> tid``."""
        self.stats.inserts += 1
        old_root = self._root_page
        split = self._insert_recursive(self._root_page, float(key), tid)
        if split is not None:
            separator, right_page = split
            self._root_page = self._new_node(
                _INTERNAL, [separator], [old_root, right_page], None
            )
            self._num_nodes += 1
            self._height += 1
        self._num_entries += 1

    def insert_many(self, keys: Sequence[float] | np.ndarray,
                    tids: Sequence[TupleId] | np.ndarray) -> None:
        """Batched insert: sort once, merge into leaf pages run by run.

        The paged counterpart of :meth:`BPlusTree.insert_many`: the sorted
        batch is partitioned down the tree, every touched leaf page is read
        and written exactly once (instead of once per key), and overfull
        pages split into as many new pages as the batch requires.
        """
        keys = np.asarray(keys, dtype=np.float64)
        items = tid_items(tids)
        if keys.size != len(items):
            raise StorageError("keys and tids must have equal length")
        if keys.size == 0:
            return
        self.stats.inserts += int(keys.size)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order].tolist()
        sorted_tids = [items[position] for position in order.tolist()]
        splits = self._merge_into_page(self._root_page, sorted_keys, sorted_tids)
        while splits:
            old_root = self._root_page
            separators = [separator for separator, _ in splits]
            children = [old_root] + [page for _, page in splits]
            self._root_page = self._new_node(_INTERNAL, separators, children, None)
            self._num_nodes += 1
            self._height += 1
            if len(separators) > self.node_capacity:
                splits = self._multi_split_internal_page(self._root_page)
            else:
                splits = None
        self._num_entries += int(keys.size)

    def delete(self, key: float, tid: TupleId) -> None:
        """Remove one occurrence of ``key -> tid``.

        Raises:
            KeyNotFoundError: If the pair is not present.
        """
        self.stats.deletes += 1
        key = float(key)
        leaf_page = self._find_leaf(key)
        kind, keys, values, next_leaf = self._read_node(leaf_page)
        index = bisect.bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            tids = values[index]
            if tid not in tids:
                raise KeyNotFoundError(f"tid {tid!r} is not stored under {key!r}")
            tids.remove(tid)
            if not tids:
                keys.pop(index)
                values.pop(index)
            self._write_node(leaf_page, kind, keys, values, next_leaf)
            self._num_entries -= 1
            return
        raise KeyNotFoundError(f"key {key!r} is not in the index")

    # ------------------------------------------------------------------- read

    def search(self, key: float) -> list[TupleId]:
        """Return all tuple ids stored under ``key``."""
        self.stats.lookups += 1
        key = float(key)
        leaf_page = self._find_leaf(key)
        _, keys, values, _ = self._read_node(leaf_page)
        index = bisect.bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            return list(values[index])
        return []

    def range_search(self, key_range: KeyRange) -> list[TupleId]:
        """Return all tuple ids whose key lies in the closed ``key_range``."""
        self.stats.range_lookups += 1
        results: list[TupleId] = []
        leaf_page: int | None = self._find_leaf(key_range.low)
        while leaf_page is not None:
            _, keys, values, next_leaf = self._read_node(leaf_page)
            start = bisect.bisect_left(keys, key_range.low)
            for index in range(start, len(keys)):
                if keys[index] > key_range.high:
                    return results
                results.extend(values[index])
            leaf_page = next_leaf
        return results

    def range_search_array(self, key_range: KeyRange) -> np.ndarray:
        """Array-native range scan: gather whole leaf-page runs, convert once.

        The paged counterpart of :meth:`BPlusTree.range_search_array`: each
        visited leaf page contributes its matching ``values[start:stop]``
        slice (two bisects per page), the per-key tid lists are flattened
        with one C-level ``chain`` pass and converted to a single numpy
        array.  Page accounting is unchanged — every visited leaf still
        costs exactly one buffer-pool request, so the simulated disk cost
        breakdown stays identical to the scalar path.
        """
        self.stats.range_lookups += 1
        runs: list[list[TupleId]] = []
        leaf_page: int | None = self._find_leaf(key_range.low)
        first = True
        while leaf_page is not None:
            _, keys, values, next_leaf = self._read_node(leaf_page)
            start = bisect.bisect_left(keys, key_range.low) if first else 0
            first = False
            stop = bisect.bisect_right(keys, key_range.high, start)
            runs.extend(values[start:stop])
            if stop < len(keys):
                break
            leaf_page = next_leaf
        flat = list(chain.from_iterable(runs))
        if not flat:
            return np.empty(0, dtype=np.int64)
        return np.asarray(flat)

    def items(self) -> Iterator[tuple[float, TupleId]]:
        """Iterate all (key, tid) pairs in key order."""
        leaf_page: int | None = self._leftmost_leaf()
        while leaf_page is not None:
            _, keys, values, next_leaf = self._read_node(leaf_page)
            for key, tids in zip(keys, values):
                for tid in tids:
                    yield key, tid
            leaf_page = next_leaf

    # ------------------------------------------------------------- accounting

    @property
    def num_entries(self) -> int:
        """Number of (key, tid) entries stored."""
        return self._num_entries

    @property
    def num_nodes(self) -> int:
        """Number of tree nodes (= pages) allocated."""
        return self._num_nodes

    @property
    def height(self) -> int:
        """Number of levels, including the leaf level."""
        return self._height

    def memory_bytes(self) -> int:
        """Analytic size in bytes, charged like the in-memory B+-tree."""
        return self._size_model.btree_bytes(self._num_entries, self.node_capacity)

    def disk_bytes(self) -> int:
        """On-disk footprint of the tree."""
        return self._num_nodes * self.pool.disk.page_size

    # ---------------------------------------------------------------- private

    def _find_leaf(self, key: float) -> int:
        page_id = self._root_page
        while True:
            kind, keys, payload, _ = self._read_node(page_id)
            if kind == _LEAF:
                return page_id
            index = bisect.bisect_right(keys, key)
            page_id = payload[index]

    def _leftmost_leaf(self) -> int:
        page_id = self._root_page
        while True:
            kind, _, payload, _ = self._read_node(page_id)
            if kind == _LEAF:
                return page_id
            page_id = payload[0]

    def _insert_recursive(self, page_id: int, key: float,
                          tid: TupleId) -> tuple[float, int] | None:
        kind, keys, payload, next_leaf = self._read_node(page_id)
        if kind == _LEAF:
            index = bisect.bisect_left(keys, key)
            if index < len(keys) and keys[index] == key:
                payload[index].append(tid)
                self._write_node(page_id, kind, keys, payload, next_leaf)
                return None
            keys.insert(index, key)
            payload.insert(index, [tid])
            if len(keys) <= self.node_capacity:
                self._write_node(page_id, kind, keys, payload, next_leaf)
                return None
            return self._split_leaf(page_id, keys, payload, next_leaf)

        index = bisect.bisect_right(keys, key)
        split = self._insert_recursive(payload[index], key, tid)
        if split is None:
            return None
        separator, right_page = split
        keys.insert(index, separator)
        payload.insert(index + 1, right_page)
        if len(keys) <= self.node_capacity:
            self._write_node(page_id, kind, keys, payload, None)
            return None
        return self._split_internal(page_id, keys, payload)

    def _merge_into_page(self, page_id: int, keys: list[float],
                         tids: list) -> list[tuple[float, int]] | None:
        """Merge a sorted run into the subtree at ``page_id`` (batch insert).

        Returns ascending (separator, new page id) pairs for the caller to
        splice in, or ``None`` when the page absorbed the run.
        """
        kind, node_keys, payload, next_leaf = self._read_node(page_id)
        if kind == _LEAF:
            return self._merge_into_leaf_page(page_id, node_keys, payload,
                                              next_leaf, keys, tids)
        boundaries = [bisect.bisect_left(keys, separator)
                      for separator in node_keys]
        starts = [0] + boundaries
        stops = boundaries + [len(keys)]
        changed = False
        for position in range(len(payload) - 1, -1, -1):
            start, stop = starts[position], stops[position]
            if start == stop:
                continue
            splits = self._merge_into_page(payload[position],
                                           keys[start:stop], tids[start:stop])
            if splits:
                node_keys[position:position] = [s for s, _ in splits]
                payload[position + 1:position + 1] = [p for _, p in splits]
                changed = True
        if len(node_keys) <= self.node_capacity:
            if changed:
                self._write_node(page_id, _INTERNAL, node_keys, payload, None)
            return None
        self._write_node(page_id, _INTERNAL, node_keys, payload, None)
        return self._multi_split_internal_page(page_id)

    def _merge_into_leaf_page(self, page_id: int, node_keys: list,
                              node_values: list, next_leaf: int | None,
                              keys: list[float],
                              tids: list) -> list[tuple[float, int]] | None:
        """Two-pointer merge into one leaf page, multi-splitting if overfull."""
        merged_keys: list[float] = []
        merged_values: list[list[TupleId]] = []
        i = j = 0
        n, m = len(node_keys), len(keys)
        while i < n or j < m:
            if j >= m or (i < n and node_keys[i] <= keys[j]):
                merged_keys.append(node_keys[i])
                merged_values.append(node_values[i])
                i += 1
            elif merged_keys and merged_keys[-1] == keys[j]:
                merged_values[-1].append(tids[j])
                j += 1
            else:
                merged_keys.append(keys[j])
                merged_values.append([tids[j]])
                j += 1
        if len(merged_keys) <= self.node_capacity:
            self._write_node(page_id, _LEAF, merged_keys, merged_values,
                             next_leaf)
            return None
        fill = max(4, int(self.node_capacity * 0.7))
        chunk_starts = list(range(fill, len(merged_keys), fill))
        # Build the new right siblings back-to-front so each page can be
        # created with its successor's id already known.
        successor = next_leaf
        siblings: list[tuple[float, int]] = []
        for start in reversed(chunk_starts):
            new_page = self._new_node(
                _LEAF, merged_keys[start:start + fill],
                merged_values[start:start + fill], successor,
            )
            self._num_nodes += 1
            siblings.append((merged_keys[start], new_page))
            successor = new_page
        siblings.reverse()
        self._write_node(page_id, _LEAF, merged_keys[:fill],
                         merged_values[:fill], successor)
        return siblings

    def _multi_split_internal_page(self, page_id: int) -> list[tuple[float, int]]:
        """Split an overfull internal page into as many pages as needed."""
        kind, all_keys, all_children, _ = self._read_node(page_id)
        fill = max(4, int(self.node_capacity * 0.7))
        step = fill + 1  # children per resulting page
        siblings: list[tuple[float, int]] = []
        for start in range(step, len(all_children), step):
            stop = min(len(all_children), start + step)
            new_page = self._new_node(
                _INTERNAL, all_keys[start:start + (stop - start) - 1],
                all_children[start:stop], None,
            )
            self._num_nodes += 1
            siblings.append((all_keys[start - 1], new_page))
        self._write_node(page_id, kind, all_keys[:fill], all_children[:step],
                         None)
        return siblings

    def _split_leaf(self, page_id: int, keys: list, values: list,
                    next_leaf: int | None) -> tuple[float, int]:
        middle = len(keys) // 2
        right_page = self._new_node(_LEAF, keys[middle:], values[middle:], next_leaf)
        self._num_nodes += 1
        self._write_node(page_id, _LEAF, keys[:middle], values[:middle], right_page)
        return keys[middle], right_page

    def _split_internal(self, page_id: int, keys: list,
                        children: list) -> tuple[float, int]:
        middle = len(keys) // 2
        separator = keys[middle]
        right_page = self._new_node(
            _INTERNAL, keys[middle + 1:], children[middle + 1:], None
        )
        self._num_nodes += 1
        self._write_node(page_id, _INTERNAL, keys[:middle], children[:middle + 1], None)
        return separator, right_page
