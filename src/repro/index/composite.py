"""Composite (multi-column) secondary index.

Section 3 of the paper notes that Hermit also covers multi-column indexes:
with a host index on ``(A, N)`` and a correlation between ``M`` and ``N``, a
query on ``(A, M)`` is answered by translating the ``M`` range into an ``N``
range and probing the composite host index.  This module provides that
composite host index for both Hermit and the baseline.

Entries are kept in a single sorted array of ``(leading, second, tid)``
triples.  For the scale the reproduction runs at this is as fast as a nested
B+-tree while being considerably simpler; the analytic memory model charges it
exactly like a two-key B+-tree so space comparisons stay fair.
"""

from __future__ import annotations

import bisect
from typing import Iterator

from repro.errors import KeyNotFoundError
from repro.index.base import IndexStatistics, KeyRange
from repro.storage.identifiers import TupleId
from repro.storage.memory import DEFAULT_SIZE_MODEL, SizeModel


class CompositeIndex:
    """An index over a pair of columns ``(leading, second)``.

    Supports the access pattern the paper needs: a conjunctive range predicate
    on both key parts.
    """

    def __init__(self, size_model: SizeModel = DEFAULT_SIZE_MODEL,
                 node_capacity: int = 32) -> None:
        self.stats = IndexStatistics()
        self._size_model = size_model
        self._node_capacity = node_capacity
        self._entries: list[tuple[float, float, TupleId]] = []

    def insert(self, leading: float, second: float, tid: TupleId) -> None:
        """Insert the entry ``(leading, second) -> tid``."""
        self.stats.inserts += 1
        bisect.insort(self._entries, (float(leading), float(second), tid))

    def delete(self, leading: float, second: float, tid: TupleId) -> None:
        """Remove the entry ``(leading, second) -> tid``.

        Raises:
            KeyNotFoundError: If the entry is absent.
        """
        self.stats.deletes += 1
        entry = (float(leading), float(second), tid)
        index = bisect.bisect_left(self._entries, entry)
        if index < len(self._entries) and self._entries[index] == entry:
            self._entries.pop(index)
            return
        raise KeyNotFoundError(f"entry {entry!r} is not in the index")

    def range_search(self, leading_range: KeyRange,
                     second_range: KeyRange) -> list[TupleId]:
        """Return tuple ids matching both closed ranges."""
        self.stats.range_lookups += 1
        start = bisect.bisect_left(self._entries, (leading_range.low, float("-inf"), ""))
        results: list[TupleId] = []
        for position in range(start, len(self._entries)):
            leading, second, tid = self._entries[position]
            if leading > leading_range.high:
                break
            if second_range.contains(second):
                results.append(tid)
        return results

    def range_search_many(self, leading_range: KeyRange,
                          second_ranges: list[KeyRange]) -> list[TupleId]:
        """Union of :meth:`range_search` over several second-key ranges."""
        results: list[TupleId] = []
        for second_range in second_ranges:
            results.extend(self.range_search(leading_range, second_range))
        return results

    def items(self) -> Iterator[tuple[float, float, TupleId]]:
        """Iterate entries in key order."""
        return iter(self._entries)

    @property
    def num_entries(self) -> int:
        """Number of entries stored."""
        return len(self._entries)

    def memory_bytes(self) -> int:
        """Analytic size in bytes; charged as a B+-tree with 16-byte keys."""
        two_key_model = SizeModel(
            key_bytes=2 * self._size_model.key_bytes,
            pointer_bytes=self._size_model.pointer_bytes,
            node_header_bytes=self._size_model.node_header_bytes,
            hash_entry_overhead_bytes=self._size_model.hash_entry_overhead_bytes,
            leaf_model_bytes=self._size_model.leaf_model_bytes,
        )
        return two_key_model.btree_bytes(len(self._entries), self._node_capacity)
